#!/usr/bin/env python3
"""Detecting bufferbloat from continuous RTT samples (paper §7).

Simulates a bulk upload through a 10 Mbps bottleneck with a deep
(100 ms) FIFO buffer.  Nothing here scripts an RTT change: loss-based
congestion control fills the buffer until it overflows, backs off, and
fills it again — the classic bufferbloat sawtooth — and Dart's
continuous samples expose it.  The detector keys on the fingerprint
that distinguishes bloat from a path change: the per-window p90
inflates while samples keep touching the propagation floor (an
interception shifts the whole distribution instead; compare
examples/attack_detection.py).

Run:  python examples/bufferbloat_detection.py
"""

from repro.core import Dart, ideal_config, make_leg_filter
from repro.detection import BufferbloatConfig, BufferbloatDetector
from repro.simnet import (
    Connection,
    ConnectionSpec,
    EventLoop,
    LegProfile,
    MonitorTap,
    SimRandom,
)

MS = 1_000_000
SEC = 1_000_000_000


def main() -> None:
    loop = EventLoop()
    tap = MonitorTap(loop)
    spec = ConnectionSpec(
        client_ip=0x0A010001, client_port=40000,
        server_ip=0x10000001, server_port=443,
        request_bytes=60_000_000, response_bytes=200,   # a long upload
        internal=LegProfile(delay_ns=1 * MS, jitter_fraction=0.02),
        external=LegProfile(delay_ns=10 * MS, jitter_fraction=0.03,
                            bandwidth_bps=10_000_000,     # the bottleneck
                            queue_limit_ns=100 * MS),     # a deep buffer
        auto_close=False,
    )
    connection = Connection(loop, SimRandom(3), tap, spec)
    connection.start()
    loop.run(until_ns=45 * SEC)
    bottleneck = connection.link_m2s  # monitor->server carries the upload
    print(f"simulated {tap.observed} packets of a 60 MB upload through a "
          f"10 Mbps bottleneck (propagation RTT ~22 ms)")
    print(f"bottleneck peak queueing delay: "
          f"{bottleneck.stats.max_queue_delay_ns / 1e6:.0f} ms; "
          f"tail drops: {bottleneck.stats.dropped}")

    detector = BufferbloatDetector(
        BufferbloatConfig(window_ns=10 * SEC, min_samples_per_window=50)
    )
    dart = Dart(
        ideal_config(),
        leg_filter=make_leg_filter(lambda a: a >> 24 == 0x0A,
                                   legs=("external",)),
    )
    per_second = {}
    for record in tap.trace:
        for sample in dart.process(record):
            detector.add(sample)
            per_second.setdefault(sample.timestamp_ns // SEC, []).append(
                sample.rtt_ms
            )

    print("\n  t(s)   samples   min RTT   p90 RTT   (sawtooth: queue "
          "fills, overflows, drains)")
    for second in sorted(per_second):
        if second % 3:
            continue  # print every third second
        rtts = sorted(per_second[second])
        p90 = rtts[min(len(rtts) - 1, int(0.9 * len(rtts)))]
        print(f"  {second:4d}   {len(rtts):7d}   {rtts[0]:7.1f}   {p90:7.1f}")

    print()
    if detector.episodes:
        episode = detector.episodes[0]
        print(f"bufferbloat CONFIRMED at t="
              f"{episode.confirmed_at_ns / SEC:.0f}s: p90 inflated "
              f"{episode.inflation:.1f}x while the "
              f"{episode.baseline_min_ns / 1e6:.1f} ms propagation floor "
              f"stays intact")
    else:
        print("no bufferbloat detected")


if __name__ == "__main__":
    main()
