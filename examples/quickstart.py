#!/usr/bin/env python3
"""Quickstart: measure TCP round-trip times with Dart.

Builds a tiny hand-crafted packet exchange (data packets and their
acknowledgments as a monitoring point would see them), feeds it to a
Dart instance, and prints every RTT sample — including the cases Dart
deliberately refuses to measure (retransmissions, duplicate ACKs).

Run:  python examples/quickstart.py
"""

from repro.core import Dart, ideal_config
from repro.net import FLAG_ACK, FLAG_PSH, PacketRecord
from repro.net.inet import ipv4_to_int

MS = 1_000_000

CLIENT = ipv4_to_int("10.0.0.1")
SERVER = ipv4_to_int("93.184.216.34")


def data_packet(t_ms, seq, payload=1448):
    """A data (SEQ) segment from the client toward the server."""
    return PacketRecord(
        timestamp_ns=int(t_ms * MS),
        src_ip=CLIENT, dst_ip=SERVER, src_port=47000, dst_port=443,
        seq=seq, ack=1, flags=FLAG_ACK | FLAG_PSH, payload_len=payload,
    )


def ack_packet(t_ms, ack):
    """A pure ACK from the server back toward the client."""
    return PacketRecord(
        timestamp_ns=int(t_ms * MS),
        src_ip=SERVER, dst_ip=CLIENT, src_port=443, dst_port=47000,
        seq=1, ack=ack, flags=FLAG_ACK, payload_len=0,
    )


def main() -> None:
    # Unlimited-memory Dart; see DartConfig for hardware-shaped tables.
    dart = Dart(ideal_config())

    stream = [
        data_packet(0.0, seq=1000),        # 1448 bytes, expects ACK 2448
        data_packet(0.4, seq=2448),        # next in-order segment
        ack_packet(23.0, ack=2448),        # ACKs the first segment
        ack_packet(24.1, ack=3896),        # ACKs the second
        data_packet(30.0, seq=3896),
        data_packet(31.0, seq=3896),       # a retransmission (ambiguous!)
        ack_packet(55.0, ack=5344),        # Dart refuses to sample this
        data_packet(60.0, seq=5344),       # normal operation resumes
        ack_packet(82.0, ack=6792),
    ]

    print("packet stream as seen at the monitoring point:")
    for record in stream:
        print("  " + record.describe())
        for sample in dart.process(record):
            print(f"      -> RTT sample: {sample.rtt_ms:.1f} ms "
                  f"(byte {sample.eack} of {sample.flow.describe()})")

    print()
    print(f"samples collected : {dart.stats.samples}")
    print(f"retransmissions rejected by the Range Tracker: "
          f"{dart.range_tracker.stats.retransmission_collapses}")
    print("note: the ACK at t=55 ms produced no sample — after a "
          "retransmission the measurement range collapses (paper §3.1).")


if __name__ == "__main__":
    main()
