#!/usr/bin/env python3
"""Multiple on-path vantage points: localizing degradation (paper §7).

Two monitors sit on the same path:

    client --L1--> [VP1: campus gateway] --L2--> [VP2: peering edge] --L3--> server

Each vantage point runs its own Dart and measures its *external* leg
(from itself to the server and back).  When the middle segment (L2)
degrades, VP1's external RTT inflates while VP2's does not — so the
operator can localize the problem to the path between the two VPs,
one of the §7 deployment ideas.

Run:  python examples/multi_vantage.py
"""

from repro.core import Dart, ideal_config, make_leg_filter
from repro.net.inet import int_to_ipv4, ipv4_to_int
from repro.simnet import EventLoop, Link, MonitorTap, SimRandom, TcpEndpoint
from repro.simnet.tcp_endpoint import TcpParams

MS = 1_000_000
SEC = 1_000_000_000

CLIENT = ipv4_to_int("10.1.0.5")
SERVER = ipv4_to_int("192.0.2.80")
DEGRADE_AT = 20 * SEC
DURATION = 40 * SEC


def middle_delay(now_ns: int) -> int:
    """L2's one-way delay: 8 ms, degrading to 60 ms mid-run."""
    return 8 * MS if now_ns < DEGRADE_AT else 60 * MS


def build_topology(loop, rng, tap1, tap2):
    params = TcpParams(ack_every=2)
    client = TcpEndpoint(
        loop, rng.fork("client"), local_ip=CLIENT, local_port=44000,
        remote_ip=SERVER, remote_port=443, isn=0x1000, params=params,
        role="client",
    )
    server = TcpEndpoint(
        loop, rng.fork("server"), local_ip=SERVER, local_port=443,
        remote_ip=CLIENT, remote_port=44000, isn=0x2000, params=params,
        role="server",
    )

    def link(delay, name):
        return Link(loop, rng.fork(name), delay_ns=delay,
                    jitter_fraction=0.03, name=name)

    # Forward path: client -> VP1 -> VP2 -> server.
    l1_fwd = link(1 * MS, "L1-fwd")
    l2_fwd = link(middle_delay, "L2-fwd")
    l3_fwd = link(2 * MS, "L3-fwd")
    l1_fwd.connect(tap1.tap_and_forward(l2_fwd))
    l2_fwd.connect(tap2.tap_and_forward(l3_fwd))
    l3_fwd.connect(server.receive)

    # Reverse path: server -> VP2 -> VP1 -> client.
    l3_rev = link(2 * MS, "L3-rev")
    l2_rev = link(middle_delay, "L2-rev")
    l1_rev = link(1 * MS, "L1-rev")
    l3_rev.connect(tap2.tap_and_forward(l2_rev))
    l2_rev.connect(tap1.tap_and_forward(l1_rev))
    l1_rev.connect(client.receive)

    client.connect_pipe(l1_fwd)
    server.connect_pipe(l3_rev)
    return client, server


def main() -> None:
    loop = EventLoop()
    rng = SimRandom(21)
    tap1, tap2 = MonitorTap(loop), MonitorTap(loop)
    client, server = build_topology(loop, rng, tap1, tap2)

    chunk = 2 * 1448

    def push(elapsed):
        if elapsed > DURATION:
            return
        if client.established:
            client.send_app_data(chunk)
        loop.schedule(100 * MS, push, elapsed + 100 * MS)

    loop.schedule_at(0, client.open)
    loop.schedule_at(150 * MS, push, 0)
    loop.run(until_ns=DURATION + 2 * SEC)

    is_campus = lambda addr: addr == CLIENT
    darts = {}
    for name, tap in (("VP1 (campus gateway)", tap1),
                      ("VP2 (peering edge)", tap2)):
        dart = Dart(ideal_config(),
                    leg_filter=make_leg_filter(is_campus, legs=("external",)))
        for record in tap.trace:
            dart.process(record)
        darts[name] = dart

    print(f"path: {int_to_ipv4(CLIENT)} -> VP1 -> VP2 -> "
          f"{int_to_ipv4(SERVER)}; middle segment degrades at t="
          f"{DEGRADE_AT / SEC:.0f}s\n")
    print(f"{'vantage point':24s} {'pre (ms)':>10s} {'post (ms)':>10s} "
          f"{'shift':>8s}")
    shifts = {}
    for name, dart in darts.items():
        pre = [s.rtt_ms for s in dart.samples
               if s.timestamp_ns < DEGRADE_AT]
        post = [s.rtt_ms for s in dart.samples
                if s.timestamp_ns > DEGRADE_AT + 2 * SEC]
        pre_med = sorted(pre)[len(pre) // 2]
        post_med = sorted(post)[len(post) // 2]
        shifts[name] = post_med - pre_med
        print(f"{name:24s} {pre_med:10.1f} {post_med:10.1f} "
              f"{post_med - pre_med:+8.1f}")

    vp1, vp2 = shifts.values()
    print()
    if vp1 > 10 and vp2 < 10:
        print("diagnosis: RTT inflated at VP1 but not at VP2 -> the "
              "degradation lies BETWEEN the two vantage points (the "
              "middle segment).")
    else:
        print("diagnosis: inconclusive")


if __name__ == "__main__":
    main()
