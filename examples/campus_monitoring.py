#!/usr/bin/env python3
"""Campus-style deployment: per-prefix min-RTT monitoring on both legs.

Generates a synthetic campus trace (wired + wireless subnets talking to
Internet servers through one monitored gateway), then runs a
hardware-shaped Dart instance — finite one-way-associative tables, one
recirculation — with /24-prefix min-filter analytics, the configuration
an operator watching for per-destination congestion would deploy
(paper §3.1/§3.3).

Prints:
  * the external-leg minimum RTT per destination /24 (propagation delay
    to each server prefix);
  * the wired vs wireless internal-leg picture (paper Fig 6);
  * Dart's resource/overhead counters for this configuration.

Run:  python examples/campus_monitoring.py
"""

from collections import defaultdict

from repro.analysis import fraction_below, percentile, render_table
from repro.core import Dart, DartConfig, PrefixMinAnalytics, make_leg_filter
from repro.net.inet import format_prefix
from repro.traces import CampusTraceConfig, generate_campus_trace, replay
from repro.traces.campus import WIRED_NET, WIRELESS_NET


def main() -> None:
    print("generating campus trace...")
    trace = generate_campus_trace(CampusTraceConfig(connections=1200, seed=4))
    print(f"  {trace.packets} packets, {trace.complete_connections} complete "
          f"/ {trace.incomplete_connections} incomplete connections")

    # -- external leg with per-/24 min filtering --------------------------
    analytics = PrefixMinAnalytics(prefix_len=24, window_samples=32)
    dart = Dart(
        DartConfig(rt_slots=1 << 16, pt_slots=1 << 12,
                   max_recirculations=1, analytics_purge=True),
        analytics=analytics,
        leg_filter=make_leg_filter(trace.internal.is_internal,
                                   legs=("external",)),
    )
    report = replay(trace.records, dart)
    print(f"  replayed at {report.packets_per_second:,.0f} packets/s "
          f"(simulated monitor)")

    best = defaultdict(lambda: float("inf"))
    counts = defaultdict(int)
    for window in analytics.history:
        best[window.key] = min(best[window.key], window.min_rtt_ns / 1e6)
        counts[window.key] += window.sample_count
    top = sorted(best.items(), key=lambda kv: -counts[kv[0]])[:10]
    rows = [[format_prefix(prefix, 24), f"{rtt:.2f}", counts[prefix]]
            for prefix, rtt in top]
    print()
    print(render_table(
        ["destination prefix", "min RTT (ms)", "samples"],
        rows,
        title="External leg: propagation delay per destination /24 "
              "(busiest ten)",
    ))

    # -- internal leg: wired vs wireless (Fig 6) ---------------------------
    internal = Dart(
        DartConfig(rt_slots=1 << 16, pt_slots=1 << 12),
        leg_filter=make_leg_filter(trace.internal.is_internal,
                                   legs=("internal",)),
    )
    replay(trace.records, internal)
    wired, wireless = [], []
    for sample in internal.samples:
        subnet = sample.flow.dst_ip >> 16
        if subnet == WIRED_NET >> 16:
            wired.append(sample.rtt_ms)
        elif subnet == WIRELESS_NET >> 16:
            wireless.append(sample.rtt_ms)
    print()
    print("Internal leg (campus infrastructure latency, paper Fig 6):")
    for name, rtts in (("wired", wired), ("wireless", wireless)):
        if not rtts:
            continue
        print(f"  {name:9s} samples={len(rtts):6d}  "
              f"P[<1ms]={100 * fraction_below(rtts, 1.0):5.1f}%  "
              f"median={percentile(rtts, 50):6.2f} ms  "
              f"p90={percentile(rtts, 90):6.2f} ms")

    # -- overhead counters --------------------------------------------------
    stats = dart.stats
    print()
    print("Dart overhead (hardware-shaped configuration):")
    print(f"  samples collected       : {stats.samples}")
    print(f"  recirculations per pkt  : "
          f"{stats.recirculations_per_packet():.4f}")
    print(f"  stale records purged    : {stats.stale_self_destructs}")
    print(f"  analytics purges (§3.3) : {stats.analytics_purges}")
    rt_occ, pt_occ = dart.occupancy()
    print(f"  final occupancy         : RT {rt_occ} slots, PT {pt_occ} slots")


if __name__ == "__main__":
    main()
