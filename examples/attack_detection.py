#!/usr/bin/env python3
"""Detecting a BGP interception attack from RTT shifts (paper §5.2).

Simulates a long-lived TCP session whose wide-area path is hijacked at
t = 36 s (RTT steps from ~25 ms to ~120 ms), with Dart attached *live*
to the monitoring point and the windowed-min change detector consuming
its sample stream in real time.  Prints the detection timeline and the
paper's headline metric: packets exchanged between the attack taking
effect and its confirmation.

Run:  python examples/attack_detection.py
"""

from repro.core import Dart, ideal_config, make_leg_filter
from repro.detection import (
    DetectionState,
    InterceptionDetector,
    packets_between,
)
from repro.traces import AttackTraceConfig, generate_attack_trace

SEC = 1_000_000_000


def main() -> None:
    config = AttackTraceConfig()
    print("simulating the interception scenario "
          f"(attack takes effect at t={config.attack_at_ns / SEC:.0f}s, "
          f"RTT {config.pre_attack_rtt_ns / 1e6:.0f} ms -> "
          f"{config.post_attack_rtt_ns / 1e6:.0f} ms)...")
    trace = generate_attack_trace(config)

    detector = InterceptionDetector()
    dart = Dart(
        ideal_config(),
        leg_filter=make_leg_filter(trace.internal.is_internal,
                                   legs=("external",)),
    )

    # Stream packets through Dart exactly as the switch would see them;
    # report every detector state change as it happens.
    reported = 0
    for record in trace.records:
        for sample in dart.process(record):
            detector.add(sample)
            while reported < len(detector.events):
                event = detector.events[reported]
                reported += 1
                print(f"  t={event.timestamp_ns / SEC:7.2f}s  "
                      f"state={event.state.value:9s}  "
                      f"window min RTT = {event.min_rtt_ns / 1e6:6.1f} ms  "
                      f"(baseline {event.baseline_ns / 1e6:.1f} ms)")

    confirmed = detector.confirmed_at_ns
    if confirmed is None:
        print("attack was NOT confirmed — something is off")
        return
    exchanged = packets_between(trace.records, config.attack_at_ns,
                                confirmed)
    print()
    print(f"attack confirmed {((confirmed - config.attack_at_ns) / SEC):.2f}s "
          f"after taking effect, within {exchanged} packet exchanges "
          f"(paper: 2.58 s / 63 packets)")
    assert detector.state is DetectionState.CONFIRMED


if __name__ == "__main__":
    main()
