#!/usr/bin/env python3
"""Offline analysis of a packet capture: Dart vs tcptrace on a pcap.

Shows the offline workflow a network operator would use:

1. capture traffic at a vantage point (here: a synthetic capture written
   with this library's own pcap writer — byte-for-byte a real pcap that
   tcpdump/wireshark can open);
2. replay the capture through Dart and the tcptrace baseline;
3. compare sample counts and RTT percentiles.

Run:  python examples/pcap_roundtrip.py [existing.pcap]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import percentile, render_table
from repro.baselines import TcpTrace, tcptrace_const
from repro.core import make_leg_filter
from repro.traces import CampusTraceConfig, generate_campus_trace, replay_pcap
from repro.net.pcap import write_packets


def make_capture() -> Path:
    """Write a synthetic campus capture to a temporary pcap file."""
    trace = generate_campus_trace(CampusTraceConfig(connections=300, seed=9))
    path = Path(tempfile.mkstemp(suffix=".pcap")[1])
    count = write_packets(path, trace.records)
    print(f"wrote {count} packets to {path} "
          f"({path.stat().st_size / 1e6:.1f} MB, nanosecond pcap)")
    return path


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        print(f"analyzing user-supplied capture {path}")
    else:
        path = make_capture()

    campus = make_leg_filter(lambda addr: addr >> 24 == 10,
                             legs=("external",))
    dart = tcptrace_const(leg_filter=campus)
    baseline = TcpTrace(track_handshake=False, leg_filter=campus)

    report = replay_pcap(path, dart, baseline)
    print(f"replayed {report.packets} packets in "
          f"{report.wall_seconds:.2f}s "
          f"({report.packets_per_second:,.0f} pkts/s)")

    rows = []
    for name, monitor in (("Dart", dart), ("tcptrace", baseline)):
        rtts = [s.rtt_ms for s in monitor.samples]
        if not rtts:
            rows.append([name, 0, "-", "-", "-"])
            continue
        rows.append([
            name, len(rtts),
            f"{percentile(rtts, 50):.1f}",
            f"{percentile(rtts, 95):.1f}",
            f"{max(rtts):.1f}",
        ])
    print()
    print(render_table(
        ["monitor", "samples", "p50 (ms)", "p95 (ms)", "max (ms)"],
        rows,
        title="External-leg RTTs recovered from the capture",
    ))
    ratio = 100 * len(dart.samples) / max(len(baseline.samples), 1)
    print(f"\nDart collected {ratio:.1f}% of tcptrace's samples "
          f"(paper: ~83% on the campus trace)")


if __name__ == "__main__":
    main()
