"""The :class:`RttMonitor` protocol every monitor implements.

Before this layer existed, each CLI and test hand-rolled its own trace
loop and each monitor grew a slightly different surface (Dart had
``finalize``; the baselines did not; the QUIC monitor had neither
batching nor finalization).  The protocol pins down the common surface:

* ``stats`` — a dataclass of additive counters (summable across shards
  via :class:`repro.core.stats.AdditiveCounters` or a bespoke ``merge``);
* ``samples`` — every :class:`~repro.core.samples.RttSample` the monitor
  has retained, in emission order;
* ``process(record)`` — one record in, zero or more samples out;
* ``process_batch(records)`` — the loop-hoisted form; ``None`` entries
  are skipped so pre-decoded traces with parse gaps feed straight in;
* ``finalize(at_ns)`` — end-of-trace hook (flush windowed analytics,
  or a documented no-op).

Monitors conform structurally — none of them import this module.  The
protocol is ``runtime_checkable`` so the registry and engine can reject
non-conforming objects early with a clear error instead of an
``AttributeError`` mid-trace.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Protocol, runtime_checkable

from ..core.samples import RttSample


@runtime_checkable
class RttMonitor(Protocol):
    """Structural type of every RTT monitor (Dart, baselines, spin-bit)."""

    stats: Any
    samples: List[RttSample]

    def process(self, record: Any) -> List[RttSample]:
        """Process one record; return the samples it produced."""
        ...

    def process_batch(self, records: Iterable[Any]) -> List[RttSample]:
        """Process a batch of records, skipping ``None`` entries."""
        ...

    def finalize(self, at_ns: Optional[int] = None) -> None:
        """Signal end-of-trace (flush any deferred/windowed state)."""
        ...


@runtime_checkable
class SampleSink(Protocol):
    """Anything that accepts routed samples (the historical convention)."""

    def add(self, sample: RttSample) -> None:
        ...


_MISSING = object()


def conforms_to_monitor(obj: Any) -> bool:
    """Structural check that never *invokes* the candidate's attributes.

    ``isinstance(obj, RttMonitor)`` would ``hasattr`` the data members,
    which triggers property getters — on a ``ShardedDart`` reading
    ``stats`` finalizes the whole cluster.  So: data members found on
    the *class* (properties, slot or other descriptors, class defaults)
    are accepted without being read; only when the class has no such
    name is the instance consulted, where lookup is a plain dict probe
    that cannot run getter code.

    The instance probe goes through ``getattr``, not ``obj.__dict__``:
    materializing ``__dict__`` would permanently de-optimize CPython's
    inline-values attribute storage for the monitor, slowing every
    later attribute read on the hot path by several percent.
    """
    cls = type(obj)
    for name in ("process", "process_batch", "finalize"):
        if not callable(getattr(cls, name, None)):
            return False
    for name in ("stats", "samples"):
        if hasattr(cls, name):
            continue  # class-level descriptor/default; never invoked
        if getattr(obj, name, _MISSING) is _MISSING:
            return False
    return True
