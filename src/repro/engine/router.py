"""Sample fan-out: one producer, many sinks, explicit lifecycle.

Replaces the ad-hoc convention where callers spliced
:class:`~repro.core.samples.TeeSink` objects into monitor internals and
remembered (or forgot) to flush/close file-backed sinks themselves.  A
:class:`SampleRouter` validates its sinks up front, fans every routed
sample out to all of them, and owns the flush/close lifecycle — close is
idempotent, flush/close failures on one sink don't strand the others.

A router is itself a sink (``add`` aliases ``route``), so routers nest:
a per-monitor router can feed a shared cross-monitor one.
"""

from __future__ import annotations

from typing import Iterable, List

from ..core.samples import RttSample


class SampleRouter:
    """Fans a sample stream out to validated sinks with a lifecycle."""

    def __init__(self, sinks: Iterable = ()) -> None:
        self._sinks: List = []
        self._closed = False
        for sink in sinks:
            self.attach(sink)

    def attach(self, sink) -> None:
        """Add a sink; rejects objects without an ``add`` method."""
        add = getattr(sink, "add", None)
        if not callable(add):
            raise TypeError(
                f"sample sink {type(sink).__name__!r} has no callable "
                "add(sample) method"
            )
        self._sinks.append(sink)

    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    def route(self, sample: RttSample) -> None:
        for sink in self._sinks:
            sink.add(sample)

    # A router quacks like a sink so routers compose with TeeSink-era code.
    add = route

    def route_batch(self, samples: Iterable[RttSample]) -> None:
        sinks = self._sinks
        if not sinks:
            return
        if len(sinks) == 1:
            # Common case (one export sink): skip the inner loop.
            add = sinks[0].add
            for sample in samples:
                add(sample)
            return
        for sample in samples:
            for sink in sinks:
                sink.add(sample)

    def flush(self) -> None:
        """Flush every sink that supports it."""
        for sink in self._sinks:
            flush = getattr(sink, "flush", None)
            if callable(flush):
                flush()

    def close(self) -> None:
        """Flush and close every sink that supports it (idempotent)."""
        if self._closed:
            return
        self._closed = True
        errors: List[BaseException] = []
        for sink in self._sinks:
            for method_name in ("flush", "close"):
                method = getattr(sink, method_name, None)
                if not callable(method):
                    continue
                try:
                    method()
                except Exception as exc:  # keep closing the rest
                    errors.append(exc)
        if errors:
            raise errors[0]

    def __len__(self) -> int:
        return len(self._sinks)
