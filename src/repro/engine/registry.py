"""Monitor registry: name -> factory, with per-monitor record kinds.

The CLIs (``dart-replay``, ``dart-bench``, ``dart-detect``) select
monitors by name (``--monitor dart --monitor tcptrace ...``); the
cluster builds per-shard monitors from a factory.  Both go through this
registry so adding a monitor is one :func:`register` call, not edits in
every frontend.

Each :class:`MonitorSpec` carries a ``record_kind`` (``"tcp"`` or
``"quic"``) because the two record streams decode differently: TCP
monitors consume :class:`~repro.net.packet.PacketRecord`; the spin-bit
monitor consumes :class:`~repro.quic.packet.QuicPacketRecord`.  The
engine uses the kind to partition a mixed stream; the CLIs use it to
pick the capture decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..baselines.dapper import DapperMonitor
from ..baselines.strawman import Strawman
from ..baselines.tcptrace import TcpTrace
from ..core.pipeline import Dart, DartConfig
from ..quic.monitor import SpinBitMonitor
from .protocol import RttMonitor, conforms_to_monitor


@dataclass(slots=True)
class MonitorOptions:
    """Construction-time knobs shared across monitor factories.

    Each factory picks the fields it understands and ignores the rest,
    so one options object can configure a heterogeneous monitor set.
    """

    config: Optional[DartConfig] = None  # dart
    leg_filter: Optional[Callable] = None  # dart, tcptrace, strawman, dapper
    target_filter: Optional[Callable] = None  # dart
    analytics: Optional[object] = None  # dart
    #: Builds a fresh analytics instance per monitor — required when one
    #: options bundle configures several shard workers (a shared
    #: ``analytics`` instance would double-count under thread/serial
    #: sharding).  Takes precedence over ``analytics``.  Must be
    #: picklable for process-mode shards (a frozen-dataclass callable
    #: like :class:`repro.core.hist.DistributionFactory`).
    analytics_factory: Optional[Callable[[], object]] = None  # dart
    track_handshake: bool = False  # tcptrace, strawman, dapper
    table_slots: Optional[int] = None  # strawman
    timeout_ns: Optional[int] = None  # strawman
    is_client: Optional[Callable[[int], bool]] = None  # spinbit


@dataclass(frozen=True, slots=True)
class MonitorSpec:
    """One registered monitor: name, factory, and record kind."""

    name: str
    factory: Callable[[MonitorOptions], RttMonitor]
    record_kind: str  # "tcp" | "quic"
    description: str = ""


_REGISTRY: Dict[str, MonitorSpec] = {}


def register(spec: MonitorSpec) -> MonitorSpec:
    """Register (or replace) a monitor spec under its name."""
    if spec.record_kind not in ("tcp", "quic"):
        raise ValueError(f"unknown record kind {spec.record_kind!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> MonitorSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown monitor {name!r} (known: {known})") from None


def available() -> Tuple[str, ...]:
    """Registered monitor names, sorted."""
    return tuple(sorted(_REGISTRY))


def create(name: str, options: Optional[MonitorOptions] = None) -> RttMonitor:
    """Instantiate a registered monitor from an options bundle."""
    spec = get_spec(name)
    monitor = spec.factory(options or MonitorOptions())
    if not conforms_to_monitor(monitor):
        raise TypeError(
            f"factory for {name!r} built a {type(monitor).__name__} that "
            "does not satisfy the RttMonitor protocol"
        )
    return monitor


def monitor_factory(
    name: str, options: Optional[MonitorOptions] = None
) -> Callable[[], RttMonitor]:
    """A zero-argument factory (what the cluster's shards consume)."""
    opts = options or MonitorOptions()

    def build() -> RttMonitor:
        return create(name, opts)

    return build


# -- built-in monitors --------------------------------------------------------


def _build_dart(opts: MonitorOptions) -> Dart:
    analytics = (
        opts.analytics_factory()
        if opts.analytics_factory is not None
        else opts.analytics
    )
    return Dart(
        opts.config or DartConfig(),
        analytics=analytics,
        leg_filter=opts.leg_filter,
        target_filter=opts.target_filter,
    )


def _build_tcptrace(opts: MonitorOptions) -> TcpTrace:
    return TcpTrace(
        track_handshake=opts.track_handshake,
        leg_filter=opts.leg_filter,
    )


def _build_strawman(opts: MonitorOptions) -> Strawman:
    return Strawman(
        opts.table_slots,
        timeout_ns=opts.timeout_ns,
        track_handshake=opts.track_handshake,
        leg_filter=opts.leg_filter,
    )


def _build_dapper(opts: MonitorOptions) -> DapperMonitor:
    return DapperMonitor(
        track_handshake=opts.track_handshake,
        leg_filter=opts.leg_filter,
    )


def _every_direction(ip: int) -> bool:
    return True


def _build_spinbit(opts: MonitorOptions) -> SpinBitMonitor:
    # Without an orientation predicate, observe every direction; edges
    # still only advance on the client's flips (RFC 9000 §17.4).
    is_client = opts.is_client if opts.is_client is not None else _every_direction
    return SpinBitMonitor(is_client=is_client)


register(
    MonitorSpec(
        name="dart",
        factory=_build_dart,
        record_kind="tcp",
        description="the paper's Range Tracker + Packet Tracker pipeline",
    )
)
register(
    MonitorSpec(
        name="tcptrace",
        factory=_build_tcptrace,
        record_kind="tcp",
        description="offline oracle: per-segment matching, Karn's algorithm",
    )
)
register(
    MonitorSpec(
        name="strawman",
        factory=_build_strawman,
        record_kind="tcp",
        description="§2.1 single-table strawman (ambiguous under loss)",
    )
)
register(
    MonitorSpec(
        name="dapper",
        factory=_build_dapper,
        record_kind="tcp",
        description="one in-flight measurement per flow (low sample rate)",
    )
)
register(
    MonitorSpec(
        name="spinbit",
        factory=_build_spinbit,
        record_kind="quic",
        description="QUIC spin-bit edge observer (one sample per RTT)",
    )
)
