"""MonitorEngine: one trace pass feeding any number of monitors.

The engine owns the plumbing every frontend used to duplicate:

* **ingest + batching** — drains the record iterable in
  ``TRACE_CHUNK``-sized chunks so each monitor gets its loop-hoisted
  ``process_batch`` fast path without materialising the trace;
* **record partitioning** — when TCP and QUIC monitors run in the same
  pass, each chunk is split by record type and each monitor sees only
  its kind (``None`` gaps from partial decodes are preserved for TCP
  monitors, which skip them);
* **sample routing** — each monitor gets a :class:`.SampleRouter`; the
  samples returned by ``process_batch`` are fanned out immediately, so
  streaming sinks (files, detectors, live analytics) see samples in
  emission order;
* **finalization** — after the trace drains, every monitor's
  ``finalize(end_ns)`` runs with the last observed timestamp, then
  routers flush and close.  Monitors that defer samples until finalize
  (``defers_samples = True``, e.g. a multi-shard
  :class:`~repro.cluster.coordinator.ShardedDart`) have their retained
  ``samples`` routed at that point instead.

The engine assumes records are time-ordered (every producer in this
repo emits them that way), so the end-of-trace timestamp is read from
each chunk's last non-``None`` record — O(1) per chunk, not per packet.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.pipeline import TRACE_CHUNK
from ..quic.packet import QuicPacketRecord
from .protocol import RttMonitor, conforms_to_monitor
from .router import SampleRouter


@dataclass(slots=True)
class MonitorRun:
    """One monitor's slot in an engine pass."""

    name: str
    monitor: RttMonitor
    router: SampleRouter
    record_kind: str  # "tcp" | "quic"
    records_seen: int = 0
    samples_routed: int = 0
    finalize_seconds: float = 0.0


@dataclass(slots=True)
class EngineReport:
    """What one :meth:`MonitorEngine.run` pass did."""

    records: int = 0
    wall_seconds: float = 0.0
    end_ns: Optional[int] = None
    runs: List[MonitorRun] = field(default_factory=list)

    @property
    def records_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.records / self.wall_seconds


class MonitorEngine:
    """Drives registered monitors through a single trace pass.

    ``telemetry`` attaches a :class:`repro.obs.TelemetryEmitter`: the
    engine registers a collector covering itself and every attached
    monitor, times each monitor's per-chunk ``process_batch`` into a
    histogram, and gives the emitter one interval check per ingest
    chunk — so a live run periodically exports its metric state while
    the trace is still flowing.  With ``telemetry=None`` (the default)
    the loop contains a single ``is None`` test per chunk and the obs
    machinery is never imported, keeping the telemetry-off fast path
    allocation-free.
    """

    def __init__(self, *, chunk_size: int = TRACE_CHUNK,
                 telemetry: Optional[Any] = None) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self._chunk_size = chunk_size
        self._runs: List[MonitorRun] = []
        self._names: Dict[str, MonitorRun] = {}
        self._telemetry = telemetry
        self._records = 0
        self._end_ns: Optional[int] = None
        self._started: Optional[float] = None
        self._finished = False
        self._report: Optional[EngineReport] = None
        self._chunk_seconds: Optional[Any] = None
        self._chunk_pps: Optional[Any] = None
        if telemetry is not None:
            telemetry.add_collector(self._collect_telemetry)
            self._chunk_seconds = telemetry.registry.histogram(
                "dart_engine_chunk_seconds",
                "Wall time one monitor spends on one ingest chunk",
                ("monitor",),
            )
            self._chunk_pps = telemetry.registry.gauge(
                "dart_engine_chunk_pps",
                "Throughput over the most recent chunk", ("monitor",),
            )

    # -- wiring ---------------------------------------------------------------

    def add_monitor(
        self,
        monitor: RttMonitor,
        *,
        name: Optional[str] = None,
        sinks: Iterable = (),
        record_kind: str = "tcp",
    ) -> MonitorRun:
        """Attach a monitor (with optional sample sinks) to this engine."""
        if not conforms_to_monitor(monitor):
            raise TypeError(
                f"{type(monitor).__name__} does not satisfy the RttMonitor "
                "protocol (needs stats, samples, process, process_batch, "
                "finalize)"
            )
        if record_kind not in ("tcp", "quic"):
            raise ValueError(f"unknown record kind {record_kind!r}")
        if name is None:
            name = type(monitor).__name__.lower()
        if name in self._names:
            raise ValueError(f"monitor name {name!r} already attached")
        run = MonitorRun(
            name=name,
            monitor=monitor,
            router=SampleRouter(sinks),
            record_kind=record_kind,
        )
        self._runs.append(run)
        self._names[name] = run
        return run

    @property
    def runs(self) -> Tuple[MonitorRun, ...]:
        return tuple(self._runs)

    def __getitem__(self, name: str) -> MonitorRun:
        return self._names[name]

    # -- the trace pass -------------------------------------------------------

    @property
    def records(self) -> int:
        """Records ingested so far (across every ``ingest_chunk``)."""
        return self._records

    @property
    def end_ns(self) -> Optional[int]:
        """Timestamp of the most recent decoded record, if any."""
        return self._end_ns

    def restore_progress(self, *, records: int,
                         end_ns: Optional[int]) -> None:
        """Seed ingest counters when resuming from a checkpoint.

        The monitors themselves are restored by unpickling; this only
        re-aligns the engine's report counters so a resumed run's
        :class:`EngineReport` describes the whole logical run.
        """
        if self._records:
            raise RuntimeError("cannot restore progress after ingest started")
        self._records = records
        self._end_ns = end_ns

    def ingest_chunk(self, chunk: List[Any]) -> None:
        """Feed one chunk of records to every attached monitor.

        The streaming entry point: callers that do not hold the whole
        trace (a tailing source, a paced replay) push chunks as they
        materialise and call :meth:`finish` when the stream ends.
        Samples are routed as they are emitted, exactly as in
        :meth:`run`.
        """
        if not self._runs:
            raise RuntimeError("no monitors attached (call add_monitor first)")
        if self._finished:
            raise RuntimeError("engine already finished")
        if self._started is None:
            self._started = time.perf_counter()
        if not chunk:
            return
        telemetry = self._telemetry
        self._records += len(chunk)
        kinds = {run.record_kind for run in self._runs}
        if len(kinds) == 2:
            tcp_chunk = [
                r
                for r in chunk
                if r is not None and not isinstance(r, QuicPacketRecord)
            ]
            quic_chunk = [
                r for r in chunk if isinstance(r, QuicPacketRecord)
            ]
        elif kinds == {"quic"}:
            tcp_chunk = []
            quic_chunk = chunk
        else:
            tcp_chunk = chunk
            quic_chunk = []
        # Records are time-ordered: the chunk's last decoded record
        # carries the most recent timestamp.
        for record in reversed(chunk):
            if record is not None:
                self._end_ns = record.timestamp_ns
                break
        for run in self._runs:
            part = quic_chunk if run.record_kind == "quic" else tcp_chunk
            if not part:
                continue
            run.records_seen += len(part)
            if telemetry is not None:
                chunk_started = time.perf_counter()
                samples = run.monitor.process_batch(part)
                elapsed = time.perf_counter() - chunk_started
                self._chunk_seconds.observe(elapsed, (run.name,))
                if elapsed > 0:
                    # Per-batch throughput: the live pps this monitor
                    # sustained over its most recent chunk.
                    self._chunk_pps.set((run.name,), len(part) / elapsed)
            else:
                samples = run.monitor.process_batch(part)
            if samples:
                run.samples_routed += len(samples)
                run.router.route_batch(samples)
        if telemetry is not None:
            telemetry.maybe_emit()

    def ingest_columns(self, cols: Any) -> None:
        """Feed one decoded columnar batch
        (:class:`~repro.net.columnar.PacketColumns`) to every monitor.

        The fast-path twin of :meth:`ingest_chunk`: monitors exposing
        ``process_columns`` consume the columns directly; others get
        the materialised per-record view.  Report counters stay
        byte-identical to the object path — skip rows (frames that
        decode to non-TCP) are not counted, exactly as the capture
        readers drop them before the object path ever sees them.

        Column batches only carry the TCP view, so an engine with a
        QUIC monitor attached falls back to :meth:`ingest_chunk` on
        the materialised records.
        """
        if not self._runs:
            raise RuntimeError("no monitors attached (call add_monitor first)")
        if self._finished:
            raise RuntimeError("engine already finished")
        if self._started is None:
            self._started = time.perf_counter()
        decoded = cols.decoded_count()
        if decoded == 0:
            return
        if {run.record_kind for run in self._runs} != {"tcp"}:
            self.ingest_chunk(cols.compact_records())
            return
        telemetry = self._telemetry
        self._records += decoded
        last = cols.last_timestamp_ns()
        if last is not None:
            self._end_ns = last
        for run in self._runs:
            run.records_seen += decoded
            monitor = run.monitor
            process_columns = getattr(monitor, "process_columns", None)
            if telemetry is not None:
                chunk_started = time.perf_counter()
                if process_columns is not None:
                    samples = process_columns(cols)
                else:
                    samples = monitor.process_batch(cols.compact_records())
                elapsed = time.perf_counter() - chunk_started
                self._chunk_seconds.observe(elapsed, (run.name,))
                if elapsed > 0:
                    self._chunk_pps.set((run.name,), decoded / elapsed)
            elif process_columns is not None:
                samples = process_columns(cols)
            else:
                samples = monitor.process_batch(cols.compact_records())
            if samples:
                run.samples_routed += len(samples)
                run.router.route_batch(samples)
        if telemetry is not None:
            telemetry.maybe_emit()

    def ingest_wire_chunk(self, chunk: List[Tuple[int, bool, bytes]],
                          *, fastpath: bool = True) -> None:
        """Decode one chunk of raw capture frames and feed it.

        ``chunk`` holds ``(timestamp_ns, linktype_ethernet, frame)``
        tuples as produced by the capture readers.  With ``fastpath``
        (and numpy present) the frames decode columnar; otherwise each
        frame goes through ``from_wire_bytes`` and the object path.
        Non-TCP frames are dropped either way, as the capture readers
        do, so report counters match across the two modes.
        """
        from ..net import columnar
        from ..net.packet import from_wire_bytes

        if fastpath and columnar.HAVE_NUMPY:
            self.ingest_columns(columnar.decode_wire_columns(chunk))
            return
        records = [
            from_wire_bytes(frame, ts, linktype_ethernet=eth)
            for ts, eth, frame in chunk
        ]
        self.ingest_chunk([r for r in records if r is not None])

    def finish(self) -> EngineReport:
        """Finalize monitors, route deferred samples, close routers.

        Idempotent: the second and later calls return the same report
        without re-finalizing (so a signal handler and a normal exit
        path can both call it safely).
        """
        if self._finished:
            assert self._report is not None
            return self._report
        if not self._runs:
            raise RuntimeError("no monitors attached (call add_monitor first)")
        if self._started is None:
            self._started = time.perf_counter()
        report = EngineReport(records=self._records, runs=list(self._runs))
        for run in self._runs:
            finalize_started = time.perf_counter()
            run.monitor.finalize(self._end_ns)
            run.finalize_seconds = time.perf_counter() - finalize_started
            if getattr(run.monitor, "defers_samples", False):
                # Sharded monitors only surface samples after finalize
                # (their shards retain samples locally until harvest).
                samples = run.monitor.samples
                run.samples_routed += len(samples)
                run.router.route_batch(samples)
            run.router.close()
        report.wall_seconds = time.perf_counter() - self._started
        report.end_ns = self._end_ns
        if self._telemetry is not None:
            # End-of-trace emission: even a sub-interval run exports its
            # final state (and sharded monitors their merged counters).
            self._telemetry.close()
        self._finished = True
        self._report = report
        return report

    def run(self, records: Iterable[Any]) -> EngineReport:
        """Feed every record to every attached monitor, then finalize."""
        if not self._runs:
            raise RuntimeError("no monitors attached (call add_monitor first)")
        if self._started is None:
            self._started = time.perf_counter()
        iterator = iter(records)
        chunk_size = self._chunk_size
        while True:
            chunk = list(islice(iterator, chunk_size))
            if not chunk:
                break
            self.ingest_chunk(chunk)
        return self.finish()

    # -- streaming hand-off ----------------------------------------------------

    def drain_retained(self) -> int:
        """Empty every monitor's retained sample copy; return the count.

        Samples were already routed to sinks at emission time, so the
        retained lists are pure memory growth in a continuous run.
        Monitors that defer samples to finalize (``defers_samples``)
        are skipped — their retained list is the only copy.  Monitors
        without a ``drain_samples`` method are left alone.
        """
        drained = 0
        for run in self._runs:
            if getattr(run.monitor, "defers_samples", False):
                continue
            drain = getattr(run.monitor, "drain_samples", None)
            if drain is not None:
                drained += len(drain())
        return drained

    def flush_routers(self) -> None:
        """Push buffered samples through to every attached sink."""
        for run in self._runs:
            run.router.flush()

    # -- telemetry ------------------------------------------------------------

    def _collect_telemetry(self, registry: Any) -> None:
        """Sample engine + per-monitor state (runs once per emission)."""
        from ..obs.collect import collect_monitor

        records_total = registry.counter(
            "dart_engine_records_total",
            "Records this monitor has been fed", ("monitor",),
        )
        routed_total = registry.counter(
            "dart_engine_samples_routed_total",
            "RTT samples fanned out to this monitor's sinks", ("monitor",),
        )
        fanout = registry.gauge(
            "dart_engine_sink_fanout",
            "Sinks attached to this monitor's sample router", ("monitor",),
        )
        finalize_seconds = registry.gauge(
            "dart_engine_finalize_seconds",
            "Wall time of this monitor's end-of-trace finalize",
            ("monitor",),
        )
        for run in self._runs:
            labels = (run.name,)
            records_total.set_cumulative(labels, run.records_seen)
            routed_total.set_cumulative(labels, run.samples_routed)
            fanout.set(labels, len(run.router))
            finalize_seconds.set(labels, run.finalize_seconds)
            collect_monitor(registry, run.monitor, run.name)
