"""repro.engine — one layer that runs every RTT monitor the same way.

The engine separates three concerns the frontends used to interleave:

* **what a monitor is** (:mod:`.protocol`): the :class:`RttMonitor`
  structural protocol — ``stats``, ``samples``, ``process``,
  ``process_batch``, ``finalize``;
* **which monitors exist** (:mod:`.registry`): name → factory specs
  with a record kind, so CLIs take ``--monitor <name>`` and the cluster
  shards any registered monitor;
* **how a trace pass works** (:mod:`.engine`): :class:`MonitorEngine`
  owns ingest, batching, TCP/QUIC partitioning, sample routing
  (:class:`.SampleRouter`) and finalization for any number of monitors
  in one pass over the records.
"""

from .engine import EngineReport, MonitorEngine, MonitorRun
from .protocol import RttMonitor, SampleSink, conforms_to_monitor
from .registry import (
    MonitorOptions,
    MonitorSpec,
    available,
    create,
    get_spec,
    monitor_factory,
    register,
)
from .router import SampleRouter

__all__ = [
    "EngineReport",
    "MonitorEngine",
    "MonitorOptions",
    "MonitorRun",
    "MonitorSpec",
    "RttMonitor",
    "SampleRouter",
    "SampleSink",
    "available",
    "conforms_to_monitor",
    "create",
    "get_spec",
    "monitor_factory",
    "register",
]
