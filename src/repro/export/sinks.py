"""Sample sinks that export to files: binary reports, CSV, JSONL.

These plug directly into Dart as (or alongside) the analytics module:
anything with an ``add(sample)`` method can consume the live sample
stream, so a monitor can simultaneously run min-filter analytics and
stream reports to disk for the collection server.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..core.samples import RttSample
from ..net.inet import int_to_ipv4, int_to_ipv6
from .records import encode_sample

PathLike = Union[str, Path]


def open_creating_parents(path: PathLike, mode: str, **kwargs):
    """``open`` that first creates the file's missing parent directories.

    Operators point ``--csv``/``--telemetry-out``/sink paths into run
    directories that may not exist yet (a fresh deploy, a dated output
    tree); failing at first emission with ``FileNotFoundError`` helps
    nobody, so every file-backed sink funnels through here.
    """
    parent = Path(path).parent
    if parent and not parent.exists():
        parent.mkdir(parents=True, exist_ok=True)
    return open(path, mode, **kwargs)


class _FileSink:
    """Shared lifecycle for the file-backed sinks.

    ``flush()`` pushes buffered rows to disk without ending the stream —
    a sharded coordinator flushes a worker's sinks at shutdown — and
    ``close()`` is idempotent, so a sink reached through both a worker
    teardown path and a ``with`` block never double-closes.
    """

    def __init__(self, stream) -> None:
        self._stream = stream
        self._closed = False
        self.count = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def flush(self) -> None:
        if not self._closed:
            self._stream.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stream.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ReportFileSink(_FileSink):
    """Streams binary report records to a file (see records.py).

    ``append=True`` reopens an existing file and continues after its
    current end — the streaming resume path, which truncates the file
    to its checkpointed length first and then appends.
    """

    def __init__(self, path: PathLike, *, append: bool = False) -> None:
        super().__init__(open_creating_parents(path, "ab" if append else "wb"))

    def add(self, sample: RttSample) -> None:
        self._stream.write(encode_sample(sample))
        self.count += 1


def _flow_strings(sample: RttSample):
    fmt = int_to_ipv6 if sample.flow.ipv6 else int_to_ipv4
    return fmt(sample.flow.src_ip), fmt(sample.flow.dst_ip)


CSV_FIELDS = ("timestamp_ns", "rtt_ns", "src", "sport", "dst", "dport",
              "eack", "leg", "handshake")


class CsvSink(_FileSink):
    """Streams samples as CSV rows (header written up front).

    ``append=True`` continues an existing file without re-writing the
    header (the streaming resume path).
    """

    def __init__(self, path: PathLike, *, append: bool = False) -> None:
        super().__init__(
            open_creating_parents(path, "a" if append else "w", newline="")
        )
        self._writer = csv.writer(self._stream)
        if not append:
            self._writer.writerow(CSV_FIELDS)

    def add(self, sample: RttSample) -> None:
        src, dst = _flow_strings(sample)
        self._writer.writerow([
            sample.timestamp_ns,
            sample.rtt_ns,
            src,
            sample.flow.src_port,
            dst,
            sample.flow.dst_port,
            sample.eack,
            sample.leg or "",
            int(sample.handshake),
        ])
        self.count += 1


class JsonlSink(_FileSink):
    """Streams samples as JSON lines (one object per sample)."""

    def __init__(self, path: PathLike, *, append: bool = False) -> None:
        super().__init__(open_creating_parents(path, "a" if append else "w"))

    def add(self, sample: RttSample) -> None:
        src, dst = _flow_strings(sample)
        self._stream.write(json.dumps({
            "ts_ns": sample.timestamp_ns,
            "rtt_ns": sample.rtt_ns,
            "src": src,
            "sport": sample.flow.src_port,
            "dst": dst,
            "dport": sample.flow.dst_port,
            "eack": sample.eack,
            "leg": sample.leg,
            "handshake": sample.handshake,
        }) + "\n")
        self.count += 1


def _describe_key(key) -> str:
    """A stable, human-readable spelling for an analytics window key.

    Flow keys describe themselves; prefix keys (plain ints from
    :class:`~repro.core.analytics.DstPrefixKey`) render as dotted quads;
    anything else falls back to ``str``.
    """
    describe = getattr(key, "describe", None)
    if callable(describe):
        return describe()
    if isinstance(key, int):
        return int_to_ipv4(key) if key < (1 << 32) else int_to_ipv6(key)
    return str(key)


class WindowJsonlSink(_FileSink):
    """Streams closed analytics windows as JSON lines.

    Consumes :class:`~repro.core.analytics.WindowMinimum` objects —
    the streaming runner drains closed windows from the analytics on
    its rotation interval and ships them here, so window history lives
    on disk instead of growing in memory.
    """

    def __init__(self, path: PathLike, *, append: bool = False) -> None:
        super().__init__(open_creating_parents(path, "a" if append else "w"))

    def add(self, window) -> None:
        self._stream.write(json.dumps({
            "key": _describe_key(window.key),
            "window": window.window_index,
            "min_rtt_ns": window.min_rtt_ns,
            "samples": window.sample_count,
            "closed_at_ns": window.closed_at_ns,
        }) + "\n")
        self.count += 1
