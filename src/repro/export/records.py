"""The RTT report wire format (switch -> collection server).

In the deployment (paper §5), Dart "collects raw RTT samples and sends
them to a collection server" — each report is a small fixed-layout
record the data plane can emit without serialization logic.  This
module defines that record:

====== ===== =====================================================
offset bytes field
====== ===== =====================================================
0      1     version (currently 1)
1      1     flags: bit0 handshake, bit1 ipv6, bits 2-3 leg
2      2     source port
4      2     destination port
6      8     sample timestamp (ns since epoch/trace start)
14     8     RTT (ns)
22     4     expected ACK number
26     16    source IP (IPv4 left-padded with zeros)
42     16    destination IP
====== ===== =====================================================

58 bytes per report; a batch file is just concatenated records (the
collector can start reading mid-stream at any 58-byte boundary).
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, Optional

from ..core.flow import FlowKey
from ..core.samples import RttSample

VERSION = 1
RECORD_LEN = 58

_HEADER = struct.Struct("!BBHHQQI")

_FLAG_HANDSHAKE = 0x01
_FLAG_IPV6 = 0x02
_LEG_SHIFT = 2
_LEG_MASK = 0x03
_LEGS = (None, "external", "internal")


class ReportFormatError(ValueError):
    """Raised for malformed report records."""


def _leg_bits(leg: Optional[str]) -> int:
    try:
        return _LEGS.index(leg)
    except ValueError:
        raise ReportFormatError(f"unencodable leg {leg!r}") from None


def encode_sample(sample: RttSample) -> bytes:
    """Serialize one sample to its 58-byte report record."""
    flags = 0
    if sample.handshake:
        flags |= _FLAG_HANDSHAKE
    if sample.flow.ipv6:
        flags |= _FLAG_IPV6
    flags |= _leg_bits(sample.leg) << _LEG_SHIFT
    header = _HEADER.pack(
        VERSION,
        flags,
        sample.flow.src_port,
        sample.flow.dst_port,
        sample.timestamp_ns,
        sample.rtt_ns,
        sample.eack,
    )
    return (
        header
        + sample.flow.src_ip.to_bytes(16, "big")
        + sample.flow.dst_ip.to_bytes(16, "big")
    )


def decode_sample(data: bytes) -> RttSample:
    """Parse one 58-byte report record back into a sample."""
    if len(data) != RECORD_LEN:
        raise ReportFormatError(
            f"report record must be {RECORD_LEN} bytes, got {len(data)}"
        )
    version, flags, sport, dport, timestamp_ns, rtt_ns, eack = (
        _HEADER.unpack_from(data, 0)
    )
    if version != VERSION:
        raise ReportFormatError(f"unsupported report version {version}")
    leg_index = (flags >> _LEG_SHIFT) & _LEG_MASK
    if leg_index >= len(_LEGS):
        raise ReportFormatError(f"bad leg bits {leg_index}")
    src_ip = int.from_bytes(data[26:42], "big")
    dst_ip = int.from_bytes(data[42:58], "big")
    flow = FlowKey(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=sport,
        dst_port=dport,
        ipv6=bool(flags & _FLAG_IPV6),
    )
    return RttSample(
        flow=flow,
        rtt_ns=rtt_ns,
        timestamp_ns=timestamp_ns,
        eack=eack,
        handshake=bool(flags & _FLAG_HANDSHAKE),
        leg=_LEGS[leg_index],
    )


def write_reports(stream: BinaryIO, samples) -> int:
    """Append report records for ``samples``; returns the count."""
    count = 0
    for sample in samples:
        stream.write(encode_sample(sample))
        count += 1
    return count


def read_reports(stream: BinaryIO) -> Iterator[RttSample]:
    """Yield samples from a stream of concatenated report records."""
    while True:
        chunk = stream.read(RECORD_LEN)
        if not chunk:
            return
        if len(chunk) < RECORD_LEN:
            raise ReportFormatError("truncated report record at end of stream")
        yield decode_sample(chunk)
