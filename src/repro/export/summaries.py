"""Per-flow RTT summaries (tcptrace-style connection reports).

tcptrace's best-known output is its per-connection RTT summary; this
sink reproduces that view on Dart's live sample stream with constant
per-flow state (count / min / max / mean via Welford, plus a quantile
sketch for percentiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.sketch import QuantileSketch
from ..core.flow import FlowKey
from ..core.hist import DEFAULT_QUANTILES
from ..core.samples import RttSample


@dataclass
class FlowSummary:
    """Streaming RTT statistics for one SEQ-direction flow."""

    flow: FlowKey
    count: int = 0
    min_ns: Optional[int] = None
    max_ns: Optional[int] = None
    mean_ns: float = 0.0
    _m2: float = 0.0
    first_ns: Optional[int] = None
    last_ns: Optional[int] = None

    def __post_init__(self) -> None:
        self._sketch = QuantileSketch(alpha=0.02, max_buckets=256)

    def add(self, sample: RttSample) -> None:
        self.count += 1
        rtt = sample.rtt_ns
        self.min_ns = rtt if self.min_ns is None else min(self.min_ns, rtt)
        self.max_ns = rtt if self.max_ns is None else max(self.max_ns, rtt)
        delta = rtt - self.mean_ns
        self.mean_ns += delta / self.count
        self._m2 += delta * (rtt - self.mean_ns)
        if self.first_ns is None:
            self.first_ns = sample.timestamp_ns
        self.last_ns = sample.timestamp_ns
        self._sketch.add(rtt)

    @property
    def stdev_ns(self) -> float:
        if self.count < 2:
            return 0.0
        return (self._m2 / (self.count - 1)) ** 0.5

    def percentile_ns(self, p: float) -> float:
        """Sketch-estimated percentile — the one percentile entry point
        here; exact percentiles (when per-sample data exists) live in
        :func:`repro.core.hist.exact_quantile`."""
        return self._sketch.quantile(p)

    def percentiles_ns(
        self, qs: tuple = DEFAULT_QUANTILES
    ) -> Dict[float, float]:
        return {q: self.percentile_ns(q) for q in qs}

    def describe(self) -> str:
        quantiles = "  ".join(
            f"p{q:g}={rtt_ns / 1e6:.2f}ms"
            for q, rtt_ns in self.percentiles_ns((50.0, 95.0)).items()
        )
        return (
            f"{self.flow.describe()}  n={self.count}  "
            f"min={self.min_ns / 1e6:.2f}ms  "
            f"{quantiles}  "
            f"max={self.max_ns / 1e6:.2f}ms"
        )


class FlowSummarySink:
    """Aggregates the sample stream into per-flow summaries."""

    def __init__(self) -> None:
        self._flows: Dict[FlowKey, FlowSummary] = {}

    def add(self, sample: RttSample) -> None:
        summary = self._flows.get(sample.flow)
        if summary is None:
            summary = FlowSummary(flow=sample.flow)
            self._flows[sample.flow] = summary
        summary.add(sample)

    def __len__(self) -> int:
        return len(self._flows)

    def get(self, flow: FlowKey) -> Optional[FlowSummary]:
        return self._flows.get(flow)

    def top_by_samples(self, n: int = 10) -> List[FlowSummary]:
        """The n busiest flows (most samples first)."""
        return sorted(self._flows.values(), key=lambda s: -s.count)[:n]

    def all(self) -> List[FlowSummary]:
        return list(self._flows.values())
