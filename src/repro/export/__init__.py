"""Exporting Dart's sample stream: report records, CSV/JSONL, summaries.

The deployment path of paper §5: the switch emits compact RTT reports
to a collection server.  :mod:`repro.export.records` is that wire
format; the sinks stream samples to disk live, and
:class:`FlowSummarySink` reproduces tcptrace-style per-connection
summaries with constant per-flow state.
"""

from .records import (
    RECORD_LEN,
    ReportFormatError,
    decode_sample,
    encode_sample,
    read_reports,
    write_reports,
)
from .sinks import CsvSink, JsonlSink, ReportFileSink, WindowJsonlSink
from .summaries import FlowSummary, FlowSummarySink

__all__ = [
    "CsvSink",
    "FlowSummary",
    "FlowSummarySink",
    "JsonlSink",
    "RECORD_LEN",
    "ReportFileSink",
    "ReportFormatError",
    "WindowJsonlSink",
    "decode_sample",
    "encode_sample",
    "read_reports",
    "write_reports",
]
