"""Exporters: Prometheus text exposition and JSON lines.

Both formats render a :class:`~repro.obs.snapshot.Snapshot`:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  ``_bucket``/``_sum``/``_count`` expansion for histograms).  A scraper
  or ``promtool check metrics`` consumes it as-is.
* :func:`to_json` — one self-contained JSON object per emission
  (schema ``dart-telemetry/1``), designed for ``jq``-friendly JSON
  lines files: stable key order, labels as objects, histograms with
  explicit bucket bounds.

:func:`parse_prometheus` parses this module's own exposition output
back into a Snapshot — the round-trip property the exporter tests pin.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from .snapshot import MetricSnapshot, Snapshot

#: Stamped into every JSON emission; bump on breaking shape changes.
TELEMETRY_SCHEMA = "dart-telemetry/1"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, ch + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(label_names: Tuple[str, ...], labels: Tuple[str, ...],
                 extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(label_names, labels)
    ]
    pairs.extend(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in extra
    )
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus(snapshot: Snapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot.metrics):
        metric = snapshot.metrics[name]
        if metric.help:
            escaped = metric.help.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if metric.kind == "histogram":
            for labels in sorted(metric.bucket_counts):
                counts = metric.bucket_counts[labels]
                cumulative = 0
                for bound, count in zip(
                    metric.buckets + (math.inf,), counts
                ):
                    cumulative += count
                    le = "+Inf" if bound == math.inf else _format_value(bound)
                    labels_text = _labels_text(
                        metric.label_names, labels, (("le", le),)
                    )
                    lines.append(f"{name}_bucket{labels_text} {cumulative}")
                plain = _labels_text(metric.label_names, labels)
                lines.append(
                    f"{name}_sum{plain} "
                    f"{_format_value(metric.sums.get(labels, 0.0))}"
                )
                lines.append(
                    f"{name}_count{plain} {metric.counts.get(labels, 0)}"
                )
        else:
            for labels in sorted(metric.values):
                labels_text = _labels_text(metric.label_names, labels)
                lines.append(
                    f"{name}{labels_text} "
                    f"{_format_value(metric.values[labels])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def to_json(snapshot: Snapshot, *,
            timestamp_unix_ns: Optional[int] = None) -> str:
    """Render a snapshot as one JSON line (schema ``dart-telemetry/1``)."""
    metrics = []
    for name in sorted(snapshot.metrics):
        metric = snapshot.metrics[name]
        entry: Dict[str, object] = {
            "name": name,
            "kind": metric.kind,
            "labels": list(metric.label_names),
        }
        if metric.kind == "histogram":
            entry["buckets"] = list(metric.buckets)
            entry["series"] = [
                {
                    "labels": list(labels),
                    "bucket_counts": list(metric.bucket_counts[labels]),
                    "sum": metric.sums.get(labels, 0.0),
                    "count": metric.counts.get(labels, 0),
                }
                for labels in sorted(metric.bucket_counts)
            ]
        else:
            entry["series"] = [
                {"labels": list(labels), "value": metric.values[labels]}
                for labels in sorted(metric.values)
            ]
        metrics.append(entry)
    payload: Dict[str, object] = {
        "schema": TELEMETRY_SCHEMA,
        "sequence": snapshot.sequence,
        "metrics": metrics,
    }
    if timestamp_unix_ns is not None:
        payload["timestamp_unix_ns"] = timestamp_unix_ns
    return json.dumps(payload, separators=(",", ":"), sort_keys=False)


def _parse_sample_line(line: str) -> Tuple[str, Dict[str, str], float]:
    """One exposition sample line -> (name, labels, value)."""
    if "{" in line:
        name, rest = line.split("{", 1)
        labels_text, value_text = rest.rsplit("} ", 1)
        labels: Dict[str, str] = {}
        i = 0
        while i < len(labels_text):
            eq = labels_text.index("=", i)
            key = labels_text[i:eq]
            assert labels_text[eq + 1] == '"'
            j = eq + 2
            while labels_text[j] != '"':
                if labels_text[j] == "\\":
                    j += 1
                j += 1
            labels[key] = _unescape_label_value(labels_text[eq + 2:j])
            i = j + 1
            if i < len(labels_text) and labels_text[i] == ",":
                i += 1
    else:
        name, value_text = line.rsplit(" ", 1)
        labels = {}
    value_text = value_text.strip()
    if value_text == "+Inf":
        value = math.inf
    elif value_text == "-Inf":
        value = -math.inf
    else:
        value = float(value_text)
    return name.strip(), labels, value


def parse_prometheus(text: str) -> Snapshot:
    """Parse :func:`to_prometheus` output back into a Snapshot.

    Supports the subset this module emits (which is what the round-trip
    tests need): counters, gauges, and histograms with cumulative
    ``le`` buckets.  ``# HELP`` text survives the round trip.
    """
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            kinds[name] = kind
        elif line.startswith("# HELP "):
            _, _, name, help_text = line.split(" ", 3)
            helps[name] = help_text.replace(r"\n", "\n").replace(r"\\", "\\")
        elif line.startswith("#"):
            continue
        else:
            samples.append(_parse_sample_line(line))

    def base_name(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and kinds.get(trimmed) == \
                    "histogram":
                return trimmed
        return sample_name

    snapshot = Snapshot()
    for sample_name, labels, value in samples:
        name = base_name(sample_name)
        kind = kinds.get(name, "gauge")
        metric = snapshot.metrics.get(name)
        if metric is None:
            label_names = tuple(k for k in labels if k != "le")
            metric = MetricSnapshot(
                name=name, kind=kind, help=helps.get(name, ""),
                label_names=label_names,
            )
            snapshot.metrics[name] = metric
        labelset = tuple(
            labels[k] for k in metric.label_names
        )
        if kind != "histogram":
            metric.values[labelset] = value
        elif sample_name.endswith("_sum"):
            metric.sums[labelset] = value
        elif sample_name.endswith("_count"):
            metric.counts[labelset] = int(value)
        else:  # _bucket
            le = labels["le"]
            bound = math.inf if le == "+Inf" else float(le)
            # Cumulative counts arrive in ascending-bound order; stash
            # them raw and de-cumulate once the labelset is complete.
            raw_buckets = metric.bucket_counts.get(labelset, ())
            metric.bucket_counts[labelset] = raw_buckets + (int(value),)
            if bound != math.inf and bound not in metric.buckets:
                metric.buckets = metric.buckets + (bound,)
    # De-cumulate histogram buckets back to per-bucket counts.
    for metric in snapshot.metrics.values():
        if metric.kind != "histogram":
            continue
        metric.buckets = tuple(sorted(metric.buckets))
        for labelset, cumulative in metric.bucket_counts.items():
            counts = []
            previous = 0
            for value in cumulative:
                counts.append(int(value) - previous)
                previous = int(value)
            metric.bucket_counts[labelset] = tuple(counts)
    return snapshot
