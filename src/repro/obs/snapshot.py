"""Snapshots: frozen, transportable, mergeable metric state.

A :class:`Snapshot` is plain data (dataclasses of dicts and tuples), so
it pickles cleanly across the cluster's process boundary inside a
``ShardResult``.  Merging follows the repo's ``AdditiveCounters``
convention: every value adds per labelset, which makes merge
associative and commutative — the order shards report in cannot change
the cluster-wide view.  Gauges add too; per-shard gauges therefore
carry the shard id as a label so the merged snapshot keeps them
distinguishable (and their unlabeled sum is the cluster total, which is
what an operator wants for occupancy and queue depth anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .metrics import Counter, Gauge, Histogram, LabelValues, MetricsRegistry

#: Stamped into every :meth:`Snapshot.to_wire` dict; bumped on breaking
#: shape changes so a peer speaking an older layout is refused loudly
#: instead of mis-merged.
SNAPSHOT_WIRE_SCHEMA = "dart-snapshot-wire/1"


@dataclass(slots=True)
class MetricSnapshot:
    """One metric's frozen values (all labelsets)."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    label_names: Tuple[str, ...] = ()
    #: counter/gauge: labelset -> value.  Unused for histograms.
    values: Dict[LabelValues, float] = field(default_factory=dict)
    #: histogram only: finite upper bounds (the +Inf bucket is implicit).
    buckets: Tuple[float, ...] = ()
    #: histogram only: labelset -> per-bucket counts (len(buckets) + 1).
    bucket_counts: Dict[LabelValues, Tuple[int, ...]] = field(
        default_factory=dict
    )
    sums: Dict[LabelValues, float] = field(default_factory=dict)
    counts: Dict[LabelValues, int] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe dict form (labelset tuples become value lists).

        Dict keys in the dataclass are label-value *tuples*, which JSON
        cannot key by; the wire form stores each labelset's data as a
        ``[labels, ...]`` entry in a list instead.
        """
        wire: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
        }
        if self.kind == "histogram":
            wire["buckets"] = list(self.buckets)
            wire["series"] = [
                {
                    "labels": list(labels),
                    "bucket_counts": list(self.bucket_counts[labels]),
                    "sum": self.sums.get(labels, 0.0),
                    "count": self.counts.get(labels, 0),
                }
                for labels in sorted(self.bucket_counts)
            ]
        else:
            wire["series"] = [
                {"labels": list(labels), "value": value}
                for labels, value in sorted(self.values.items())
            ]
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "MetricSnapshot":
        """Rebuild a metric snapshot from :meth:`to_wire` output."""
        metric = cls(
            name=wire["name"],
            kind=wire["kind"],
            help=wire.get("help", ""),
            label_names=tuple(wire.get("label_names", ())),
        )
        if metric.kind == "histogram":
            metric.buckets = tuple(wire.get("buckets", ()))
            for entry in wire.get("series", ()):
                labels = tuple(entry["labels"])
                metric.bucket_counts[labels] = tuple(
                    int(c) for c in entry["bucket_counts"]
                )
                metric.sums[labels] = float(entry.get("sum", 0.0))
                metric.counts[labels] = int(entry.get("count", 0))
        else:
            for entry in wire.get("series", ()):
                metric.values[tuple(entry["labels"])] = entry["value"]
        return metric

    def merge(self, other: "MetricSnapshot") -> "MetricSnapshot":
        """Add ``other``'s values into this snapshot; returns self."""
        if other.name != self.name:
            raise ValueError(
                f"cannot merge metric {other.name!r} into {self.name!r}"
            )
        if other.kind != self.kind or other.label_names != self.label_names:
            raise ValueError(
                f"{self.name}: incompatible shapes "
                f"({other.kind}{other.label_names} vs "
                f"{self.kind}{self.label_names})"
            )
        if self.kind == "histogram" and other.buckets != self.buckets:
            raise ValueError(f"{self.name}: bucket bounds differ")
        for labels, value in other.values.items():
            self.values[labels] = self.values.get(labels, 0) + value
        for labels, counts in other.bucket_counts.items():
            mine = self.bucket_counts.get(labels)
            if mine is None:
                self.bucket_counts[labels] = tuple(counts)
            else:
                self.bucket_counts[labels] = tuple(
                    a + b for a, b in zip(mine, counts)
                )
        for labels, total in other.sums.items():
            self.sums[labels] = self.sums.get(labels, 0.0) + total
        for labels, count in other.counts.items():
            self.counts[labels] = self.counts.get(labels, 0) + count
        return self


@dataclass(slots=True)
class Snapshot:
    """A full registry's values at one instant, keyed by metric name.

    ``sequence`` is the emitter's emission index (0 for ad-hoc
    snapshots); merged snapshots keep the maximum, so a merged view is
    stamped with the newest contributing emission.
    """

    sequence: int = 0
    metrics: Dict[str, MetricSnapshot] = field(default_factory=dict)

    def merge(self, other: "Snapshot") -> "Snapshot":
        """Fold ``other`` in (the AdditiveCounters convention); self."""
        self.sequence = max(self.sequence, other.sequence)
        for name, metric in other.metrics.items():
            mine = self.metrics.get(name)
            if mine is None:
                self.metrics[name] = _copy_metric(metric)
            else:
                mine.merge(metric)
        return self

    def to_wire(self) -> Dict[str, Any]:
        """Stable, versioned, JSON-safe form for cross-process transport.

        Everything a peer needs to reconstruct (and merge) the snapshot
        without unpickling anything: the schema tag, the emission
        sequence, and each metric's :meth:`MetricSnapshot.to_wire` dict
        in sorted-name order.  ``json.dumps`` of the result is the
        fleet protocol's telemetry payload.
        """
        return {
            "schema": SNAPSHOT_WIRE_SCHEMA,
            "sequence": self.sequence,
            "metrics": [
                self.metrics[name].to_wire()
                for name in sorted(self.metrics)
            ],
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "Snapshot":
        """Rebuild a snapshot from :meth:`to_wire` output.

        Raises :class:`ValueError` on a schema mismatch — merging a
        snapshot whose layout this build does not understand would
        corrupt the aggregate silently.
        """
        schema = wire.get("schema")
        if schema != SNAPSHOT_WIRE_SCHEMA:
            raise ValueError(
                f"snapshot wire schema {schema!r} != expected "
                f"{SNAPSHOT_WIRE_SCHEMA!r}"
            )
        snapshot = cls(sequence=int(wire.get("sequence", 0)))
        for entry in wire.get("metrics", ()):
            metric = MetricSnapshot.from_wire(entry)
            snapshot.metrics[metric.name] = metric
        return snapshot

    def get(self, name: str) -> Optional[MetricSnapshot]:
        return self.metrics.get(name)

    def value(self, name: str, labels: LabelValues = ()) -> float:
        """Convenience: one counter/gauge value (0 when absent)."""
        metric = self.metrics.get(name)
        if metric is None:
            return 0
        return metric.values.get(labels, 0)

    def __len__(self) -> int:
        return len(self.metrics)


def _copy_metric(metric: MetricSnapshot) -> MetricSnapshot:
    return MetricSnapshot(
        name=metric.name,
        kind=metric.kind,
        help=metric.help,
        label_names=metric.label_names,
        values=dict(metric.values),
        buckets=metric.buckets,
        bucket_counts=dict(metric.bucket_counts),
        sums=dict(metric.sums),
        counts=dict(metric.counts),
    )


def snapshot_registry(registry: MetricsRegistry, *,
                      sequence: int = 0) -> Snapshot:
    """Freeze a registry's current values into a Snapshot."""
    metrics: Dict[str, MetricSnapshot] = {}
    for metric in registry:
        if isinstance(metric, Histogram):
            metrics[metric.name] = MetricSnapshot(
                name=metric.name,
                kind=metric.kind,
                help=metric.help,
                label_names=metric.label_names,
                buckets=metric.buckets,
                bucket_counts={
                    labels: tuple(counts)
                    for labels, counts in metric.bucket_counts.items()
                },
                sums=dict(metric.sums),
                counts=dict(metric.counts),
            )
        else:
            metrics[metric.name] = MetricSnapshot(
                name=metric.name,
                kind=metric.kind,
                help=metric.help,
                label_names=metric.label_names,
                values=dict(metric.values),  # type: ignore[attr-defined]
            )
    return Snapshot(sequence=sequence, metrics=metrics)


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Sum any number of snapshots into a fresh one (input order free)."""
    merged = Snapshot()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged


def absorb_into_registry(registry: MetricsRegistry,
                         snapshot: Snapshot) -> None:
    """Add a snapshot's values into live registry metrics.

    Counters add via :meth:`~repro.obs.metrics.Counter.inc`, gauges via
    :meth:`~repro.obs.metrics.Gauge.inc`, histograms bucket-wise — so
    absorbing N worker snapshots into a coordinator registry yields the
    same totals as merging the snapshots first.
    """
    for metric in snapshot.metrics.values():
        if metric.kind == "counter":
            counter: Counter = registry.counter(
                metric.name, metric.help, metric.label_names
            )
            for labels, value in metric.values.items():
                counter.inc(labels, value)
        elif metric.kind == "gauge":
            gauge: Gauge = registry.gauge(
                metric.name, metric.help, metric.label_names
            )
            for labels, value in metric.values.items():
                gauge.inc(labels, value)
        elif metric.kind == "histogram":
            histogram: Histogram = registry.histogram(
                metric.name, metric.help, metric.label_names,
                buckets=metric.buckets,
            )
            for labels, counts in metric.bucket_counts.items():
                mine = histogram.bucket_counts.get(labels)
                if mine is None:
                    histogram.bucket_counts[labels] = list(counts)
                else:
                    for i, count in enumerate(counts):
                        mine[i] += count
                histogram.sums[labels] = (
                    histogram.sums.get(labels, 0.0)
                    + metric.sums.get(labels, 0.0)
                )
                histogram.counts[labels] = (
                    histogram.counts.get(labels, 0)
                    + metric.counts.get(labels, 0)
                )
        else:
            raise ValueError(
                f"{metric.name}: unknown metric kind {metric.kind!r}"
            )


#: Re-exported for callers that only need the list-of-names view.
__all__: List[str] = [
    "MetricSnapshot",
    "SNAPSHOT_WIRE_SCHEMA",
    "Snapshot",
    "absorb_into_registry",
    "merge_snapshots",
    "snapshot_registry",
]
