"""Snapshots: frozen, transportable, mergeable metric state.

A :class:`Snapshot` is plain data (dataclasses of dicts and tuples), so
it pickles cleanly across the cluster's process boundary inside a
``ShardResult``.  Merging follows the repo's ``AdditiveCounters``
convention: every value adds per labelset, which makes merge
associative and commutative — the order shards report in cannot change
the cluster-wide view.  Gauges add too; per-shard gauges therefore
carry the shard id as a label so the merged snapshot keeps them
distinguishable (and their unlabeled sum is the cluster total, which is
what an operator wants for occupancy and queue depth anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .metrics import Counter, Gauge, Histogram, LabelValues, MetricsRegistry


@dataclass(slots=True)
class MetricSnapshot:
    """One metric's frozen values (all labelsets)."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    label_names: Tuple[str, ...] = ()
    #: counter/gauge: labelset -> value.  Unused for histograms.
    values: Dict[LabelValues, float] = field(default_factory=dict)
    #: histogram only: finite upper bounds (the +Inf bucket is implicit).
    buckets: Tuple[float, ...] = ()
    #: histogram only: labelset -> per-bucket counts (len(buckets) + 1).
    bucket_counts: Dict[LabelValues, Tuple[int, ...]] = field(
        default_factory=dict
    )
    sums: Dict[LabelValues, float] = field(default_factory=dict)
    counts: Dict[LabelValues, int] = field(default_factory=dict)

    def merge(self, other: "MetricSnapshot") -> "MetricSnapshot":
        """Add ``other``'s values into this snapshot; returns self."""
        if other.name != self.name:
            raise ValueError(
                f"cannot merge metric {other.name!r} into {self.name!r}"
            )
        if other.kind != self.kind or other.label_names != self.label_names:
            raise ValueError(
                f"{self.name}: incompatible shapes "
                f"({other.kind}{other.label_names} vs "
                f"{self.kind}{self.label_names})"
            )
        if self.kind == "histogram" and other.buckets != self.buckets:
            raise ValueError(f"{self.name}: bucket bounds differ")
        for labels, value in other.values.items():
            self.values[labels] = self.values.get(labels, 0) + value
        for labels, counts in other.bucket_counts.items():
            mine = self.bucket_counts.get(labels)
            if mine is None:
                self.bucket_counts[labels] = tuple(counts)
            else:
                self.bucket_counts[labels] = tuple(
                    a + b for a, b in zip(mine, counts)
                )
        for labels, total in other.sums.items():
            self.sums[labels] = self.sums.get(labels, 0.0) + total
        for labels, count in other.counts.items():
            self.counts[labels] = self.counts.get(labels, 0) + count
        return self


@dataclass(slots=True)
class Snapshot:
    """A full registry's values at one instant, keyed by metric name.

    ``sequence`` is the emitter's emission index (0 for ad-hoc
    snapshots); merged snapshots keep the maximum, so a merged view is
    stamped with the newest contributing emission.
    """

    sequence: int = 0
    metrics: Dict[str, MetricSnapshot] = field(default_factory=dict)

    def merge(self, other: "Snapshot") -> "Snapshot":
        """Fold ``other`` in (the AdditiveCounters convention); self."""
        self.sequence = max(self.sequence, other.sequence)
        for name, metric in other.metrics.items():
            mine = self.metrics.get(name)
            if mine is None:
                self.metrics[name] = _copy_metric(metric)
            else:
                mine.merge(metric)
        return self

    def get(self, name: str) -> Optional[MetricSnapshot]:
        return self.metrics.get(name)

    def value(self, name: str, labels: LabelValues = ()) -> float:
        """Convenience: one counter/gauge value (0 when absent)."""
        metric = self.metrics.get(name)
        if metric is None:
            return 0
        return metric.values.get(labels, 0)

    def __len__(self) -> int:
        return len(self.metrics)


def _copy_metric(metric: MetricSnapshot) -> MetricSnapshot:
    return MetricSnapshot(
        name=metric.name,
        kind=metric.kind,
        help=metric.help,
        label_names=metric.label_names,
        values=dict(metric.values),
        buckets=metric.buckets,
        bucket_counts=dict(metric.bucket_counts),
        sums=dict(metric.sums),
        counts=dict(metric.counts),
    )


def snapshot_registry(registry: MetricsRegistry, *,
                      sequence: int = 0) -> Snapshot:
    """Freeze a registry's current values into a Snapshot."""
    metrics: Dict[str, MetricSnapshot] = {}
    for metric in registry:
        if isinstance(metric, Histogram):
            metrics[metric.name] = MetricSnapshot(
                name=metric.name,
                kind=metric.kind,
                help=metric.help,
                label_names=metric.label_names,
                buckets=metric.buckets,
                bucket_counts={
                    labels: tuple(counts)
                    for labels, counts in metric.bucket_counts.items()
                },
                sums=dict(metric.sums),
                counts=dict(metric.counts),
            )
        else:
            metrics[metric.name] = MetricSnapshot(
                name=metric.name,
                kind=metric.kind,
                help=metric.help,
                label_names=metric.label_names,
                values=dict(metric.values),  # type: ignore[attr-defined]
            )
    return Snapshot(sequence=sequence, metrics=metrics)


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Sum any number of snapshots into a fresh one (input order free)."""
    merged = Snapshot()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged


def absorb_into_registry(registry: MetricsRegistry,
                         snapshot: Snapshot) -> None:
    """Add a snapshot's values into live registry metrics.

    Counters add via :meth:`~repro.obs.metrics.Counter.inc`, gauges via
    :meth:`~repro.obs.metrics.Gauge.inc`, histograms bucket-wise — so
    absorbing N worker snapshots into a coordinator registry yields the
    same totals as merging the snapshots first.
    """
    for metric in snapshot.metrics.values():
        if metric.kind == "counter":
            counter: Counter = registry.counter(
                metric.name, metric.help, metric.label_names
            )
            for labels, value in metric.values.items():
                counter.inc(labels, value)
        elif metric.kind == "gauge":
            gauge: Gauge = registry.gauge(
                metric.name, metric.help, metric.label_names
            )
            for labels, value in metric.values.items():
                gauge.inc(labels, value)
        elif metric.kind == "histogram":
            histogram: Histogram = registry.histogram(
                metric.name, metric.help, metric.label_names,
                buckets=metric.buckets,
            )
            for labels, counts in metric.bucket_counts.items():
                mine = histogram.bucket_counts.get(labels)
                if mine is None:
                    histogram.bucket_counts[labels] = list(counts)
                else:
                    for i, count in enumerate(counts):
                        mine[i] += count
                histogram.sums[labels] = (
                    histogram.sums.get(labels, 0.0)
                    + metric.sums.get(labels, 0.0)
                )
                histogram.counts[labels] = (
                    histogram.counts.get(labels, 0)
                    + metric.counts.get(labels, 0)
                )
        else:
            raise ValueError(
                f"{metric.name}: unknown metric kind {metric.kind!r}"
            )


#: Re-exported for callers that only need the list-of-names view.
__all__: List[str] = [
    "MetricSnapshot",
    "Snapshot",
    "absorb_into_registry",
    "merge_snapshots",
    "snapshot_registry",
]
