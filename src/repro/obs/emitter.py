"""TelemetryEmitter: periodic snapshot emission during a trace pass.

The emitter owns one :class:`~repro.obs.metrics.MetricsRegistry`, a set
of collector callbacks, an interval clock, and an output destination.
The driving loop (:class:`repro.engine.MonitorEngine`) calls
:meth:`maybe_emit` once per ingest chunk — a single monotonic-clock
read when the interval has not elapsed, so the telemetry-on hot path
costs one comparison per ~8k packets between emissions.

Emission modes:

* ``json`` — one JSON line per emission (schema ``dart-telemetry/1``),
  appended to the stream/file; a run produces a JSONL log.
* ``prom`` — a full Prometheus text exposition per emission.  On a
  stream each exposition is prefixed with an ``# dart-telemetry`` comment
  banner; when writing to a *path* the file is atomically rewritten
  each time (node-exporter textfile-collector convention), so a scraper
  sidecar always reads one complete, current exposition.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, List, Optional, TextIO

from ..export.sinks import open_creating_parents
from .exporters import to_json, to_prometheus
from .metrics import MetricsRegistry

TELEMETRY_MODES = ("off", "json", "prom")

DEFAULT_INTERVAL_S = 1.0

Collector = Callable[[MetricsRegistry], None]


class TelemetryEmitter:
    """Collect-snapshot-format-write, every ``interval_s`` seconds."""

    def __init__(
        self,
        mode: str = "json",
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        stream: Optional[TextIO] = None,
        path: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if mode not in ("json", "prom"):
            raise ValueError(
                f"mode must be 'json' or 'prom', got {mode!r} "
                "(telemetry-off runs simply have no emitter)"
            )
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if stream is not None and path is not None:
            raise ValueError("give stream or path, not both")
        self.mode = mode
        self.interval_s = interval_s
        self.registry = registry if registry is not None else MetricsRegistry()
        self.emissions = 0
        self._collectors: List[Collector] = []
        self._clock = clock
        self._next_due = clock() + interval_s
        self._path = path
        self._closed = False
        if path is not None and mode == "json":
            # JSONL appends; the file is this run's emission log.
            self._stream: Optional[TextIO] = open_creating_parents(path, "w")
            self._owns_stream = True
        else:
            self._stream = stream if stream is not None else sys.stderr
            self._owns_stream = False
            if path is not None:
                self._stream = None  # prom-to-path rewrites per emission

    def add_collector(self, collector: Collector) -> None:
        """Register a callback run against the registry per emission."""
        self._collectors.append(collector)

    def due(self) -> bool:
        """Has the interval elapsed?  One clock read; no side effects."""
        return self._clock() >= self._next_due

    def maybe_emit(self) -> Optional[str]:
        """Emit if the interval elapsed; the per-chunk entry point."""
        if not self.due():
            return None
        return self.emit()

    def emit(self) -> str:
        """Collect, snapshot, format, and write one emission now."""
        for collector in self._collectors:
            collector(self.registry)
        self.emissions += 1
        self._next_due = self._clock() + self.interval_s
        snapshot = self.registry.snapshot(sequence=self.emissions)
        if self.mode == "json":
            text = to_json(snapshot, timestamp_unix_ns=time.time_ns())
            self._write(text + "\n")
        else:
            text = to_prometheus(snapshot)
            if self._path is not None:
                self._rewrite(text)
            else:
                banner = (f"# dart-telemetry emission={self.emissions} "
                          f"unix_ms={time.time_ns() // 1_000_000}\n")
                self._write(banner + text)
        return text

    def _write(self, text: str) -> None:
        stream = self._stream
        if stream is None:
            return
        stream.write(text)
        stream.flush()

    def _rewrite(self, text: str) -> None:
        """Atomically replace the output file with one fresh exposition."""
        tmp_path = f"{self._path}.tmp"
        with open_creating_parents(tmp_path, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, self._path)

    def close(self) -> None:
        """Final emission (always), then release any owned file handle.

        Guarantees even a sub-interval run leaves one complete snapshot
        behind — the end-of-trace state.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self.emit()
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None


# -- CLI glue (shared by dart-replay / dart-bench / dart-detect) -----------


def add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the ``--telemetry*`` flag family to a CLI parser."""
    parser.add_argument(
        "--telemetry", choices=list(TELEMETRY_MODES), default="off",
        help="periodically emit run metrics: 'json' (JSON lines) or "
             "'prom' (Prometheus text exposition); default: off",
    )
    parser.add_argument(
        "--telemetry-interval", type=float, default=DEFAULT_INTERVAL_S,
        metavar="SECONDS",
        help=f"seconds between emissions (default {DEFAULT_INTERVAL_S})",
    )
    parser.add_argument(
        "--telemetry-out", metavar="PATH", default=None,
        help="emission destination (default: stderr).  With --telemetry "
             "prom the file is atomically rewritten per emission; with "
             "json it accumulates JSON lines",
    )


def emitter_from_args(args: argparse.Namespace) -> Optional[TelemetryEmitter]:
    """Build the emitter an argparse namespace asks for (None when off)."""
    mode = getattr(args, "telemetry", "off")
    if mode == "off":
        return None
    if args.telemetry_interval <= 0:
        raise SystemExit("--telemetry-interval must be positive")
    return TelemetryEmitter(
        mode,
        interval_s=args.telemetry_interval,
        path=args.telemetry_out,
    )
