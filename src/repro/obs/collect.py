"""Collectors: sample existing monitor state into a metrics registry.

The monitors already maintain cumulative counters (``DartStats``,
``TcpTraceStats``, ``RangeTrackerStats``, ...) on their hot paths; the
telemetry layer does not add per-packet work on top.  Instead, a
collector runs once per emission interval and copies those counters
into the registry (:meth:`~repro.obs.metrics.Counter.set_cumulative`),
plus point-in-time gauges (table occupancy).

Metric naming scheme (DESIGN §9): ``dart_<subsystem>_<what>[_total]``
with subsystems ``monitor`` (per-monitor core counters), ``engine``
(trace-pass plumbing), and ``cluster`` (shard coordination).  Every
per-monitor metric carries ``monitor`` and ``shard`` labels; serial
monitors use ``shard=""`` so the labelset shape is identical either
side of the cluster merge.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any, Tuple

from .metrics import MetricsRegistry

#: Labels every per-monitor metric carries.
MONITOR_LABELS: Tuple[str, ...] = ("monitor", "shard")
VERDICT_LABELS: Tuple[str, ...] = ("monitor", "shard", "verdict")
#: Distribution metrics add the aggregation key (flow or prefix);
#: ``key=""`` is the all-traffic aggregate.
DISTRIBUTION_LABELS: Tuple[str, ...] = ("monitor", "shard", "key")

#: Per-key labelsets emitted per distribution metric (the aggregate
#: rides on top).  Bounds scrape size when the stage keys per flow.
DISTRIBUTION_TOP_KEYS = 16


def _verdict_name(verdict: Any) -> str:
    if isinstance(verdict, Enum):
        return verdict.name.lower()
    return str(verdict)


def collect_stats(registry: MetricsRegistry, stats: Any,
                  monitor: str, shard: str = "",
                  prefix: str = "dart_monitor") -> None:
    """Copy a stats dataclass into cumulative counters.

    Integer fields become ``<prefix>_<field>_total{monitor=,shard=}``;
    dict-valued fields (the verdict histograms) fan out into one
    counter per verdict with a ``verdict`` label.
    """
    if not is_dataclass(stats):
        return
    labels = (monitor, shard)
    for f in fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            registry.counter(
                f"{prefix}_{f.name}_total", label_names=MONITOR_LABELS
            ).set_cumulative(labels, value)
        elif isinstance(value, dict):
            counter = registry.counter(
                f"{prefix}_{f.name}_total", label_names=VERDICT_LABELS
            )
            for verdict, count in value.items():
                counter.set_cumulative(
                    (monitor, shard, _verdict_name(verdict)), count
                )


def _quantile_suffix(q: float) -> str:
    """``50.0`` -> ``"50"``, ``99.9`` -> ``"99_9"`` (metric-name safe)."""
    if q == int(q):
        return str(int(q))
    return str(q).replace(".", "_")


def collect_distribution(registry: MetricsRegistry, distribution: Any,
                         monitor: str, shard: str = "",
                         top_keys: int = DISTRIBUTION_TOP_KEYS) -> None:
    """Sample a distribution analytics stage into the registry.

    Emits ``dart_rtt_hist`` (rendered by the Prometheus exporter as
    cumulative ``dart_rtt_hist_bucket``/``_sum``/``_count`` series, in
    seconds) and sketch-derived ``dart_rtt_p<q>`` gauges.  Each metric
    carries the all-traffic aggregate under ``key=""`` plus the
    ``top_keys`` busiest per-key series — copied with one
    :meth:`~repro.obs.metrics.Histogram.set_state` per labelset, so
    telemetry stays zero-cost per packet.
    """
    flush = getattr(distribution, "_flush", None)
    if callable(flush):
        flush()  # fold any buffered per-key deltas before reading state
    hist_stage = distribution.histogram
    if hist_stage.total.count == 0:
        return
    buckets_s = tuple(edge / 1e9 for edge in hist_stage.spec.edges_ns)
    hist = registry.histogram(
        "dart_rtt_hist",
        "RTT distribution (seconds) from the fixed-bin analytics stage",
        DISTRIBUTION_LABELS, buckets=buckets_s,
    )

    def busiest(per_key):
        ranked = sorted(
            per_key.items(),
            key=lambda kv: (-kv[1].count, distribution.key_label(kv[0])),
        )
        return ranked[:top_keys]

    hist.set_state(
        (monitor, shard, ""),
        hist_stage.total.counts,
        hist_stage.total.sum_ns / 1e9,
        hist_stage.total.count,
    )
    for key, per_key_hist in busiest(hist_stage.per_key):
        hist.set_state(
            (monitor, shard, distribution.key_label(key)),
            per_key_hist.counts,
            per_key_hist.sum_ns / 1e9,
            per_key_hist.count,
        )

    sketch_stage = distribution.sketch
    for q in distribution.quantiles:
        gauge = registry.gauge(
            f"dart_rtt_p{_quantile_suffix(q)}",
            f"Sketch-estimated p{q:g} RTT (seconds)",
            DISTRIBUTION_LABELS,
        )
        if sketch_stage.total.count:
            gauge.set((monitor, shard, ""),
                      sketch_stage.total.quantile(q) / 1e9)
        for key, sketch in busiest(sketch_stage.per_key):
            if sketch.count:
                gauge.set((monitor, shard, distribution.key_label(key)),
                          sketch.quantile(q) / 1e9)


def collect_monitor(registry: MetricsRegistry, monitor: Any,
                    name: str, shard: str = "") -> None:
    """Sample one monitor's observable state into the registry.

    A monitor may define ``collect_telemetry(registry, name)`` to take
    over entirely (the cluster coordinator does — reading ``stats`` on
    a mid-flight :class:`~repro.cluster.ShardedDart` would finalize
    it).  Otherwise this generic path reads:

    * the ``stats`` counters dataclass (every monitor has one),
    * Range Tracker verdict/collapse counters and RT/PT occupancy
      (Dart only; read through ``getattr`` guards like the cluster's
      ``harvest`` does, so baselines collect cleanly).
    """
    custom = getattr(monitor, "collect_telemetry", None)
    if callable(custom):
        custom(registry, name)
        return
    labels = (name, shard)
    collect_stats(registry, monitor.stats, name, shard)
    analytics = getattr(monitor, "analytics", None)
    snapshot = getattr(analytics, "distribution_snapshot", None)
    if callable(snapshot):
        collect_distribution(registry, snapshot(), name, shard)
    range_tracker = getattr(monitor, "range_tracker", None)
    if range_tracker is not None:
        collect_stats(registry, range_tracker.stats, name, shard,
                      prefix="dart_monitor_rt")
        registry.counter(
            "dart_monitor_rt_collapses_total",
            "Total Range Tracker collapses (congestion signal, paper §3.1)",
            MONITOR_LABELS,
        ).set_cumulative(labels, range_tracker.stats.total_collapses)
    occupancy = getattr(monitor, "occupancy", None)
    if callable(occupancy):
        occupied = occupancy()
        if isinstance(occupied, tuple):
            # Dart: (RT, PT) occupied-slot counts.
            rt_occupied, pt_occupied = occupied
            registry.gauge(
                "dart_monitor_rt_occupancy",
                "Occupied Range Tracker slots", MONITOR_LABELS,
            ).set(labels, rt_occupied)
            registry.gauge(
                "dart_monitor_pt_occupancy",
                "Occupied Packet Tracker slots", MONITOR_LABELS,
            ).set(labels, pt_occupied)
        else:
            # Baselines expose one flow-table occupancy count.
            registry.gauge(
                "dart_monitor_table_occupancy",
                "Occupied flow-table slots", MONITOR_LABELS,
            ).set(labels, occupied)
