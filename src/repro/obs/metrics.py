"""Metric primitives: Counter, Gauge, Histogram, and their registry.

Design constraints (DESIGN §9):

* **Hot-path increments are one dict operation.**  Every primitive
  stores its per-labelset values in a plain dict keyed by the label
  *value* tuple; ``inc``/``set``/``observe`` are a ``dict.get`` plus a
  store — no locks, no attribute indirection, no allocation beyond the
  key tuple the caller already holds.
* **No locks in the serial path.**  A registry belongs to one run (one
  engine pass, one worker); cross-shard aggregation happens by merging
  :class:`~repro.obs.snapshot.Snapshot` objects, never by sharing a
  registry between threads or processes.
* **Sampling beats instrumenting.**  The monitors already maintain
  additive counters (``DartStats`` and friends); collectors copy those
  cumulative values into the registry at emission time via
  :meth:`Counter.set_cumulative`, so enabling telemetry adds *zero*
  work per packet — only work per emission interval.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple, Union

LabelValues = Tuple[str, ...]

_NO_LABELS: LabelValues = ()

#: Prometheus metric/label name syntax (colons reserved for rules).
_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default buckets for wall-clock durations in seconds (chunk timings,
#: finalize durations): 1ms .. 10s, roughly log-spaced.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def _check_name(name: str, what: str = "metric") -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid {what} name {name!r}")
    return name


class _Metric:
    """Shared surface of the three primitives."""

    __slots__ = ("name", "help", "label_names")

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 label_names: Tuple[str, ...] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        for label in self.label_names:
            _check_name(label, "label")

    def _check_labels(self, labels: LabelValues) -> None:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label "
                f"value(s) {self.label_names}, got {labels!r}"
            )


class Counter(_Metric):
    """A monotonically increasing count, one value per labelset."""

    __slots__ = ("values",)

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 label_names: Tuple[str, ...] = ()) -> None:
        super().__init__(name, help, label_names)
        self.values: Dict[LabelValues, float] = {}

    def inc(self, labels: LabelValues = _NO_LABELS,
            amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (one dict get + store; the hot-path write)."""
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        values = self.values
        values[labels] = values.get(labels, 0) + amount

    def set_cumulative(self, labels: LabelValues,
                       value: Union[int, float]) -> None:
        """Overwrite with an externally maintained cumulative total.

        The collector fast path: upstream counters (``DartStats`` et al.)
        are already cumulative, so sampling them is a single store —
        cheaper and race-free compared to computing deltas.
        """
        self.values[labels] = value

    def value(self, labels: LabelValues = _NO_LABELS) -> float:
        return self.values.get(labels, 0)


class Gauge(_Metric):
    """A value that can go up and down (occupancy, queue depth)."""

    __slots__ = ("values",)

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 label_names: Tuple[str, ...] = ()) -> None:
        super().__init__(name, help, label_names)
        self.values: Dict[LabelValues, float] = {}

    def set(self, labels: LabelValues = _NO_LABELS,
            value: Union[int, float] = 0) -> None:
        self.values[labels] = value

    def inc(self, labels: LabelValues = _NO_LABELS,
            amount: Union[int, float] = 1) -> None:
        values = self.values
        values[labels] = values.get(labels, 0) + amount

    def dec(self, labels: LabelValues = _NO_LABELS,
            amount: Union[int, float] = 1) -> None:
        self.inc(labels, -amount)

    def value(self, labels: LabelValues = _NO_LABELS) -> float:
        return self.values.get(labels, 0)


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches the rest.  Per labelset the histogram keeps one bucket-count
    list plus a running sum and count — ``observe`` is a bisect and
    three stores.
    """

    __slots__ = ("buckets", "bucket_counts", "sums", "counts")

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 label_names: Tuple[str, ...] = (),
                 buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        super().__init__(name, help, label_names)
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise ValueError(f"{self.name}: need at least one bucket bound")
        if len(set(ordered)) != len(ordered):
            raise ValueError(f"{self.name}: duplicate bucket bounds")
        self.buckets = ordered
        self.bucket_counts: Dict[LabelValues, List[int]] = {}
        self.sums: Dict[LabelValues, float] = {}
        self.counts: Dict[LabelValues, int] = {}

    def observe(self, value: Union[int, float],
                labels: LabelValues = _NO_LABELS) -> None:
        counts = self.bucket_counts.get(labels)
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)
            self.bucket_counts[labels] = counts
        counts[bisect_left(self.buckets, value)] += 1
        self.sums[labels] = self.sums.get(labels, 0.0) + value
        self.counts[labels] = self.counts.get(labels, 0) + 1

    def set_state(self, labels: LabelValues, bucket_counts: List[int],
                  sum: float, count: int) -> None:
        """Overwrite one labelset from externally maintained bins.

        The histogram twin of :meth:`Counter.set_cumulative`: analytics
        stages (:class:`repro.core.hist.RttHistogram`) already maintain
        per-bin counts on their own hot path, so a collector samples
        them with one copy per emission instead of re-observing every
        value.  ``bucket_counts`` are per-bin (non-cumulative) counts,
        one per finite bound plus the +Inf overflow.
        """
        if len(bucket_counts) != len(self.buckets) + 1:
            raise ValueError(
                f"{self.name}: expected {len(self.buckets) + 1} bin "
                f"counts, got {len(bucket_counts)}"
            )
        self.bucket_counts[labels] = list(bucket_counts)
        self.sums[labels] = sum
        self.counts[labels] = count

    def count(self, labels: LabelValues = _NO_LABELS) -> int:
        return self.counts.get(labels, 0)

    def sum(self, labels: LabelValues = _NO_LABELS) -> float:
        return self.sums.get(labels, 0.0)


class MetricsRegistry:
    """One run's metrics, keyed by name; get-or-create accessors.

    Re-requesting a name returns the existing metric when the kind and
    label names match, and raises when they do not — two call sites
    cannot silently fork one metric into incompatible shapes.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       label_names: Tuple[str, ...], **kwargs):
        metric = self._metrics.get(name)
        if metric is not None:
            if type(metric) is not cls:
                raise ValueError(
                    f"{name!r} already registered as a {metric.kind}"
                )
            if metric.label_names != tuple(label_names):
                raise ValueError(
                    f"{name!r} already registered with labels "
                    f"{metric.label_names}, requested {tuple(label_names)}"
                )
            return metric
        metric = cls(name, help, label_names, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                label_names: Tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(self, name: str, help: str = "",
              label_names: Tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(self, name: str, help: str = "",
                  label_names: Tuple[str, ...] = (),
                  buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, label_names,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self, *, sequence: int = 0):
        """Freeze current values into a transportable Snapshot."""
        from .snapshot import snapshot_registry

        return snapshot_registry(self, sequence=sequence)

    def absorb(self, snapshot) -> None:
        """Fold a (possibly remote) snapshot's values into this registry.

        Every value adds, per labelset — the same summation rules as
        :meth:`~repro.obs.snapshot.Snapshot.merge`.  This is how a
        coordinator surfaces worker-side snapshots that crossed the
        process boundary inside a ShardResult.
        """
        from .snapshot import absorb_into_registry

        absorb_into_registry(self, snapshot)
