"""repro.obs — continuous telemetry for Dart runs.

Dart's pitch is *continuous* in-network monitoring; this package makes
the reproduction observable the same way: instead of one ``DartStats``
dump at end of trace, a run periodically exports its metric state while
packets are still flowing.

Layers:

* :mod:`.metrics` — ``Counter`` / ``Gauge`` / ``Histogram`` primitives
  with label support and a per-run :class:`MetricsRegistry`.  Hot-path
  writes are single dict operations; there are no locks (one registry
  per run, cross-shard aggregation happens on snapshots).
* :mod:`.snapshot` — :class:`Snapshot`, the frozen plain-data form that
  pickles across the cluster's process boundary and merges by
  summation (the repo's ``AdditiveCounters`` convention).
* :mod:`.exporters` — Prometheus text exposition and JSON lines, plus
  :func:`parse_prometheus` for round-trip verification.
* :mod:`.collect` — collectors that *sample* the counters monitors
  already keep, so telemetry costs nothing per packet and its overhead
  is bounded by the emission interval (the perfgate holds it ≤3%).
* :mod:`.emitter` — :class:`TelemetryEmitter`, the periodic
  collect-snapshot-format-write driver the engine calls per chunk,
  and the shared ``--telemetry`` CLI flag family.
"""

from .collect import (
    DISTRIBUTION_LABELS,
    MONITOR_LABELS,
    VERDICT_LABELS,
    collect_distribution,
    collect_monitor,
    collect_stats,
)
from .emitter import (
    DEFAULT_INTERVAL_S,
    TELEMETRY_MODES,
    TelemetryEmitter,
    add_telemetry_arguments,
    emitter_from_args,
)
from .exporters import (
    TELEMETRY_SCHEMA,
    parse_prometheus,
    to_json,
    to_prometheus,
)
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .snapshot import (
    SNAPSHOT_WIRE_SCHEMA,
    MetricSnapshot,
    Snapshot,
    absorb_into_registry,
    merge_snapshots,
    snapshot_registry,
)

__all__ = [
    "Counter",
    "DEFAULT_INTERVAL_S",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "DISTRIBUTION_LABELS",
    "MONITOR_LABELS",
    "MetricSnapshot",
    "MetricsRegistry",
    "SNAPSHOT_WIRE_SCHEMA",
    "Snapshot",
    "TELEMETRY_MODES",
    "TELEMETRY_SCHEMA",
    "TelemetryEmitter",
    "VERDICT_LABELS",
    "absorb_into_registry",
    "add_telemetry_arguments",
    "collect_distribution",
    "collect_monitor",
    "collect_stats",
    "emitter_from_args",
    "merge_snapshots",
    "parse_prometheus",
    "snapshot_registry",
    "to_json",
    "to_prometheus",
]
