"""Trace replay utilities: feed packet streams into monitors.

The in-repo equivalent of the paper's tcpreplay setup (§5): any object
with a ``process(record)`` method (Dart, tcptrace, the strawman) can be
driven from a record list, a generator, or a pcap file on disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice
from typing import Iterable, List, Sequence

from ..net.packet import PacketRecord
from ..net.pcapng import read_any_capture

#: Records per chunk when feeding monitors through their batched entry
#: point; large enough to amortise the per-chunk overhead, small enough
#: that replay memory stays bounded on generator inputs.
REPLAY_CHUNK = 8192


@dataclass(slots=True)
class ReplayReport:
    """Outcome of one replay run."""

    packets: int
    wall_seconds: float

    @property
    def packets_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.packets / self.wall_seconds


def replay(records: Iterable[PacketRecord], *monitors,
           fastpath: bool = False) -> ReplayReport:
    """Feed every record to every monitor, in timestamp order.

    Monitors exposing ``process_batch`` (Dart, ShardedDart) are fed in
    chunks through the batched fast path; anything else gets the
    classic per-record ``process`` loop.  Per-monitor packet order is
    identical either way, and monitors are independent, so mixing
    batched and unbatched monitors in one replay is fine.

    With ``fastpath=True`` each chunk is additionally lifted into
    :class:`~repro.net.columnar.PacketColumns` once and handed to
    monitors exposing ``process_columns`` — same samples and stats,
    vectorised classification.  Monitors without ``process_columns``
    (and every monitor when numpy is missing) keep the object path.
    """
    columns_fns = [None] * len(monitors)
    if fastpath:
        from ..net.columnar import HAVE_NUMPY, records_to_columns

        if HAVE_NUMPY:
            columns_fns = [getattr(monitor, "process_columns", None)
                           for monitor in monitors]
        fastpath = any(fn is not None for fn in columns_fns)
    batch_fns = [getattr(monitor, "process_batch", None)
                 for monitor in monitors]
    count = 0
    start = time.perf_counter()
    iterator = iter(records)
    while True:
        chunk = list(islice(iterator, REPLAY_CHUNK))
        if not chunk:
            break
        cols = records_to_columns(chunk) if fastpath else None
        for monitor, batch_fn, columns_fn in zip(monitors, batch_fns,
                                                 columns_fns):
            if cols is not None and columns_fn is not None:
                columns_fn(cols)
            elif batch_fn is not None:
                batch_fn(chunk)
            else:
                process = monitor.process
                for record in chunk:
                    process(record)
        count += len(chunk)
    elapsed = time.perf_counter() - start
    for monitor in monitors:
        finalize = getattr(monitor, "finalize", None)
        if finalize is not None:
            finalize()
    return ReplayReport(packets=count, wall_seconds=elapsed)


def replay_pcap(path, *monitors) -> ReplayReport:
    """Replay a capture file (pcap or pcapng) into the monitors."""
    return replay(read_any_capture(path), *monitors)


def split_by_leg(
    records: Sequence[PacketRecord], is_internal
) -> dict:
    """Partition a trace by the *data* direction.

    Returns ``{"outbound": [...], "inbound": [...]}`` where outbound
    packets have an internal source (their data measures the external
    leg) and inbound packets the reverse.
    """
    outbound: List[PacketRecord] = []
    inbound: List[PacketRecord] = []
    for record in records:
        if is_internal(record.src_ip):
            outbound.append(record)
        else:
            inbound.append(record)
    return {"outbound": outbound, "inbound": inbound}
