"""Trace replay utilities: feed packet streams into monitors.

The in-repo equivalent of the paper's tcpreplay setup (§5): any object
with a ``process(record)`` method (Dart, tcptrace, the strawman) can be
driven from a record list, a generator, or a pcap file on disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..net.packet import PacketRecord
from ..net.pcapng import read_any_capture


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    packets: int
    wall_seconds: float

    @property
    def packets_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.packets / self.wall_seconds


def replay(records: Iterable[PacketRecord], *monitors) -> ReplayReport:
    """Feed every record to every monitor, in timestamp order."""
    count = 0
    start = time.perf_counter()
    for record in records:
        for monitor in monitors:
            monitor.process(record)
        count += 1
    elapsed = time.perf_counter() - start
    for monitor in monitors:
        finalize = getattr(monitor, "finalize", None)
        if finalize is not None:
            finalize()
    return ReplayReport(packets=count, wall_seconds=elapsed)


def replay_pcap(path, *monitors) -> ReplayReport:
    """Replay a capture file (pcap or pcapng) into the monitors."""
    return replay(read_any_capture(path), *monitors)


def split_by_leg(
    records: Sequence[PacketRecord], is_internal
) -> dict:
    """Partition a trace by the *data* direction.

    Returns ``{"outbound": [...], "inbound": [...]}`` where outbound
    packets have an internal source (their data measures the external
    leg) and inbound packets the reverse.
    """
    outbound: List[PacketRecord] = []
    inbound: List[PacketRecord] = []
    for record in records:
        if is_internal(record.src_ip):
            outbound.append(record)
        else:
            inbound.append(record)
    return {"outbound": outbound, "inbound": inbound}
