"""Interception-attack trace generation (paper §5.2, Figs 7–8).

The paper launches an ethical BGP interception attack on the PEERING
testbed: traffic between Princeton and Northeastern is rerouted through
Amsterdam, so the wide-area RTT of a live TCP connection jumps from
~25 ms to ~120 ms at t ≈ 36 s.  We reproduce the *observable*: a
long-lived, continuously chatty TCP connection whose external-leg delay
is a step function of time.

The application model is a ping-pong session (think multiplayer gaming
or conferencing keep-alive): the client pushes a two-segment chunk every
``chunk_interval_ns`` and the server acknowledges promptly, yielding a
steady stream of external-leg RTT samples for the detector to consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..net.inet import ipv4_to_int
from ..net.packet import PacketRecord
from ..simnet.connection import Connection, ConnectionSpec, LegProfile
from ..simnet.engine import EventLoop
from ..simnet.monitor import InternalNetwork, MonitorTap
from ..simnet.rng import SimRandom
from ..simnet.tcp_endpoint import TcpParams
from .campus import INTERNAL_PREFIXES
from .workloads import MS, SEC

CLIENT_IP = ipv4_to_int("10.1.7.42")      # Princeton-side host
SERVER_IP = ipv4_to_int("184.164.236.7")  # PEERING prefix host


@dataclass
class AttackTraceConfig:
    """Timeline and path parameters for the interception scenario."""

    pre_attack_rtt_ns: int = 25 * MS
    post_attack_rtt_ns: int = 120 * MS
    internal_one_way_ns: int = int(1.5 * MS)
    attack_at_ns: int = 36 * SEC
    duration_ns: int = 80 * SEC
    chunk_interval_ns: int = 80 * MS
    chunk_segments: int = 2
    jitter_fraction: float = 0.04
    seed: int = 7

    def external_one_way_ns(self, now_ns: int) -> int:
        """The WAN leg's one-way delay as a function of virtual time."""
        rtt = (
            self.pre_attack_rtt_ns
            if now_ns < self.attack_at_ns
            else self.post_attack_rtt_ns
        )
        return rtt // 2 - self.internal_one_way_ns


@dataclass
class AttackTrace:
    """The observed packet stream plus scenario ground truth."""

    records: List[PacketRecord]
    config: AttackTraceConfig
    internal: InternalNetwork

    @property
    def packets(self) -> int:
        return len(self.records)

    def packets_after_attack(self) -> int:
        return sum(
            1 for r in self.records if r.timestamp_ns >= self.config.attack_at_ns
        )


def generate_attack_trace(config: AttackTraceConfig | None = None) -> AttackTrace:
    """Simulate the interception scenario; deterministic per config."""
    config = config or AttackTraceConfig()
    rng = SimRandom(config.seed)
    loop = EventLoop()
    tap = MonitorTap(loop)

    tcp = TcpParams(ack_every=2, segment_gap_ns=5_000)
    chunk_bytes = tcp.mss * config.chunk_segments

    spec = ConnectionSpec(
        client_ip=CLIENT_IP,
        client_port=51_000,
        server_ip=SERVER_IP,
        server_port=443,
        request_bytes=chunk_bytes,
        response_bytes=400,
        start_ns=0,
        internal=LegProfile(
            delay_ns=config.internal_one_way_ns,
            jitter_fraction=config.jitter_fraction,
        ),
        external=LegProfile(
            delay_ns=config.external_one_way_ns,
            jitter_fraction=config.jitter_fraction,
        ),
        tcp=tcp,
        complete=True,
        client_isn=rng.randint(0, (1 << 32) - 1),
        server_isn=rng.randint(0, (1 << 32) - 1),
        auto_close=False,
    )
    connection = Connection(loop, rng, tap, spec)
    connection.start()

    def push_chunk(elapsed_ns: int) -> None:
        if elapsed_ns > config.duration_ns:
            return
        if connection.client.established:
            connection.client.send_app_data(chunk_bytes)
        loop.schedule(config.chunk_interval_ns, push_chunk,
                      elapsed_ns + config.chunk_interval_ns)

    loop.schedule_at(config.chunk_interval_ns, push_chunk,
                     config.chunk_interval_ns)
    loop.run(until_ns=config.duration_ns + 5 * SEC)

    return AttackTrace(
        records=tap.trace,
        config=config,
        internal=InternalNetwork(INTERNAL_PREFIXES),
    )
