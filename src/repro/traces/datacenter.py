"""Adversarial workload traces: incast fan-in, video calls, file transfers.

The campus trace (:mod:`repro.traces.campus`) is distribution-calibrated
but *friendly*: every connection is an independent request/response over
its own links.  The generators here produce the traffic patterns the
paper's accuracy claims are most vulnerable to:

* :func:`generate_incast_trace` — partition/aggregate fan-in where
  synchronized worker responses overflow one shallow shared buffer and
  recovery is RTO-dominated (the T-RACKs regime): a concentrated burst
  of retransmission ambiguity.
* :func:`generate_video_trace` — long-lived, paced, bidirectional
  thin streams (frames at ~30 fps) where delayed ACKs dominate and
  clean SEQ/ACK matches are scarce.
* :func:`generate_file_transfer_trace` — elephants through a
  bandwidth-limited, deep-buffered bottleneck, so the congestion
  controller's steady-state (sawtooth vs. paced) shapes the RTT
  distribution the monitor reports (bufferbloat).

All three are deterministic functions of their config's ``seed``; every
random draw flows from one :class:`~repro.simnet.rng.SimRandom`.

Address plan: ``10.4.0.0/16`` is the internal (monitored-site) side,
``17.x.y.z`` the external peers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.inet import ipv4_to_int
from ..net.packet import PacketRecord
from ..simnet.connection import Connection, ConnectionSpec, LegProfile
from ..simnet.engine import EventLoop
from ..simnet.link import Link
from ..simnet.monitor import InternalNetwork, MonitorTap
from ..simnet.rng import SimRandom
from ..simnet.tcp_endpoint import TcpEndpoint, TcpParams
from .workloads import (
    MS,
    SEC,
    FileTransferShape,
    IncastShape,
    VideoCallShape,
)

DC_NET = ipv4_to_int("10.4.0.0")
DC_INTERNAL_PREFIXES = ((DC_NET, 16),)
PEER_NET = ipv4_to_int("17.0.0.0")


@dataclass
class WorkloadTrace:
    """One generated workload trace plus the ground truth to score it."""

    kind: str
    records: List[PacketRecord]
    internal: InternalNetwork
    connections: int
    completed: int
    retransmissions: int
    timeouts: int
    events_processed: int

    @property
    def packets(self) -> int:
        return len(self.records)


def _isn(rng: SimRandom) -> int:
    return rng.randint(0, (1 << 32) - 1)


def _summarize(kind: str, tap: MonitorTap, loop: EventLoop,
               connections: List[Connection]) -> WorkloadTrace:
    completed = 0
    retransmissions = 0
    timeouts = 0
    for conn in connections:
        if conn.client.app_bytes_delivered >= conn.spec.response_bytes:
            completed += 1
        for endpoint in (conn.client, conn.server):
            if endpoint is None:
                continue
            retransmissions += endpoint.stats.retransmissions
            timeouts += endpoint.stats.timeouts
    return WorkloadTrace(
        kind=kind,
        records=tap.trace,
        internal=InternalNetwork(DC_INTERNAL_PREFIXES),
        connections=len(connections),
        completed=completed,
        retransmissions=retransmissions,
        timeouts=timeouts,
        events_processed=loop.events_processed,
    )


# -- incast ---------------------------------------------------------------------------------------


@dataclass
class IncastTraceConfig:
    """One incast run: an aggregator fanning out to synchronized workers."""

    seed: int = 1
    cc: str = "reno"
    loss_rate: float = 0.0
    reorder_rate: float = 0.0
    adaptive_rto: bool = True
    shape: IncastShape = field(default_factory=IncastShape)
    horizon_ns: Optional[int] = 60 * SEC


def generate_incast_trace(
    config: Optional[IncastTraceConfig] = None,
) -> WorkloadTrace:
    """Synthesize one incast trace (deterministic for a given config).

    Topology: each worker has its own access link into the tap, but all
    worker→aggregator traffic then shares ONE shallow-buffered
    bottleneck *behind* the tap.  The monitor therefore observes both
    originals and retransmissions, while the drops happen downstream —
    the worst case for retransmission disambiguation.
    """
    config = config or IncastTraceConfig()
    shape = config.shape
    rng = SimRandom(config.seed)
    loop = EventLoop()
    tap = MonitorTap(loop)

    # The shared fan-in bottleneck (tap -> aggregator).
    bottleneck = Link(
        loop,
        rng.fork("bottleneck"),
        delay_ns=shape.fanin_delay_ns,
        jitter_fraction=0.0,
        bandwidth_bps=shape.bottleneck_bandwidth_bps,
        queue_limit_ns=shape.queue_limit_ns,
        name="fanin-bottleneck",
    )
    receivers: Dict[int, TcpEndpoint] = {}

    def fanin_router(segment) -> None:
        receivers[segment.dst_port].receive(segment)

    bottleneck.connect(fanin_router)

    tcp = TcpParams(
        cc=config.cc,
        adaptive_rto=config.adaptive_rto,
        rto_ns=200 * MS,
    )
    aggregator_ip = DC_NET | 1

    connections: List[Connection] = []
    round_start = 1 * MS
    for round_index in range(shape.rounds):
        for worker in range(shape.senders):
            port = 30_000 + round_index * shape.senders + worker
            spec = ConnectionSpec(
                client_ip=aggregator_ip,
                client_port=port,
                server_ip=PEER_NET | (worker + 1),
                server_port=5001,
                request_bytes=shape.request_bytes,
                response_bytes=shape.response_bytes,
                start_ns=round_start + rng.randint(0, shape.sync_jitter_ns),
                internal=LegProfile(
                    delay_ns=shape.fanin_delay_ns,
                    jitter_fraction=0.0,
                    loss_rate=config.loss_rate / 4,
                    reorder_rate=config.reorder_rate,
                ),
                external=LegProfile(
                    delay_ns=shape.access_delay_ns,
                    jitter_fraction=0.02,
                    loss_rate=config.loss_rate,
                    reorder_rate=config.reorder_rate,
                ),
                tcp=tcp,
                client_isn=_isn(rng),
                server_isn=_isn(rng),
            )
            conn = Connection(loop, rng, tap, spec)
            # Reroute the response direction through the shared queue:
            # worker access link -> tap -> bottleneck -> aggregator.
            conn.link_s2m.connect(tap.tap_and_forward(bottleneck))
            receivers[port] = conn.client
            conn.start()
            connections.append(conn)
        round_start += shape.round_gap_ns

    loop.run(until_ns=config.horizon_ns)
    return _summarize("incast", tap, loop, connections)


# -- video conferencing ---------------------------------------------------------------------------


@dataclass
class VideoTraceConfig:
    """A handful of concurrent bidirectional video calls."""

    seed: int = 1
    cc: str = "reno"
    loss_rate: float = 0.0
    reorder_rate: float = 0.0
    adaptive_rto: bool = True
    calls: int = 3
    shape: VideoCallShape = field(default_factory=VideoCallShape)
    horizon_ns: Optional[int] = 120 * SEC


def generate_video_trace(
    config: Optional[VideoTraceConfig] = None,
) -> WorkloadTrace:
    """Synthesize concurrent video calls (deterministic per config)."""
    config = config or VideoTraceConfig()
    shape = config.shape
    rng = SimRandom(config.seed)
    loop = EventLoop()
    tap = MonitorTap(loop)
    tcp = TcpParams(cc=config.cc, adaptive_rto=config.adaptive_rto)

    connections: List[Connection] = []
    for call in range(config.calls):
        start_ns = call * 37 * MS + rng.randint(0, 20 * MS)
        external_delay = rng.randint(8 * MS, 45 * MS)
        spec = ConnectionSpec(
            client_ip=DC_NET | (0x100 + call),
            client_port=40_000 + call,
            server_ip=PEER_NET | (0x2000 + call),
            server_port=3478,
            request_bytes=300,  # signalling
            response_bytes=300,
            start_ns=start_ns,
            internal=LegProfile(
                delay_ns=rng.randint(200_000, 900_000),
                jitter_fraction=0.15,
                loss_rate=config.loss_rate / 4,
                reorder_rate=config.reorder_rate,
            ),
            external=LegProfile(
                delay_ns=external_delay,
                jitter_fraction=0.10,
                loss_rate=config.loss_rate,
                reorder_rate=config.reorder_rate,
            ),
            tcp=tcp,
            client_isn=_isn(rng),
            server_isn=_isn(rng),
            auto_close=False,
        )
        conn = Connection(loop, rng, tap, spec)
        conn.start()
        connections.append(conn)

        # Media: both sides push one frame per interval for the call's
        # duration, then close.  send_app_data queues if not yet
        # ESTABLISHED, so early frames simply buffer behind the
        # handshake (an application write into a connecting socket).
        frames_rng = rng.fork(f"frames:{call}")
        for index in range(shape.frame_count()):
            at = (start_ns + (index + 1) * shape.frame_interval_ns
                  + frames_rng.randint(0, 2 * MS))
            loop.schedule_at(at, conn.client.send_app_data,
                             shape.frame_size(frames_rng, index))
            loop.schedule_at(at + frames_rng.randint(0, 5 * MS),
                             conn.server.send_app_data,
                             shape.frame_size(frames_rng, index))
        hangup_ns = start_ns + shape.duration_ns + 200 * MS
        loop.schedule_at(hangup_ns, conn.server.close_when_done)
        loop.schedule_at(hangup_ns, conn.client.close_when_done)

    loop.run(until_ns=config.horizon_ns)
    return _summarize("video", tap, loop, connections)


# -- file transfer --------------------------------------------------------------------------------


@dataclass
class FileTransferTraceConfig:
    """Staggered bulk downloads through a shared-capacity bottleneck."""

    seed: int = 1
    cc: str = "reno"
    loss_rate: float = 0.0
    reorder_rate: float = 0.0
    adaptive_rto: bool = True
    transfers: int = 3
    shape: FileTransferShape = field(default_factory=FileTransferShape)
    horizon_ns: Optional[int] = 120 * SEC


def generate_file_transfer_trace(
    config: Optional[FileTransferTraceConfig] = None,
) -> WorkloadTrace:
    """Synthesize bulk downloads (deterministic per config)."""
    config = config or FileTransferTraceConfig()
    shape = config.shape
    rng = SimRandom(config.seed)
    loop = EventLoop()
    tap = MonitorTap(loop)
    tcp = TcpParams(cc=config.cc, adaptive_rto=config.adaptive_rto)

    connections: List[Connection] = []
    for index in range(config.transfers):
        external_delay = rng.randint(6 * MS, 25 * MS)
        spec = ConnectionSpec(
            client_ip=DC_NET | (0x200 + index),
            client_port=50_000 + index,
            server_ip=PEER_NET | (0x3000 + index),
            server_port=443,
            request_bytes=500,
            response_bytes=shape.transfer_bytes,
            start_ns=index * 120 * MS + rng.randint(0, 50 * MS),
            internal=LegProfile(
                delay_ns=rng.randint(150_000, 600_000),
                jitter_fraction=0.10,
                loss_rate=config.loss_rate / 4,
                reorder_rate=config.reorder_rate,
            ),
            external=LegProfile(
                delay_ns=external_delay,
                jitter_fraction=0.05,
                loss_rate=config.loss_rate,
                reorder_rate=config.reorder_rate,
                # The server->monitor direction carries the elephant and
                # is where the sawtooth/pacing difference shows up.
                bandwidth_bps=shape.bottleneck_bandwidth_bps,
                queue_limit_ns=shape.queue_limit_ns,
            ),
            tcp=tcp,
            client_isn=_isn(rng),
            server_isn=_isn(rng),
        )
        conn = Connection(loop, rng, tap, spec)
        conn.start()
        connections.append(conn)

    loop.run(until_ns=config.horizon_ns)
    return _summarize("file-transfer", tap, loop, connections)
