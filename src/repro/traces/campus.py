"""Synthetic campus trace generation (stand-in for the Princeton trace).

Builds a population of TCP connections between campus clients (wired and
wireless subnets) and Internet servers, routes them all through one
monitor tap, runs the event simulation, and returns the observed packet
stream plus ground-truth metadata.

Address plan::

    10.1.0.0/16   campus wired clients
    10.2.0.0/16   campus wireless clients
    16.x.y.z      Internet servers (drawn from a pool of /24 prefixes)

The returned :class:`CampusTrace` knows which side is internal, so
monitors can split internal/external legs exactly as the hardware
deployment does (paper §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..net.inet import ipv4_to_int, ipv6_to_int
from ..net.packet import PacketRecord
from ..simnet.connection import Connection, ConnectionSpec, LegProfile
from ..simnet.engine import EventLoop
from ..simnet.monitor import InternalNetwork, MonitorTap
from ..simnet.rng import SimRandom
from ..simnet.tcp_endpoint import TcpParams
from .workloads import MS, SEC, CampusWorkload

WIRED_NET = ipv4_to_int("10.1.0.0")
WIRELESS_NET = ipv4_to_int("10.2.0.0")
SERVER_NET = ipv4_to_int("16.0.0.0")

# Dual-stack address plan (paper §7: Dart extends to IPv6).
WIRED_NET6 = ipv6_to_int("2001:db8:1::")
WIRELESS_NET6 = ipv6_to_int("2001:db8:2::")
SERVER_NET6 = ipv6_to_int("2400:cb00::")

INTERNAL_PREFIXES = (
    (WIRED_NET, 16),
    (WIRELESS_NET, 16),
    (WIRED_NET6, 48, 128),
    (WIRELESS_NET6, 48, 128),
)


@dataclass
class CampusTraceConfig:
    """Scale and mix knobs for one synthetic trace.

    The paper's trace has 1.38M connections / 135.78M packets; defaults
    here are scaled down ~100x so a full benchmark sweep runs in
    CPU-minutes.  Ratios (incomplete handshakes, wireless share) follow
    the paper.
    """

    connections: int = 1_500
    incomplete_fraction: float = 0.725
    wireless_fraction: float = 0.87
    duration_ns: int = 60 * SEC
    server_prefixes: int = 64
    servers_per_prefix: int = 8
    #: Fraction of connections running over IPv6 (dual-stack campus).
    #: Defaults to 0 so the paper-calibrated IPv4 benchmarks are
    #: unaffected; the IPv6 integration tests set it explicitly.
    ipv6_fraction: float = 0.0
    #: Congestion control for every endpoint (see :mod:`repro.simnet.cc`).
    cc: str = "reno"
    #: RFC 6298 adaptive RTO; False pins the historical fixed RTO.
    adaptive_rto: bool = True
    seed: int = 1
    workload: CampusWorkload = field(default_factory=CampusWorkload)
    #: Cap on simulated virtual time (stragglers schedule events far out).
    horizon_ns: Optional[int] = 400 * SEC


@dataclass
class CampusTrace:
    """The generated trace plus ground truth."""

    records: List[PacketRecord]
    internal: InternalNetwork
    config: CampusTraceConfig
    complete_connections: int
    incomplete_connections: int
    events_processed: int

    @property
    def packets(self) -> int:
        return len(self.records)

    def is_internal(self, addr: int) -> bool:
        return addr in self.internal


def _client_address(rng: SimRandom, wireless: bool, index: int,
                    ipv6: bool = False) -> int:
    if ipv6:
        net = WIRELESS_NET6 if wireless else WIRED_NET6
        return net | ((index * 2654435761) & 0xFFFFFFFF)
    net = WIRELESS_NET if wireless else WIRED_NET
    # Spread clients over the /16; uniqueness comes from (ip, port).
    host = (index * 2654435761) & 0xFFFF
    return net | host


def _server_address(rng: SimRandom, config: CampusTraceConfig,
                    ipv6: bool = False) -> int:
    prefix = rng.randint(0, config.server_prefixes - 1)
    host = rng.randint(1, config.servers_per_prefix)
    if ipv6:
        return SERVER_NET6 | (prefix << 16) | host
    return SERVER_NET | (prefix << 8) | host


def generate_campus_trace(
    config: Optional[CampusTraceConfig] = None,
) -> CampusTrace:
    """Synthesize one campus trace (deterministic for a given config)."""
    config = config or CampusTraceConfig()
    workload = config.workload
    rng = SimRandom(config.seed)
    loop = EventLoop()
    tap = MonitorTap(loop)

    complete = 0
    incomplete = 0
    connections: List[Connection] = []
    arrivals_rng = rng.fork("arrivals")
    mix_rng = rng.fork("mix")

    for index in range(config.connections):
        is_complete = not mix_rng.chance(config.incomplete_fraction)
        wireless = mix_rng.chance(config.wireless_fraction)
        is_v6 = mix_rng.chance(config.ipv6_fraction)
        client_ip = _client_address(mix_rng, wireless, index, ipv6=is_v6)
        client_port = 20_000 + (index % 40_000)
        server_ip = _server_address(mix_rng, config, ipv6=is_v6)
        server_port = mix_rng.weighted_choice((443, 80, 8443), (0.85, 0.12, 0.03))

        is_upload = mix_rng.chance(workload.upload_fraction)
        if is_upload:
            # Upload flow: the client is the bulk sender.
            request_bytes = workload.flow_sizes.sample_response_bytes(mix_rng)
            response_bytes = workload.flow_sizes.sample_request_bytes(mix_rng)
        else:
            request_bytes = workload.flow_sizes.sample_request_bytes(mix_rng)
            response_bytes = workload.flow_sizes.sample_response_bytes(mix_rng)

        # Keepalive stragglers: the bulk receiver's final ACK takes an
        # unmonitored path and a keepalive follows much later, so the
        # long-RTT tail appears on whichever leg carries the bulk data.
        client_straggler_ns = None
        server_straggler_ns = None
        if is_complete and mix_rng.chance(workload.straggler_fraction):
            low, high = workload.straggler_keepalive_range_ns
            delay = mix_rng.randint(low, high)
            if is_upload:
                server_straggler_ns = delay
                # A hung upload session: the server sends no response, so
                # its suppressed final ACK cannot piggyback on data.
                response_bytes = 0
            else:
                client_straggler_ns = delay

        internal_delay = (
            workload.wireless_delay if wireless else workload.wired_delay
        ).sample_ns(mix_rng)
        external_delay = workload.external_delay.sample_ns(mix_rng)
        if max(request_bytes, response_bytes) > 200_000:
            # Bulk transfers overwhelmingly go to nearby CDNs; without
            # this, a single elephant on a rare intercontinental path
            # dominates the upper percentiles of the sample distribution
            # (the real trace's 380K complete flows average this out).
            for _ in range(8):
                if external_delay <= 45 * MS:
                    break
                external_delay = workload.external_delay.sample_ns(mix_rng)
        loss, reorder = workload.impairments.sample(mix_rng)

        # The initial RTO scales with the drawn path RTT; with
        # adaptive_rto the RFC 6298 estimator takes over after the
        # first valid measurement, and in fixed mode this guard keeps
        # the RTO above the path RTT (no spurious fires every window).
        path_rtt = 2 * (internal_delay + external_delay)
        tcp = TcpParams(
            rto_ns=max(int(2.5 * path_rtt) + 120 * MS, 250 * MS),
            cc=config.cc,
            adaptive_rto=config.adaptive_rto,
        )

        spec = ConnectionSpec(
            client_ip=client_ip,
            client_port=client_port,
            server_ip=server_ip,
            server_port=server_port,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
            start_ns=arrivals_rng.randint(0, config.duration_ns),
            internal=LegProfile(
                delay_ns=internal_delay,
                jitter_fraction=0.10,
                loss_rate=loss / 4,  # most loss sits on the WAN side
                # Reordering before the monitor is what punches holes in
                # the sequence space the monitor observes (paper Fig 4d).
                reorder_rate=reorder,
            ),
            external=LegProfile(
                delay_ns=external_delay,
                jitter_fraction=0.08,
                loss_rate=loss,
                reorder_rate=reorder,
            ),
            tcp=tcp,
            complete=is_complete,
            client_isn=mix_rng.randint(0, (1 << 32) - 1),
            server_isn=mix_rng.randint(0, (1 << 32) - 1),
            straggler_keepalive_ns=client_straggler_ns,
            server_straggler_keepalive_ns=server_straggler_ns,
            # Straggler sessions hang without a FIN exchange — a FIN-ACK
            # through the monitor would acknowledge the final bytes and
            # pre-empt the distant keep-alive's long RTT sample.
            auto_close=(client_straggler_ns is None
                        and server_straggler_ns is None),
            ipv6=is_v6,
        )
        connection = Connection(loop, rng, tap, spec)
        connection.start()
        connections.append(connection)
        if is_complete:
            complete += 1
        else:
            incomplete += 1

    loop.run(until_ns=config.horizon_ns)

    return CampusTrace(
        records=tap.trace,
        internal=InternalNetwork(INTERNAL_PREFIXES),
        config=config,
        complete_connections=complete,
        incomplete_connections=incomplete,
        events_processed=loop.events_processed,
    )
