"""Workload distributions for the synthetic campus trace.

The paper evaluates on an anonymized Princeton campus trace (15 minutes,
1.38M TCP connections, 135.78M packets).  We cannot ship that trace, so
:mod:`repro.traces.campus` synthesizes one whose *distributional*
properties match what the paper reports:

* external-leg RTTs: median ≈ 13–15 ms, p95 ≈ 40–60 ms, p99 ≈ 215 ms,
  96% of mass between 10 and 100 ms, and a CCDF tail out past 100 s
  (keep-alive stragglers) — Fig 9b/9c;
* internal-leg RTTs: wired subnet with >80% of RTTs under 1 ms; wireless
  subnet with <40% under 1 ms and >20% above 20 ms — Fig 6;
* 72.5% of connections never complete a handshake — Fig 10;
* flow sizes: heavy-tailed mice/elephants mix;
* a few-percent population of lossy/reordering paths, driving the
  retransmission and duplicate-ACK ambiguity Dart must reject.

All parameters live here with their calibration targets so tests can
assert the synthetic distributions stay within the paper's envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..simnet.rng import SimRandom

MS = 1_000_000
SEC = 1_000_000_000


@dataclass
class DelayMixture:
    """A mixture of lognormal one-way-delay components.

    Each component is ``(weight, median_ns, sigma)``.
    """

    components: List[Tuple[float, float, float]]

    def sample_ns(self, rng: SimRandom) -> int:
        weights = [c[0] for c in self.components]
        _, median_ns, sigma = rng.weighted_choice(self.components, weights)
        return max(50_000, rng.lognormal_ns(median_ns, sigma))


#: External (monitor <-> Internet) one-way delay.  Calibrated so the
#: round trip (2x one-way, plus jitter and server turnaround) lands on
#: the paper's Fig 9b distribution: median RTT ~13-15 ms, p95 ~40-60 ms,
#: p99 ~200 ms.
EXTERNAL_DELAY = DelayMixture(
    components=[
        (0.77, 6.2 * MS, 0.45),   # nearby CDNs and regional servers
        (0.16, 19.0 * MS, 0.60),  # cross-country paths
        (0.07, 70.0 * MS, 0.65),  # intercontinental / congested tails
    ]
)

#: Wired-subnet internal one-way delay (Fig 6: >80% of internal RTTs
#: under 1 ms).
WIRED_INTERNAL_DELAY = DelayMixture(
    components=[(1.0, 0.22 * MS, 0.75)]
)

#: Wireless-subnet internal one-way delay (Fig 6: <40% of internal RTTs
#: under 1 ms, >20% above 20 ms — WiFi contention and power-save tails).
WIRELESS_INTERNAL_DELAY = DelayMixture(
    components=[
        (0.55, 0.9 * MS, 0.9),    # idle WLAN
        (0.45, 9.0 * MS, 1.25),   # contended / power-save clients
    ]
)


@dataclass
class FlowSizeModel:
    """Mice / medium / elephant response-size mixture."""

    mice_weight: float = 0.70
    mice_range: Tuple[int, int] = (800, 12_000)
    medium_weight: float = 0.25
    medium_range: Tuple[int, int] = (12_000, 250_000)
    elephant_weight: float = 0.05
    elephant_range: Tuple[int, int] = (250_000, 5_000_000)

    def sample_response_bytes(self, rng: SimRandom) -> int:
        bucket = rng.weighted_choice(
            ("mice", "medium", "elephant"),
            (self.mice_weight, self.medium_weight, self.elephant_weight),
        )
        if bucket == "mice":
            return rng.randint(*self.mice_range)
        if bucket == "medium":
            return rng.randint(*self.medium_range)
        return rng.randint(*self.elephant_range)

    def sample_request_bytes(self, rng: SimRandom) -> int:
        return rng.randint(120, 1_800)


@dataclass
class PathImpairmentModel:
    """Per-connection loss/reordering draw.

    Most paths are clean; a minority are lossy or reordering, which is
    what produces the retransmission/duplicate-ACK ambiguities (§2.2)
    that separate Dart from the strawman and from tcptrace's richer
    multi-range tracking.
    """

    lossy_fraction: float = 0.45
    loss_range: Tuple[float, float] = (0.004, 0.02)
    reordering_fraction: float = 0.70
    reorder_range: Tuple[float, float] = (0.008, 0.04)

    def sample(self, rng: SimRandom) -> Tuple[float, float]:
        loss = 0.0
        reorder = 0.0
        if rng.chance(self.lossy_fraction):
            loss = rng.uniform(*self.loss_range)
        if rng.chance(self.reordering_fraction):
            reorder = rng.uniform(*self.reorder_range)
        return loss, reorder


@dataclass
class IncastShape:
    """Partition/aggregate fan-in (data-center incast).

    An aggregator fans a small request out to ``senders`` workers whose
    synchronized responses converge on one shallow-buffered bottleneck —
    the classic incast collapse.  With the buffer sized well below
    ``senders * response_bytes``, recovery is dominated by RTO expiry
    rather than fast retransmit (the T-RACKs observation: RTO_min, not
    the path RTT, sets the recovery latency), which floods the monitor
    with retransmission ambiguity in a short burst.
    """

    senders: int = 24
    request_bytes: int = 256
    response_bytes: int = 64_000
    #: How tightly worker responses are synchronized (request spacing).
    sync_jitter_ns: int = 40_000
    #: Shared fan-in bottleneck toward the aggregator.
    bottleneck_bandwidth_bps: float = 1e9
    #: Shallow switch buffer expressed as max queueing delay
    #: (500 us at 1 Gbps is ~62 KB — far below senders*response_bytes).
    queue_limit_ns: int = 500_000
    #: One ToR hop from the tap to the aggregator.
    fanin_delay_ns: int = 50_000
    #: Per-worker access-link one-way delay.
    access_delay_ns: int = 100_000
    #: Barrier-synchronized request rounds.
    rounds: int = 2
    round_gap_ns: int = 60 * MS


@dataclass
class VideoCallShape:
    """Bidirectional video-conference media flow.

    Both sides push a frame every ``frame_interval_ns`` over one
    long-lived connection (no FIN until the call ends); every
    ``keyframe_every``-th frame is a keyframe several times larger.
    The application is rate-limited, so cwnd rarely binds — what this
    shape stresses is *paced, thin-stream* traffic where Dart gets few
    clean SEQ/ACK matches per second and delayed ACKs dominate.
    """

    duration_ns: int = 6 * SEC
    frame_interval_ns: int = 33 * MS          # ~30 fps
    frame_bytes: int = 12_000                 # ~2.9 Mbit/s mean
    keyframe_every: int = 60
    keyframe_multiplier: float = 4.0
    #: Per-frame size jitter (encoder rate-control noise).
    size_jitter: float = 0.25

    def frame_size(self, rng: SimRandom, index: int) -> int:
        base = self.frame_bytes
        if self.keyframe_every and index % self.keyframe_every == 0:
            base = int(base * self.keyframe_multiplier)
        lo = max(200, int(base * (1 - self.size_jitter)))
        hi = int(base * (1 + self.size_jitter))
        return rng.randint(lo, hi)

    def frame_count(self) -> int:
        return max(1, self.duration_ns // self.frame_interval_ns)


@dataclass
class FileTransferShape:
    """Bulk download through a bandwidth-limited, deep-buffered path.

    A single elephant per connection saturates the bottleneck, so the
    congestion controller's steady-state behaviour — Reno/Cubic sawtooth
    filling the buffer versus BBR pacing near the BDP — shows up
    directly in the RTT samples the monitor collects (bufferbloat).
    """

    transfer_bytes: int = 2_000_000
    bottleneck_bandwidth_bps: float = 40e6
    #: Deep buffer: tens of ms of queueing before tail drop.
    queue_limit_ns: int = 25 * MS


@dataclass
class CampusWorkload:
    """Bundle of all distribution models with paper-calibrated defaults."""

    external_delay: DelayMixture = field(default_factory=lambda: EXTERNAL_DELAY)
    wired_delay: DelayMixture = field(default_factory=lambda: WIRED_INTERNAL_DELAY)
    wireless_delay: DelayMixture = field(
        default_factory=lambda: WIRELESS_INTERNAL_DELAY
    )
    flow_sizes: FlowSizeModel = field(default_factory=FlowSizeModel)
    impairments: PathImpairmentModel = field(default_factory=PathImpairmentModel)
    #: Fraction of complete connections where the *client* is the bulk
    #: sender (uploads, video calls, backups).  These flows dominate the
    #: external-leg sample count, since outbound data packets are the
    #: SEQ side of external-leg samples (paper §2.1).
    upload_fraction: float = 0.30
    #: Fraction of complete connections whose final ACK bypasses the
    #: monitor and is followed by a distant keep-alive ACK (the 100 s
    #: RTT tail of Fig 9c).
    straggler_fraction: float = 0.012
    straggler_keepalive_range_ns: Tuple[int, int] = (5 * SEC, 110 * SEC)
