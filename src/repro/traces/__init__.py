"""Synthetic trace generation and replay.

Substitutes for the paper's data sources:

* :func:`generate_campus_trace` — the anonymized Princeton campus trace
  (distributionally calibrated; see :mod:`repro.traces.workloads`).
* :func:`generate_attack_trace` — the PEERING BGP-interception capture.
* :func:`replay` / :func:`replay_pcap` — the tcpreplay stand-in.
"""

from .attack import AttackTrace, AttackTraceConfig, generate_attack_trace
from .campus import (
    INTERNAL_PREFIXES,
    CampusTrace,
    CampusTraceConfig,
    generate_campus_trace,
)
from .datacenter import (
    DC_INTERNAL_PREFIXES,
    FileTransferTraceConfig,
    IncastTraceConfig,
    VideoTraceConfig,
    WorkloadTrace,
    generate_file_transfer_trace,
    generate_incast_trace,
    generate_video_trace,
)
from .replay import ReplayReport, replay, replay_pcap, split_by_leg
from .workloads import (
    CampusWorkload,
    DelayMixture,
    FileTransferShape,
    FlowSizeModel,
    IncastShape,
    PathImpairmentModel,
    VideoCallShape,
)

__all__ = [
    "AttackTrace",
    "AttackTraceConfig",
    "CampusTrace",
    "CampusTraceConfig",
    "CampusWorkload",
    "DC_INTERNAL_PREFIXES",
    "DelayMixture",
    "FileTransferShape",
    "FileTransferTraceConfig",
    "FlowSizeModel",
    "INTERNAL_PREFIXES",
    "IncastShape",
    "IncastTraceConfig",
    "PathImpairmentModel",
    "ReplayReport",
    "VideoCallShape",
    "VideoTraceConfig",
    "WorkloadTrace",
    "generate_attack_trace",
    "generate_campus_trace",
    "generate_file_transfer_trace",
    "generate_incast_trace",
    "generate_video_trace",
    "replay",
    "replay_pcap",
    "split_by_leg",
]
