"""The dart-agent side of the fleet: export deltas, survive churn.

Pieces:

* :class:`CollectorClient` — a reconnecting frame pipe.  Connection
  failures never propagate to the monitoring loop: ``send`` returns
  ``False`` and the client retries with exponential backoff on later
  calls.  A vantage point keeps measuring when the collector is down.
* :class:`FlowCountTap` — a sample-router sink that counts samples per
  *canonical* flow key.  Cumulative counts are what the collector's
  :class:`~repro.fleet.registry.FlowRegistry` needs for exactly-once
  multi-tap dedup, and the tap pickles into the agent's checkpoint so
  counts survive restart.
* :class:`FleetExporter` — the :class:`~repro.stream.StreamHook` that
  rides the streaming loop: buffers closed analytics windows, pushes a
  cumulative delta every ``push_interval_s``, heartbeats in between,
  and sends a ``final`` delta plus ``bye`` at end of run.

Exactness under SIGKILL + resume rests on three properties:

* Deltas are *cumulative*, so the collector replaces rather than adds —
  a resumed agent can never double-count stats or flow totals.
* Pending (unsent) windows ride the agent checkpoint via
  :meth:`FleetExporter.checkpoint_payload`, and sent windows are
  content-deduped at the collector — so windows are exactly-once no
  matter where the kill lands relative to a push or a checkpoint.
* The ``(epoch, seq)`` stamp (epoch = process start, monotonic seq)
  lets the collector order frames across restarts without clocks being
  synchronized between agents.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from ..core.analytics import WindowMinimum
from ..core.flow import FlowKey
from ..stream.runner import StreamHook
from .wire import (
    distribution_to_wire,
    encode_frame,
    key_to_wire,
    stats_to_wire,
    window_to_wire,
)

__all__ = [
    "CollectorClient",
    "FleetExporter",
    "FlowCountTap",
    "WindowTee",
    "parse_endpoint",
]

DEFAULT_PUSH_INTERVAL_S = 1.0
DEFAULT_HEARTBEAT_INTERVAL_S = 2.0
BACKOFF_INITIAL_S = 0.1
BACKOFF_MAX_S = 5.0


def parse_endpoint(text: str) -> Tuple[Optional[Tuple[str, int]],
                                       Optional[str]]:
    """Parse ``HOST:PORT`` or ``unix:PATH`` into (tcp, unix_path)."""
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ValueError("unix: endpoint needs a socket path")
        return None, path
    host, sep, port_text = text.rpartition(":")
    if not sep or not host or not port_text.isdigit():
        raise ValueError(
            f"endpoint {text!r} is neither HOST:PORT nor unix:PATH"
        )
    return (host, int(port_text)), None


class CollectorClient:
    """A frame pipe to the collector that treats failure as weather."""

    def __init__(
        self,
        endpoint: str,
        *,
        connect_timeout_s: float = 2.0,
        backoff_initial_s: float = BACKOFF_INITIAL_S,
        backoff_max_s: float = BACKOFF_MAX_S,
        clock=time.monotonic,
    ) -> None:
        self.tcp, self.unix_path = parse_endpoint(endpoint)
        self.endpoint = endpoint
        self.connect_timeout_s = connect_timeout_s
        self.backoff_initial_s = backoff_initial_s
        self.backoff_max_s = backoff_max_s
        self._clock = clock
        self._sock: Optional[socket.socket] = None
        self._backoff = backoff_initial_s
        self._retry_at = 0.0
        self.sends = 0
        self.send_failures = 0
        self.reconnects = 0

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _connect(self) -> bool:
        """One connection attempt, rate-limited by the backoff clock."""
        now = self._clock()
        if now < self._retry_at:
            return False
        try:
            if self.unix_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.connect_timeout_s)
                sock.connect(self.unix_path)
            else:
                sock = socket.create_connection(
                    self.tcp, timeout=self.connect_timeout_s
                )
        except OSError:
            self._retry_at = now + self._backoff
            self._backoff = min(self._backoff * 2, self.backoff_max_s)
            return False
        sock.settimeout(self.connect_timeout_s)
        self._sock = sock
        self._backoff = self.backoff_initial_s
        self._retry_at = 0.0
        self.reconnects += 1
        return True

    def send(self, frame: bytes) -> bool:
        """Ship one encoded frame; ``False`` means "not this time".

        Never raises for network reasons and never blocks beyond the
        connect/send timeout — the monitoring loop must keep pace with
        the capture regardless of collector health.
        """
        if self._sock is None and not self._connect():
            return False
        assert self._sock is not None
        try:
            self._sock.sendall(frame)
        except OSError:
            self.send_failures += 1
            self._drop()
            return False
        self.sends += 1
        return True

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._retry_at = self._clock() + self._backoff
        self._backoff = min(self._backoff * 2, self.backoff_max_s)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


class FlowCountTap:
    """Counts routed samples per canonical flow (a router sink).

    Keyed canonically so both directions of a connection collapse to
    one entry — the identity the fleet's multi-tap dedup registry keys
    on.  Plain picklable state: the tap rides the agent checkpoint, so
    cumulative counts survive restart and the re-stated totals a
    resumed agent pushes are correct from its first delta.
    """

    def __init__(self) -> None:
        self.counts: Dict[FlowKey, int] = {}
        self.samples = 0

    def add(self, sample: Any) -> None:
        key = sample.flow.canonical()
        self.counts[key] = self.counts.get(key, 0) + 1
        self.samples += 1

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def wire_counts(self) -> List[List[Any]]:
        """JSON-safe ``[[key_wire, count], ...]`` (cumulative)."""
        return [[key_to_wire(key), count]
                for key, count in self.counts.items()]


class WindowTee:
    """Fan one closed-window stream out to sinks and add-only taps.

    The agent ships windows to the collector *and* (optionally) to a
    local ``--windows`` JSONL sink; the tee keeps full lifecycle calls
    (``flush``/``close``) away from the taps, whose lifecycles belong
    to their owners (the exporter is closed by its ``on_stop`` hook).
    """

    def __init__(self, sinks: List[Any], taps: List[Any]) -> None:
        self._sinks = list(sinks)
        self._taps = list(taps)

    def add(self, window: WindowMinimum) -> None:
        for sink in self._sinks:
            sink.add(window)
        for tap in self._taps:
            tap.add(window)

    def flush(self) -> None:
        for sink in self._sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


class FleetExporter(StreamHook):
    """StreamHook that exports this vantage point's view to the fleet.

    Also exposes ``add(window)`` so a :class:`WindowTee` can feed it
    closed analytics windows as they drain.
    """

    name = "fleet"

    def __init__(
        self,
        client: CollectorClient,
        agent_id: str,
        *,
        engine: Any = None,
        monitor_name: str = "dart",
        flow_tap: Optional[FlowCountTap] = None,
        analytics: Any = None,
        telemetry: Any = None,
        push_interval_s: float = DEFAULT_PUSH_INTERVAL_S,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        epoch: Optional[int] = None,
        clock=time.monotonic,
    ) -> None:
        if push_interval_s <= 0:
            raise ValueError("push_interval_s must be positive")
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        self.client = client
        self.agent_id = agent_id
        self.engine = engine
        self.monitor_name = monitor_name
        self.flow_tap = flow_tap
        self.analytics = analytics
        self.telemetry = telemetry
        self.push_interval_s = push_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s
        #: Process-start stamp: a resumed agent gets a larger epoch than
        #: any frame its previous incarnation sent, so the collector's
        #: staleness guard orders restarts without synchronized clocks.
        self.epoch = time.time_ns() if epoch is None else epoch
        self.seq = 0
        self._clock = clock
        now = clock()
        self._next_push = now + push_interval_s
        self._next_heartbeat = now + heartbeat_interval_s
        self._pending_windows: List[WindowMinimum] = []
        self._hello_sent = False
        self.deltas_sent = 0
        self.deltas_deferred = 0
        self.heartbeats_sent = 0

    # -- window-tap protocol ---------------------------------------------

    def add(self, window: WindowMinimum) -> None:
        """Buffer one closed window for the next delta push."""
        self._pending_windows.append(window)

    # -- StreamHook protocol ---------------------------------------------

    def on_chunk(self, runner: Any) -> None:
        now = self._clock()
        if not self._hello_sent:
            if self._send("hello"):
                self._hello_sent = True
        if now >= self._next_push:
            self.push_delta()
            self._next_push = self._clock() + self.push_interval_s
        elif now >= self._next_heartbeat:
            if self._send("heartbeat"):
                self.heartbeats_sent += 1
            self._next_heartbeat = self._clock() + self.heartbeat_interval_s

    def flush(self) -> None:
        """Checkpoint-time push.  Deliberately failure-tolerant: a down
        collector leaves windows in the pending buffer (which rides the
        checkpoint payload) and must never fail the checkpoint."""
        self.push_delta()

    def checkpoint_payload(self) -> Dict[str, Any]:
        return {
            "pending_windows": list(self._pending_windows),
            "flow_counts": (
                dict(self.flow_tap.counts)
                if self.flow_tap is not None else {}
            ),
            "flow_samples": (
                self.flow_tap.samples if self.flow_tap is not None else 0
            ),
        }

    def restore(self, state: Optional[Dict[str, Any]]) -> None:
        if not state:
            return
        self._pending_windows = list(state.get("pending_windows", ()))
        if self.flow_tap is not None:
            self.flow_tap.counts = dict(state.get("flow_counts", {}))
            self.flow_tap.samples = int(state.get("flow_samples", 0))

    def on_stop(self, *, stopped: bool) -> None:
        """Final delta (``final`` only when the source truly finished),
        then a clean goodbye.  A SIGKILLed agent never gets here — that
        is what the collector's liveness timeout and loss accounting
        are for."""
        self.push_delta(final=not stopped)
        self._send("bye")
        self.client.close()

    # -- delta assembly ---------------------------------------------------

    def _send(self, kind: str,
              payload: Optional[Dict[str, Any]] = None) -> bool:
        self.seq += 1
        frame = encode_frame(
            kind, agent=self.agent_id, epoch=self.epoch, seq=self.seq,
            payload=payload,
        )
        return self.client.send(frame)

    def build_payload(self, *, final: bool = False) -> Dict[str, Any]:
        """The cumulative delta payload (exposed for tests)."""
        stats = None
        records = 0
        if self.engine is not None:
            records = self.engine.records
            for run in self.engine.runs:
                if run.name == self.monitor_name:
                    stats = stats_to_wire(run.monitor.stats)
                    break
        telemetry_wire = None
        if self.telemetry is not None:
            telemetry_wire = self.telemetry.registry.snapshot(
                sequence=self.telemetry.emissions
            ).to_wire()
        windows_closed = 0
        distribution_wire = None
        if self.analytics is not None:
            # The analytics may be a bare MinFilterAnalytics, a bare
            # distribution stage, or a distribution wrapping a min
            # filter — read both surfaces through guards.
            windows_closed = getattr(self.analytics, "windows_closed", 0)
            snapshot = getattr(self.analytics, "distribution_snapshot", None)
            if callable(snapshot):
                distribution_wire = distribution_to_wire(snapshot())
        return {
            "monitor": self.monitor_name,
            "records": records,
            "stats": stats,
            "flows": (
                self.flow_tap.wire_counts()
                if self.flow_tap is not None else []
            ),
            "windows": [window_to_wire(w) for w in self._pending_windows],
            "windows_closed": windows_closed,
            "telemetry": telemetry_wire,
            "distribution": distribution_wire,
            "final": final,
        }

    def push_delta(self, *, final: bool = False) -> bool:
        """Assemble and ship one cumulative delta now."""
        payload = self.build_payload(final=final)
        if self._send("delta", payload):
            self.deltas_sent += 1
            # The collector holds these (content-deduped on its side);
            # anything still pending at the next checkpoint rides it.
            self._pending_windows.clear()
            self._next_heartbeat = self._clock() + self.heartbeat_interval_s
            return True
        self.deltas_deferred += 1
        return False
