"""repro.fleet — multi-vantage-point monitoring with a merging collector.

The paper's deployment is *many* switches measuring RTTs, reporting to
one collection server that holds the network-wide view (§5: detection
runs where the views meet).  This package is that topology for the
software reproduction:

* ``dart-agent`` (:mod:`repro.cli.agent`) — a thin wrapper over the
  streaming runner, one per capture/tap, exporting periodic cumulative
  deltas over the fleet wire protocol.
* ``dart-collector`` (:mod:`repro.cli.collector`) — merges agents'
  deltas by the repo's additive algebra, dedups flows observed at
  multiple taps, runs the BGP-interception detector over the merged
  window stream, and serves one aggregate Prometheus endpoint.

Layers here:

* :mod:`.wire` — the versioned length-prefixed framing protocol
  (``DARTFLT1``) and JSON codecs for keys, windows, and stats.
* :mod:`.agent` — :class:`CollectorClient` (reconnect + backoff),
  :class:`FleetExporter` (the :class:`~repro.stream.StreamHook`), and
  :class:`FlowCountTap` (per-canonical-flow sample counts).
* :mod:`.registry` — :class:`FlowRegistry`, exactly-once multi-tap
  flow accounting with per-tap attribution.
* :mod:`.collector` — :class:`FleetCollector` (the socket-free merge
  core), :class:`FleetServer` (wire front end), and
  :class:`FleetHttpServer` (Prometheus/JSON exposition).
"""

from .agent import (
    CollectorClient,
    FleetExporter,
    FlowCountTap,
    WindowTee,
    parse_endpoint,
)
from .collector import (
    AgentState,
    FleetCollector,
    FleetHttpServer,
    FleetServer,
)
from .registry import FlowRegistry, FlowView
from .wire import (
    FRAME_KINDS,
    MAGIC,
    WIRE_SCHEMA,
    Frame,
    FrameCorrupt,
    WireError,
    WireSchemaMismatch,
    encode_frame,
    key_from_wire,
    key_to_wire,
    read_frame,
    stats_from_wire,
    stats_to_wire,
    window_from_wire,
    window_to_wire,
)

__all__ = [
    "AgentState",
    "CollectorClient",
    "FRAME_KINDS",
    "FleetCollector",
    "FleetExporter",
    "FleetHttpServer",
    "FleetServer",
    "FlowCountTap",
    "FlowRegistry",
    "FlowView",
    "Frame",
    "FrameCorrupt",
    "MAGIC",
    "WIRE_SCHEMA",
    "WindowTee",
    "WireError",
    "WireSchemaMismatch",
    "encode_frame",
    "key_from_wire",
    "key_to_wire",
    "parse_endpoint",
    "read_frame",
    "stats_from_wire",
    "stats_to_wire",
    "window_from_wire",
    "window_to_wire",
]
