"""FlowRegistry: exactly-once flow accounting across vantage points.

A connection that crosses two monitored taps is observed — and sampled —
by two agents.  Summing their per-flow sample counts would double-count
it; dropping one tap's view entirely would hide that the flow *is*
multi-homed (the situation the BGP-interception detector cares about
most).  The registry resolves this with a *primary-tap* rule:

* Flows are keyed by their canonical form (``FlowKey.canonical()``), so
  the two directions of one connection — and the same direction seen at
  different taps — collapse to one entry.
* The first agent to report a flow becomes its **primary tap**; the
  merged exactly-once sample count for the fleet is the sum of primary
  counts only.
* Every other observer is retained as an attributed duplicate, so the
  multi-tap view is *reported*, not discarded.

Counts are **cumulative per agent** and merge by replacement (the fleet
delta protocol re-sends each agent's full count map), which makes agent
restart/resume naturally idempotent: a replayed report overwrites the
previous value instead of adding to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Tuple

from ..core.flow import FlowKey

__all__ = ["FlowRegistry", "FlowView"]


def _canonical(key: Hashable) -> Hashable:
    """Collapse both directions of a flow; pass other key types through."""
    if isinstance(key, FlowKey):
        return key.canonical()
    return key


@dataclass
class FlowView:
    """One canonical flow as the merged fleet sees it."""

    key: Hashable
    #: Agent ids in observation order; ``observers[0]`` is the primary.
    observers: List[str] = field(default_factory=list)
    #: Latest cumulative sample count reported by each observer.
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def primary(self) -> str:
        return self.observers[0]

    @property
    def primary_count(self) -> int:
        """The exactly-once contribution of this flow to fleet totals."""
        return self.counts.get(self.primary, 0)

    @property
    def duplicate_observers(self) -> List[str]:
        return self.observers[1:]


class FlowRegistry:
    """Merge per-agent cumulative flow counts into an exactly-once view."""

    def __init__(self) -> None:
        self._flows: Dict[Hashable, FlowView] = {}

    def __len__(self) -> int:
        return len(self._flows)

    def observe(self, agent: str, key: Hashable, count: int) -> FlowView:
        """Record ``agent``'s latest cumulative ``count`` for ``key``."""
        canonical = _canonical(key)
        view = self._flows.get(canonical)
        if view is None:
            view = FlowView(key=canonical)
            self._flows[canonical] = view
        if agent not in view.counts:
            view.observers.append(agent)
        view.counts[agent] = count
        return view

    def observe_many(self, agent: str,
                     counts: Iterable[Tuple[Hashable, int]]) -> None:
        for key, count in counts:
            self.observe(agent, key, count)

    def forget_agent(self, agent: str) -> None:
        """Drop an agent's observations entirely (operator removal, not
        churn — a crashed agent's counts stay until it resumes or is
        explicitly forgotten).  Primariness passes to the next observer;
        flows only this agent saw disappear from the merged view.
        """
        dead: List[Hashable] = []
        for key, view in self._flows.items():
            if agent in view.counts:
                del view.counts[agent]
                view.observers.remove(agent)
                if not view.observers:
                    dead.append(key)
        for key in dead:
            del self._flows[key]

    # -- merged-view accessors -------------------------------------------

    def flows(self) -> List[FlowView]:
        return list(self._flows.values())

    def unique_flows(self) -> int:
        return len(self._flows)

    def duplicate_flows(self) -> int:
        """Flows observed at more than one tap."""
        return sum(1 for v in self._flows.values() if len(v.observers) > 1)

    def exactly_once_samples(self) -> int:
        """Fleet-wide sample total with multi-tap flows counted once."""
        return sum(v.primary_count for v in self._flows.values())

    def attributed_samples(self) -> int:
        """Sum over *all* taps — the raw (double-counting) total, kept
        visible so ``attributed - exactly_once`` quantifies overlap."""
        return sum(sum(v.counts.values()) for v in self._flows.values())

    def per_agent_samples(self) -> Dict[str, int]:
        """Each agent's cumulative sample total across its flows."""
        totals: Dict[str, int] = {}
        for view in self._flows.values():
            for agent, count in view.counts.items():
                totals[agent] = totals.get(agent, 0) + count
        return totals

    def to_summary(self, *, describe_keys: bool = True) -> List[Dict[str, Any]]:
        """JSON-safe attribution table (one row per canonical flow)."""
        rows = []
        for view in self._flows.values():
            key = view.key
            if describe_keys and isinstance(key, FlowKey):
                rendered: Any = key.describe()
            else:
                rendered = str(key)
            rows.append({
                "flow": rendered,
                "primary": view.primary,
                "samples": view.primary_count,
                "observers": {a: view.counts[a] for a in view.observers},
            })
        rows.sort(key=lambda r: (-r["samples"], r["flow"]))
        return rows
