"""The dart-collector: merge many vantage points into one fleet view.

Three layers, separable for testing:

* :class:`FleetCollector` — the socket-free merge core.  Feed it decoded
  :class:`~repro.fleet.wire.Frame` objects (or call the ``handle_*``
  methods directly) and read back the merged view.  All state behind one
  lock; every public method is safe from any thread.
* :class:`FleetServer` — the socket front end: an accept loop plus one
  reader thread per agent connection, speaking the fleet wire protocol
  over TCP or a unix socket.
* :class:`FleetHttpServer` — stdlib HTTP exposition of the merged view:
  ``/metrics`` (Prometheus text), ``/agents`` and ``/summary`` (JSON),
  ``/healthz``.

Churn semantics (the part that makes the merge *exact*):

* Deltas are **cumulative**: each one re-states the sending agent's
  full monitor stats, telemetry snapshot, and per-flow sample counts.
  The collector keeps the latest per agent and the merged view is a sum
  over agents — so a lost delta costs staleness, never correctness, and
  a resumed agent (same id, fresh ``epoch``) *replaces* its former self
  instead of double-counting.
* Ordering is guarded by the ``(epoch, seq)`` stamp: an agent's epoch is
  its process-start time, seq increments per frame.  Frames whose stamp
  does not advance are dropped and counted in
  ``fleet_stale_deltas_dropped_total`` (reordered duplicates on
  reconnect, or a misconfigured second agent with a stolen id).
* Closed analytics windows are **incremental** with content-keyed
  dedup, so the resume path may re-send windows freely and each is
  merged exactly once.  ``fleet_windows_lost_total`` is the difference
  between an agent's reported cumulative ``windows_closed`` and the
  deduped windows actually received from it — zero after a clean
  resume, loudly nonzero when churn really dropped data.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.analytics import WindowMinimum
from ..detection.change import DetectorConfig, run_over_windows
from ..obs.exporters import to_prometheus
from ..obs.metrics import MetricsRegistry
from ..obs.snapshot import Snapshot, merge_snapshots
from .wire import (
    Frame,
    FrameCorrupt,
    WireError,
    distribution_from_wire,
    key_from_wire,
    key_to_wire,
    read_frame,
    stats_from_wire,
    window_from_wire,
)
from .registry import FlowRegistry

__all__ = ["AgentState", "FleetCollector", "FleetServer", "FleetHttpServer"]

#: An agent with no frame for this many seconds is marked down (its
#: state is retained — liveness is a gauge, not an eviction policy).
DEFAULT_AGENT_TIMEOUT_S = 10.0


@dataclass
class AgentState:
    """Everything the collector knows about one agent."""

    agent_id: str
    epoch: int = 0
    seq: int = -1
    connected: bool = False
    finalized: bool = False
    last_frame_monotonic: float = 0.0
    deltas: int = 0
    heartbeats: int = 0
    #: Latest cumulative stats per monitor name (wire-decoded objects).
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Latest cumulative packet-record count per monitor name.
    records: Dict[str, int] = field(default_factory=dict)
    #: Latest cumulative telemetry snapshot (None until one arrives).
    telemetry: Optional[Snapshot] = None
    #: Latest cumulative distribution snapshot per monitor name
    #: (histogram + sketch stages, wire-decoded).  Replacement under
    #: the (epoch, seq) guard, like ``stats`` — cumulative deltas make
    #: a resumed agent replace rather than double-count itself.
    distribution: Dict[str, Any] = field(default_factory=dict)
    #: Agent-reported cumulative closed-window count.
    windows_closed: int = 0
    #: Deduped windows actually merged from this agent.
    windows_received: int = 0

    @property
    def windows_lost(self) -> int:
        """Windows the agent closed but the fleet never merged."""
        return max(0, self.windows_closed - self.windows_received)


def _window_dedup_key(agent_id: str, window: WindowMinimum) -> Tuple:
    """Content identity of one window from one agent.

    Keyed on the full content (not just ``(key, window_index)``) so a
    pathological agent restart that *recomputes* a window differently
    surfaces as two windows — a loud inconsistency — rather than being
    silently collapsed.
    """
    return (
        agent_id,
        json.dumps(key_to_wire(window.key), sort_keys=True),
        window.window_index,
        window.min_rtt_ns,
        window.sample_count,
        window.closed_at_ns,
    )


class FleetCollector:
    """The socket-free merge core (thread-safe)."""

    def __init__(
        self,
        *,
        agent_timeout_s: float = DEFAULT_AGENT_TIMEOUT_S,
        detector_config: Optional[DetectorConfig] = None,
        clock=time.monotonic,
    ) -> None:
        self.agent_timeout_s = agent_timeout_s
        self.detector_config = detector_config
        self._clock = clock
        self._lock = threading.Lock()
        self._agents: Dict[str, AgentState] = {}
        self._registry = FlowRegistry()
        self._windows: List[WindowMinimum] = []
        self._window_keys: Set[Tuple] = set()
        self._stale_dropped = 0
        self._corrupt_frames = 0
        self._frames_total = 0

    # -- frame dispatch ---------------------------------------------------

    def handle_frame(self, frame: Frame) -> None:
        """Dispatch one decoded frame to its kind handler."""
        kind = frame.kind
        if kind == "hello":
            self.handle_hello(frame)
        elif kind == "delta":
            self.handle_delta(frame)
        elif kind == "heartbeat":
            self.handle_heartbeat(frame)
        elif kind == "bye":
            self.handle_bye(frame)
        else:  # read_frame validated kinds already; belt and braces
            raise FrameCorrupt(f"unroutable frame kind {kind!r}")

    def _touch(self, frame: Frame) -> Optional[AgentState]:
        """Look up / create the agent and apply the (epoch, seq) guard.

        Returns ``None`` when the frame is stale (stamp did not advance)
        — the caller drops it.  Must be called with the lock held.
        """
        self._frames_total += 1
        state = self._agents.get(frame.agent)
        if state is None:
            state = AgentState(agent_id=frame.agent)
            self._agents[frame.agent] = state
        if (frame.epoch, frame.seq) <= (state.epoch, state.seq):
            self._stale_dropped += 1
            return None
        if frame.epoch > state.epoch:
            # A fresh process epoch: cumulative state will be replaced
            # as deltas arrive; seq restarts within the new epoch.
            state.epoch = frame.epoch
            state.seq = frame.seq
            state.finalized = False
        else:
            state.seq = frame.seq
        state.connected = True
        state.last_frame_monotonic = self._clock()
        return state

    def handle_hello(self, frame: Frame) -> None:
        with self._lock:
            self._touch(frame)

    def handle_heartbeat(self, frame: Frame) -> None:
        with self._lock:
            state = self._touch(frame)
            if state is not None:
                state.heartbeats += 1

    def handle_bye(self, frame: Frame) -> None:
        with self._lock:
            state = self._touch(frame)
            if state is not None:
                state.connected = False

    def handle_delta(self, frame: Frame) -> None:
        """Merge one cumulative delta (the workhorse)."""
        payload = frame.payload
        with self._lock:
            state = self._touch(frame)
            if state is None:
                return
            state.deltas += 1
            monitor = str(payload.get("monitor", "dart"))
            if "stats" in payload and payload["stats"] is not None:
                state.stats[monitor] = stats_from_wire(payload["stats"])
            if "records" in payload:
                state.records[monitor] = int(payload["records"])
            if payload.get("telemetry") is not None:
                state.telemetry = Snapshot.from_wire(payload["telemetry"])
            if payload.get("distribution") is not None:
                state.distribution[monitor] = distribution_from_wire(
                    payload["distribution"]
                )
            if "windows_closed" in payload:
                state.windows_closed = int(payload["windows_closed"])
            for wire_flow in payload.get("flows", ()):
                key_wire, count = wire_flow
                self._registry.observe(
                    frame.agent, key_from_wire(key_wire), int(count)
                )
            for wire_window in payload.get("windows", ()):
                window = window_from_wire(wire_window)
                dedup = _window_dedup_key(frame.agent, window)
                if dedup in self._window_keys:
                    continue
                self._window_keys.add(dedup)
                self._windows.append(window)
                state.windows_received += 1
            if payload.get("final"):
                state.finalized = True
                state.connected = False

    def mark_disconnected(self, agent_id: str) -> None:
        """A reader thread lost its connection (no bye seen)."""
        with self._lock:
            state = self._agents.get(agent_id)
            if state is not None:
                state.connected = False

    def note_corrupt_frame(self) -> None:
        with self._lock:
            self._corrupt_frames += 1

    # -- merged-view accessors -------------------------------------------

    def agents(self) -> List[AgentState]:
        with self._lock:
            return list(self._agents.values())

    def finalized_agents(self) -> int:
        with self._lock:
            return sum(1 for a in self._agents.values() if a.finalized)

    def agent_up(self, state: AgentState) -> bool:
        """Liveness: connected and heard from within the timeout."""
        if not state.connected:
            return False
        return (self._clock() - state.last_frame_monotonic) \
            <= self.agent_timeout_s

    def merged_stats(self) -> Dict[str, Any]:
        """Per-monitor stats summed across agents' latest deltas."""
        from ..cluster.merge import merge_stats

        with self._lock:
            by_monitor: Dict[str, List[Any]] = {}
            for state in self._agents.values():
                for monitor, stats in state.stats.items():
                    by_monitor.setdefault(monitor, []).append(stats)
        return {
            monitor: merge_stats(items)
            for monitor, items in sorted(by_monitor.items())
        }

    def merged_distribution(self) -> Dict[str, Any]:
        """Per-monitor distributions summed across agents' latest deltas.

        Addition across agents is exact because every agent's snapshot
        is cumulative and the (epoch, seq) guard already collapsed each
        agent to its newest self — the same replacement-then-sum rule as
        :meth:`merged_stats`.
        """
        from copy import deepcopy

        with self._lock:
            by_monitor: Dict[str, List[Any]] = {}
            for state in self._agents.values():
                for monitor, distribution in state.distribution.items():
                    by_monitor.setdefault(monitor, []).append(distribution)
        merged: Dict[str, Any] = {}
        for monitor, items in sorted(by_monitor.items()):
            folded = deepcopy(items[0])
            for item in items[1:]:
                folded.merge(item)
            merged[monitor] = folded
        return merged

    def merged_telemetry(self) -> Optional[Snapshot]:
        with self._lock:
            snapshots = [a.telemetry for a in self._agents.values()
                         if a.telemetry is not None]
        if not snapshots:
            return None
        return merge_snapshots(snapshots)

    def merged_windows(self) -> List[WindowMinimum]:
        """Deduped windows from every agent, in close-time order."""
        with self._lock:
            windows = list(self._windows)
        windows.sort(key=lambda w: w.closed_at_ns)
        return windows

    def run_detector(self):
        """BGP-interception detection over the merged window stream."""
        return run_over_windows(self.merged_windows(), self.detector_config)

    def flow_registry(self) -> FlowRegistry:
        return self._registry

    def to_summary(self, *, include_windows: bool = False) -> Dict[str, Any]:
        """The whole merged view as one JSON-safe document.

        ``include_windows`` embeds the full merged window list (wire
        form) — exact but proportional to run length, so it is opt-in
        (the chaos harness compares multisets against a single-process
        reference).
        """
        from .wire import stats_to_wire, window_to_wire

        merged = self.merged_stats()
        merged_distribution = self.merged_distribution()
        detector = self.run_detector()
        with self._lock:
            agents = {
                a.agent_id: {
                    "epoch": a.epoch,
                    "seq": a.seq,
                    "connected": a.connected,
                    "finalized": a.finalized,
                    "deltas": a.deltas,
                    "heartbeats": a.heartbeats,
                    "records": dict(a.records),
                    "windows_closed": a.windows_closed,
                    "windows_received": a.windows_received,
                    "windows_lost": a.windows_lost,
                }
                for a in sorted(self._agents.values(),
                                key=lambda s: s.agent_id)
            }
            stale = self._stale_dropped
            corrupt = self._corrupt_frames
            frames = self._frames_total
        registry = self._registry
        summary: Dict[str, Any] = {
            "schema": "dart-fleet-summary/1",
            "agents": agents,
            "frames_total": frames,
            "stale_deltas_dropped": stale,
            "corrupt_frames": corrupt,
            "stats": {m: stats_to_wire(s) for m, s in merged.items()},
            "distribution": {
                m: {
                    "samples": d.count,
                    "quantiles_ns": {
                        f"p{q:g}": rtt_ns
                        for q, rtt_ns in d.percentiles().items()
                    },
                }
                for m, d in merged_distribution.items()
            },
            "windows": len(self.merged_windows()),
            "windows_lost": sum(a["windows_lost"] for a in agents.values()),
            "flows": {
                "unique": registry.unique_flows(),
                "duplicates": registry.duplicate_flows(),
                "exactly_once_samples": registry.exactly_once_samples(),
                "attributed_samples": registry.attributed_samples(),
                "per_agent_samples": registry.per_agent_samples(),
            },
            "detector": {
                "state": detector.state.value,
                "events": len(detector.events),
                "suspected_at_ns": detector.suspected_at_ns,
                "confirmed_at_ns": detector.confirmed_at_ns,
            },
        }
        if include_windows:
            summary["window_list"] = [
                window_to_wire(w) for w in self.merged_windows()
            ]
        return summary

    # -- Prometheus exposition -------------------------------------------

    def collect_telemetry(self, registry: MetricsRegistry) -> None:
        """Populate ``fleet_*`` metrics; an obs collector callback."""
        with self._lock:
            agents = list(self._agents.values())
            stale = self._stale_dropped
            corrupt = self._corrupt_frames
            frames = self._frames_total
        up_count = sum(1 for a in agents if self.agent_up(a))
        registry.gauge(
            "fleet_agents_connected", "agents currently up"
        ).set(value=up_count)
        registry.gauge(
            "fleet_agents_known", "agents ever seen"
        ).set(value=len(agents))
        registry.counter(
            "fleet_frames_total", "frames accepted"
        ).set_cumulative((), frames)
        registry.counter(
            "fleet_stale_deltas_dropped_total",
            "frames dropped by the (epoch, seq) staleness guard",
        ).set_cumulative((), stale)
        registry.counter(
            "fleet_corrupt_frames_total", "frames failing validation"
        ).set_cumulative((), corrupt)
        lost_gauge = registry.gauge(
            "fleet_windows_lost_total",
            "windows agents closed but the fleet never merged",
            label_names=("agent",),
        )
        up_gauge = registry.gauge(
            "fleet_agent_up", "1 when the agent is connected and fresh",
            label_names=("agent",),
        )
        seq_gauge = registry.gauge(
            "fleet_agent_last_seq", "latest accepted frame sequence",
            label_names=("agent",),
        )
        deltas_gauge = registry.gauge(
            "fleet_agent_deltas", "cumulative deltas merged",
            label_names=("agent",),
        )
        for state in agents:
            label = (state.agent_id,)
            up_gauge.set(label, 1 if self.agent_up(state) else 0)
            seq_gauge.set(label, state.seq)
            deltas_gauge.set(label, state.deltas)
            lost_gauge.set(label, state.windows_lost)
        flows = self._registry
        registry.gauge(
            "fleet_flows_unique", "canonical flows across all taps"
        ).set(value=flows.unique_flows())
        registry.gauge(
            "fleet_flows_duplicate", "flows observed at >1 tap"
        ).set(value=flows.duplicate_flows())
        registry.gauge(
            "fleet_samples_exactly_once",
            "merged samples with multi-tap flows counted once",
        ).set(value=flows.exactly_once_samples())
        registry.gauge(
            "fleet_samples_attributed",
            "raw per-tap sample total (includes multi-tap overlap)",
        ).set(value=flows.attributed_samples())

    def prometheus_exposition(self) -> str:
        """One complete text exposition: fleet metrics + merged agent
        telemetry, in a single scrape body."""
        registry = MetricsRegistry()
        self.collect_telemetry(registry)
        from ..obs.collect import collect_distribution

        for monitor, distribution in self.merged_distribution().items():
            collect_distribution(registry, distribution, monitor)
        text = to_prometheus(registry.snapshot())
        merged = self.merged_telemetry()
        if merged is not None:
            text += to_prometheus(merged)
        return text


class FleetServer:
    """Accept loop + per-connection reader threads over the wire."""

    def __init__(
        self,
        collector: FleetCollector,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
    ) -> None:
        self.collector = collector
        self.unix_path = unix_path
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.bind(unix_path)
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._sock.bind((host, port))
        self._sock.listen(32)
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._readers: List[threading.Thread] = []

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); ('', 0)-ish for unix sockets."""
        if self.unix_path is not None:
            return (self.unix_path, 0)
        host, port = self._sock.getsockname()[:2]
        return (host, port)

    def start(self) -> None:
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # socket closed during shutdown
            reader = threading.Thread(
                target=self._read_loop, args=(conn,),
                name="fleet-reader", daemon=True,
            )
            reader.start()
            self._readers.append(reader)

    def _read_loop(self, conn: socket.socket) -> None:
        agent_id: Optional[str] = None
        stream = conn.makefile("rb")
        try:
            while True:
                frame = read_frame(stream)
                if frame is None:
                    break
                agent_id = frame.agent or agent_id
                self.collector.handle_frame(frame)
        except WireError:
            self.collector.note_corrupt_frame()
        except OSError:
            pass  # connection reset mid-frame: plain churn
        finally:
            stream.close()
            conn.close()
            if agent_id is not None:
                self.collector.mark_disconnected(agent_id)

    def close(self) -> None:
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for reader in self._readers:
            reader.join(timeout=2.0)


class _FleetHttpHandler(BaseHTTPRequestHandler):
    """Serves the merged view; the collector rides on ``self.server``."""

    collector: FleetCollector  # set via server attribute

    def _respond(self, body: str, content_type: str, code: int = 200) -> None:
        blob = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        collector = self.server.collector  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._respond(collector.prometheus_exposition(),
                              "text/plain; version=0.0.4")
            elif path == "/agents":
                agents = collector.to_summary()["agents"]
                self._respond(json.dumps(agents, indent=2),
                              "application/json")
            elif path == "/summary":
                self._respond(json.dumps(collector.to_summary(), indent=2),
                              "application/json")
            elif path == "/healthz":
                self._respond("ok\n", "text/plain")
            else:
                self._respond("not found\n", "text/plain", code=404)
        except BrokenPipeError:
            pass

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes are not operator-facing events


class FleetHttpServer:
    """stdlib HTTP exposition for one collector."""

    def __init__(self, collector: FleetCollector, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = ThreadingHTTPServer((host, port), _FleetHttpHandler)
        self._server.collector = collector  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="fleet-http", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
