"""The fleet wire protocol: versioned, length-prefixed, self-validating.

Agents and the collector speak *frames* over a byte stream (TCP or a
unix socket).  A frame mirrors the ``DARTCKPT`` checkpoint layout so an
operator who can read one can read the other::

    8 bytes   magic  b"DARTFLT1"
    4 bytes   header length (big-endian)
    N bytes   JSON header
    M bytes   JSON payload (UTF-8; may be empty)

The JSON header carries the schema tag, the frame kind, the sending
agent's identity and ``(epoch, seq)`` ordering stamp, and the payload
length and SHA-256 — so the receiver rejects torn or corrupt frames
*before* parsing the payload, and a packet capture of the link is
inspectable with three lines of Python.

Unlike the checkpoint file (whose payload is a pickle read back by the
same build that wrote it), frame payloads are **JSON only**: deltas
cross host boundaries between processes that may not share a code
version, and unpickling network input is how monitoring systems become
remote-code-execution systems.  This module therefore also owns the
wire codecs for the objects deltas carry: analytics window keys
(:func:`key_to_wire`), closed windows (:func:`window_to_wire`), and
monitor stats dataclasses (:func:`stats_to_wire`, with enum-keyed
verdict histograms flattened to their string values).

Versioning: :data:`WIRE_SCHEMA` is bumped on incompatible changes; a
mismatch raises :class:`WireSchemaMismatch` at the receiving end —
merging deltas across incompatible layouts is refused, not guessed at.
"""

from __future__ import annotations

import enum
import hashlib
import json
import struct
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

from ..analysis.sketch import QuantileSketch
from ..baselines.dapper import DapperStats
from ..baselines.strawman import StrawmanStats
from ..baselines.tcptrace import TcpTraceStats
from ..core.analytics import DstPrefixKey, WindowMinimum, flow_key
from ..core.flow import FlowKey, intern_flow
from ..core.hist import (
    DistributionAnalytics,
    RttHistogram,
    RttHistogramAnalytics,
    RttSketchAnalytics,
)
from ..core.pipeline import DartStats
from ..core.range_tracker import AckVerdict, SeqVerdict
from ..quic.monitor import SpinBitStats

MAGIC = b"DARTFLT1"
WIRE_SCHEMA = "dart-fleet-wire/1"

#: Frame kinds an agent may send.  ``hello`` opens a session, ``delta``
#: carries cumulative monitor state, ``heartbeat`` proves liveness
#: between pushes, ``bye`` announces a *clean* departure (a connection
#: that drops without one is agent churn and accounted loudly).
FRAME_KINDS = ("hello", "delta", "heartbeat", "bye")

_HEADER_LEN = struct.Struct(">I")

#: Reject absurd lengths before allocating: a corrupt length field must
#: not make the reader slurp gigabytes.
_MAX_HEADER_BYTES = 1 << 20
_MAX_PAYLOAD_BYTES = 1 << 28


class WireError(Exception):
    """Base class for fleet wire failures."""


class FrameCorrupt(WireError):
    """The byte stream is not a frame, or fails validation."""


class WireSchemaMismatch(WireError):
    """The peer speaks an incompatible wire schema version."""


@dataclass(slots=True)
class Frame:
    """One decoded frame: validated header + parsed payload."""

    header: Dict[str, Any]
    payload: Dict[str, Any]

    @property
    def kind(self) -> str:
        return self.header.get("kind", "")

    @property
    def agent(self) -> str:
        return self.header.get("agent", "")

    @property
    def epoch(self) -> int:
        return int(self.header.get("epoch", 0))

    @property
    def seq(self) -> int:
        return int(self.header.get("seq", 0))

    @property
    def stamp(self) -> Tuple[int, int]:
        """The ``(epoch, seq)`` ordering stamp staleness checks compare."""
        return (self.epoch, self.seq)


def encode_frame(kind: str, *, agent: str, epoch: int, seq: int,
                 payload: Optional[Dict[str, Any]] = None,
                 meta: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialize one frame to bytes ready for ``sendall``."""
    if kind not in FRAME_KINDS:
        raise ValueError(f"unknown frame kind {kind!r}")
    blob = b"" if payload is None else json.dumps(
        payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    header: Dict[str, Any] = {
        "schema": WIRE_SCHEMA,
        "kind": kind,
        "agent": agent,
        "epoch": epoch,
        "seq": seq,
        "payload_len": len(blob),
        "payload_sha256": hashlib.sha256(blob).hexdigest(),
    }
    if meta:
        header.update(meta)
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return MAGIC + _HEADER_LEN.pack(len(header_bytes)) + header_bytes + blob


def _read_exact(reader, n: int) -> bytes:
    """Read exactly ``n`` bytes; short reads mean a truncated frame."""
    chunks: List[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = reader.read(remaining)
        if not chunk:
            raise FrameCorrupt(
                f"stream truncated mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(reader) -> Optional[Frame]:
    """Read and validate one frame from a binary file-like object.

    Returns ``None`` on a clean end-of-stream at a frame boundary (the
    peer closed between frames); raises :class:`FrameCorrupt` when the
    stream dies mid-frame or fails validation, and
    :class:`WireSchemaMismatch` across incompatible versions.
    """
    magic = reader.read(len(MAGIC))
    if not magic:
        return None
    if len(magic) < len(MAGIC) or magic != MAGIC:
        raise FrameCorrupt(f"bad frame magic {magic!r}")
    (header_len,) = _HEADER_LEN.unpack(_read_exact(reader, _HEADER_LEN.size))
    if header_len > _MAX_HEADER_BYTES:
        raise FrameCorrupt(f"implausible header length {header_len}")
    try:
        header = json.loads(_read_exact(reader, header_len))
    except ValueError as exc:
        raise FrameCorrupt(f"frame header is not JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise FrameCorrupt("frame header is not a JSON object")
    schema = header.get("schema")
    if schema != WIRE_SCHEMA:
        raise WireSchemaMismatch(
            f"peer speaks schema {schema!r}, this build speaks "
            f"{WIRE_SCHEMA!r}"
        )
    if header.get("kind") not in FRAME_KINDS:
        raise FrameCorrupt(f"unknown frame kind {header.get('kind')!r}")
    payload_len = header.get("payload_len")
    if not isinstance(payload_len, int) or payload_len < 0 \
            or payload_len > _MAX_PAYLOAD_BYTES:
        raise FrameCorrupt(f"implausible payload length {payload_len!r}")
    blob = _read_exact(reader, payload_len) if payload_len else b""
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("payload_sha256"):
        raise FrameCorrupt("payload digest mismatch (torn or corrupt frame)")
    if not blob:
        return Frame(header=header, payload={})
    try:
        payload = json.loads(blob)
    except ValueError as exc:
        raise FrameCorrupt(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameCorrupt("frame payload is not a JSON object")
    return Frame(header=header, payload=payload)


# -- analytics key codec ------------------------------------------------------
#
# MinFilterAnalytics keys are heterogeneous: flow 4-tuples (the default
# key_fn), bare ints (DstPrefixKey prefixes), or strings (the detector's
# "all").  Each wire form is a small tagged object so the receiving side
# reconstructs the *same* key type — flow keys must compare equal to
# locally interned ones for the dedup registry to work.

def key_to_wire(key: Any) -> Dict[str, Any]:
    """Encode one analytics/flow key as a JSON-safe tagged object."""
    if isinstance(key, FlowKey):
        return {
            "t": "flow",
            "src": key.src_ip,
            "dst": key.dst_ip,
            "sport": key.src_port,
            "dport": key.dst_port,
            "v6": key.ipv6,
        }
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise ValueError(
            f"cannot encode analytics key of type {type(key).__name__!r} "
            "(flow keys, ints, and strings cross the wire)"
        )
    if isinstance(key, int):
        return {"t": "int", "v": key}
    return {"t": "str", "v": key}


def key_from_wire(wire: Dict[str, Any]) -> Any:
    """Decode :func:`key_to_wire` output back into the original key."""
    tag = wire.get("t")
    if tag == "flow":
        # intern_flow so a decoded key is identical (not just equal) to
        # the locally interned object for the same 4-tuple.
        return intern_flow(int(wire["src"]), int(wire["dst"]),
                           int(wire["sport"]), int(wire["dport"]),
                           bool(wire.get("v6", False)))
    if tag == "int":
        return int(wire["v"])
    if tag == "str":
        return str(wire["v"])
    raise FrameCorrupt(f"unknown key tag {tag!r}")


# -- window codec -------------------------------------------------------------

def window_to_wire(window: WindowMinimum) -> Dict[str, Any]:
    """Encode one closed analytics window."""
    return {
        "key": key_to_wire(window.key),
        "window": window.window_index,
        "min_rtt_ns": window.min_rtt_ns,
        "samples": window.sample_count,
        "closed_at_ns": window.closed_at_ns,
    }


def window_from_wire(wire: Dict[str, Any]) -> WindowMinimum:
    """Decode :func:`window_to_wire` output."""
    return WindowMinimum(
        key=key_from_wire(wire["key"]),
        window_index=int(wire["window"]),
        min_rtt_ns=int(wire["min_rtt_ns"]),
        sample_count=int(wire["samples"]),
        closed_at_ns=int(wire["closed_at_ns"]),
    )


# -- distribution codec -------------------------------------------------------
#
# Histogram/sketch analytics snapshots ride delta payloads as cumulative
# state: the collector keeps the latest per agent (replacement under the
# (epoch, seq) stamp) and sums across agents, exactly like stats.  The
# key function crosses as a small tagged object because the receiving
# side must rebuild a *mergeable* stage — merging stages keyed
# differently is refused, and that check needs the key function.

def _key_fn_to_wire(key_fn: Any) -> Dict[str, Any]:
    if key_fn is flow_key:
        return {"t": "flow_fn"}
    if isinstance(key_fn, DstPrefixKey):
        return {"t": "prefix_fn", "len": key_fn.prefix_len}
    raise ValueError(
        f"cannot encode key function {key_fn!r} (flow_key and "
        "DstPrefixKey cross the wire)"
    )


def _key_fn_from_wire(wire: Dict[str, Any]) -> Any:
    tag = wire.get("t")
    if tag == "flow_fn":
        return flow_key
    if tag == "prefix_fn":
        return DstPrefixKey(int(wire["len"]))
    raise FrameCorrupt(f"unknown key-function tag {tag!r}")


def _sorted_keyed_states(per_key: Dict[Any, Any]) -> List[List[Any]]:
    """Deterministic [[key_wire, state], ...] (sorted by encoded key)."""
    entries = [
        (key_to_wire(key), value.state_dict())
        for key, value in per_key.items()
    ]
    entries.sort(key=lambda e: json.dumps(e[0], sort_keys=True))
    return [list(e) for e in entries]


def distribution_to_wire(distribution: Any) -> Dict[str, Any]:
    """Encode a distribution snapshot as a JSON-safe object."""
    flush = getattr(distribution, "_flush", None)
    if callable(flush):
        flush()  # fold any buffered per-key deltas before reading state
    hist_stage = distribution.histogram
    sketch_stage = distribution.sketch
    return {
        "quantiles": list(distribution.quantiles),
        "key_fn": _key_fn_to_wire(hist_stage.key_fn),
        "hist": {
            "total": hist_stage.total.state_dict(),
            "per_key": _sorted_keyed_states(hist_stage.per_key),
        },
        "sketch": {
            "alpha": sketch_stage.alpha,
            "max_buckets": sketch_stage.max_buckets,
            "total": sketch_stage.total.state_dict(),
            "per_key": _sorted_keyed_states(sketch_stage.per_key),
        },
    }


def distribution_from_wire(wire: Dict[str, Any]) -> DistributionAnalytics:
    """Decode :func:`distribution_to_wire` output into a mergeable stage."""
    try:
        key_fn = _key_fn_from_wire(wire["key_fn"])
        hist_wire = wire["hist"]
        sketch_wire = wire["sketch"]
        total_hist = RttHistogram.from_state(hist_wire["total"])
        histogram = RttHistogramAnalytics(total_hist.spec, key_fn=key_fn)
        histogram.total = total_hist
        for key_wire, state in hist_wire["per_key"]:
            histogram.per_key[key_from_wire(key_wire)] = \
                RttHistogram.from_state(state)
        sketch = RttSketchAnalytics(
            alpha=float(sketch_wire["alpha"]),
            max_buckets=sketch_wire["max_buckets"],
            key_fn=key_fn,
        )
        sketch.total = QuantileSketch.from_state(sketch_wire["total"])
        for key_wire, state in sketch_wire["per_key"]:
            sketch.per_key[key_from_wire(key_wire)] = \
                QuantileSketch.from_state(state)
        distribution = DistributionAnalytics.__new__(DistributionAnalytics)
        distribution.histogram = histogram
        distribution.sketch = sketch
        distribution.quantiles = tuple(
            float(q) for q in wire["quantiles"]
        )
        distribution._inner = None
        distribution._rebind_caches()
        return distribution
    except FrameCorrupt:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise FrameCorrupt(f"malformed distribution payload: {exc}") from exc


# -- stats codec --------------------------------------------------------------
#
# Every monitor's stats object is a dataclass of additive counters; Dart
# additionally keeps verdict->count dicts keyed by enums.  The wire form
# records the stats *type name* (resolved against an explicit registry,
# never arbitrary import paths) and flattens enum keys to their string
# values.

STATS_TYPES: Dict[str, Type] = {
    cls.__name__: cls
    for cls in (DartStats, TcpTraceStats, StrawmanStats, DapperStats,
                SpinBitStats)
}

_ENUM_TYPES: Dict[str, Type[enum.Enum]] = {
    cls.__name__: cls for cls in (SeqVerdict, AckVerdict)
}


def stats_to_wire(stats: Any) -> Dict[str, Any]:
    """Encode a monitor stats dataclass as a JSON-safe tagged object."""
    name = type(stats).__name__
    if name not in STATS_TYPES or not is_dataclass(stats):
        known = ", ".join(sorted(STATS_TYPES))
        raise ValueError(
            f"cannot encode stats of type {name!r} (known: {known})"
        )
    encoded: Dict[str, Any] = {}
    for f in fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, dict):
            items = {}
            enum_name = None
            for key, count in value.items():
                if isinstance(key, enum.Enum):
                    enum_name = type(key).__name__
                    if enum_name not in _ENUM_TYPES:
                        raise ValueError(
                            f"{name}.{f.name}: unregistered enum "
                            f"{enum_name!r}"
                        )
                    items[key.value] = count
                else:
                    items[key] = count
            encoded[f.name] = {"enum": enum_name, "items": items}
        elif isinstance(value, (int, float)):
            encoded[f.name] = value
        else:
            raise ValueError(
                f"{name}.{f.name}: non-additive field of type "
                f"{type(value).__name__!r} cannot cross the wire"
            )
    return {"type": name, "fields": encoded}


def stats_from_wire(wire: Dict[str, Any]) -> Any:
    """Decode :func:`stats_to_wire` output into a fresh stats object."""
    name = wire.get("type")
    cls = STATS_TYPES.get(name)
    if cls is None:
        known = ", ".join(sorted(STATS_TYPES))
        raise FrameCorrupt(
            f"unknown stats type {name!r} on the wire (known: {known})"
        )
    stats = cls()
    valid = {f.name for f in fields(stats)}
    for field_name, value in wire.get("fields", {}).items():
        if field_name not in valid:
            raise FrameCorrupt(f"{name} has no field {field_name!r}")
        if isinstance(value, dict):
            enum_name = value.get("enum")
            items = value.get("items", {})
            if enum_name is not None:
                enum_cls = _ENUM_TYPES.get(enum_name)
                if enum_cls is None:
                    raise FrameCorrupt(f"unknown enum {enum_name!r}")
                decoded = {enum_cls(k): int(v) for k, v in items.items()}
            else:
                decoded = {k: int(v) for k, v in items.items()}
            setattr(stats, field_name, decoded)
        else:
            setattr(stats, field_name, value)
    return stats
