"""Per-shard workers: one monitor instance each, three execution modes.

A worker owns exactly one RTT monitor (historically always a
:class:`~repro.core.pipeline.Dart`; now any
:class:`repro.engine.RttMonitor` — tcptrace, the strawman, Dapper —
built from a zero-argument factory) and consumes packet batches for its
shard.  Three interchangeable implementations share the
``submit(batch)`` / ``finish()`` / ``abort()`` surface:

* :class:`InlineWorker` — runs the monitor synchronously in the caller
  (the ``parallel="serial"`` mode; useful for debugging and as the
  ground truth the parallel modes are tested against).
* :class:`ThreadWorker` — a daemon thread fed through a bounded
  :class:`queue.Queue` (backpressure: the dispatcher blocks when a
  shard falls behind).  Threads share the GIL, so this mode overlaps
  I/O, not CPU — it exists for sink-heavy pipelines and for tests.
* :class:`ProcessWorker` — a ``multiprocessing`` subprocess fed framed
  *byte* batches through a shard transport (shared-memory ring by
  default, bounded queue as fallback — see
  :mod:`repro.cluster.transport`); the mode that actually buys
  multi-core speedup.  Parsing happens worker-side, so the coordinator
  never materialises packet objects for shipped frames.

Fault handling: every blocking operation on a worker is guarded by a
liveness check or a deadline, so a crashed or hung worker surfaces as a
:class:`ShardFailure` naming the shard — never as a deadlock.  A worker
that fails mid-trace ships the partial stats it accumulated back with
the error whenever it can.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.analytics import WindowMinimum
from ..core.samples import RttSample
from ..net.framing import decode_batch as decode_frames
from ..net.framing import encode_records
from ..net.packet import PacketRecord
from .transport import DEFAULT_TRANSPORT, make_transport

#: Builds one shard's monitor.  Any object satisfying the
#: :class:`repro.engine.RttMonitor` protocol works; the callable must be
#: usable in the worker context (any callable under fork; picklable
#: under spawn).  Typed loosely so this module never imports the engine
#: (or Dart) and stays dependency-light in subprocesses.
MonitorFactory = Callable[[], Any]

#: Backward-compatible alias from when workers only ran Dart.
DartFactory = MonitorFactory

#: Batches a worker queue holds before the dispatcher blocks.
DEFAULT_QUEUE_DEPTH = 8

#: Seconds a coordinator waits for a worker to finish before declaring
#: it hung.
DEFAULT_JOIN_TIMEOUT = 30.0

#: Poll interval for liveness-guarded queue operations.
_POLL_S = 0.1


class ClusterPartialResultWarning(UserWarning):
    """Partial (failed-shard) results entered a merge.

    Raised as a *warning*, not an error, because the caller explicitly
    opted into salvaging ``ShardFailure.partial`` — but the merged view
    silently missing the failed shard's in-flight analytics windows is
    exactly the kind of quiet data loss an operator must see.
    """


class ShardFailure(RuntimeError):
    """A shard's worker crashed, died, or missed its join deadline.

    Attributes:
        shard_id: the failed shard.
        reason: what happened (exception repr + traceback, exit code,
            or a timeout description).
        partial: whatever per-shard results were recovered —
            ``{shard_id: ShardResult}`` for shards that completed plus,
            when the failed worker managed to report them, its own
            partial counters.
    """

    def __init__(
        self,
        shard_id: int,
        reason: str,
        *,
        partial: Optional[Dict[int, "ShardResult"]] = None,
    ) -> None:
        super().__init__(f"shard {shard_id} failed: {reason}")
        self.shard_id = shard_id
        self.reason = reason
        self.partial: Dict[int, ShardResult] = dict(partial or {})


@dataclass
class ShardResult:
    """Everything a shard hands back when it finishes (or dies trying).

    All fields are plain data (no live table state, no closures), so a
    result pickles cleanly across the process boundary regardless of
    what analytics object or leg filter the monitor was built with.

    ``stats`` is whatever counters dataclass the shard's monitor type
    exposes (:class:`~repro.core.pipeline.DartStats` for Dart shards,
    ``TcpTraceStats`` for tcptrace shards, ...); all of them merge by
    field-wise addition.
    """

    shard_id: int
    packets: int
    stats: Any
    samples: List[RttSample] = field(default_factory=list)
    window_history: List[WindowMinimum] = field(default_factory=list)
    rt_collapses: int = 0
    #: True when the worker failed before end-of-trace and these are
    #: the counters it had accumulated at the point of failure.
    partial: bool = False
    #: Open analytics windows (windows that had accumulated samples but
    #: never closed) dropped by a partial harvest — a crashed worker's
    #: in-flight window state cannot be flushed safely, so the loss is
    #: counted here and surfaced by the merge instead of vanishing.
    windows_lost: int = 0
    #: Worker-side :class:`repro.obs.Snapshot`; plain data, so it ships
    #: across the process boundary and merges by summation.
    telemetry: Optional[Any] = None
    #: Distribution analytics snapshot
    #: (:class:`repro.core.hist.DistributionAnalytics` without its inner
    #: module) when the shard's monitor carried one; merges by addition
    #: — flow-consistent sharding makes the merged histogram equal a
    #: serial run's bin for bin.
    distribution: Optional[Any] = None


def harvest(
    shard_id: int,
    monitor: Any,
    *,
    partial: bool = False,
    end_ns: Optional[int] = None,
) -> ShardResult:
    """Extract a shard's transportable results from its monitor.

    Finalizes the monitor (flushing open analytics windows) unless the
    harvest is partial — a crashed worker's analytics may be
    mid-update, so its open windows are left unflushed.  ``end_ns`` is
    the global end-of-trace timestamp: flushing there (not at the
    shard's own last packet) keeps flush-time windows bit-identical to
    a serial run's.

    Dart-specific surfaces (``analytics.history``, the Range Tracker's
    collapse counter) are read through ``getattr`` guards so baseline
    monitors — which have neither — harvest with empty history and zero
    collapses.
    """
    if not partial:
        monitor.finalize(end_ns)
    range_tracker = getattr(monitor, "range_tracker", None)
    windows_lost = _open_window_count(monitor) if partial else 0
    return ShardResult(
        shard_id=shard_id,
        packets=monitor.stats.packets_processed,
        stats=monitor.stats,
        samples=list(monitor.samples),
        window_history=list(
            getattr(getattr(monitor, "analytics", None), "history", ())
        ),
        rt_collapses=(
            range_tracker.stats.total_collapses
            if range_tracker is not None
            else 0
        ),
        partial=partial,
        windows_lost=windows_lost,
        telemetry=_shard_telemetry(shard_id, monitor),
        distribution=_shard_distribution(monitor),
    )


def _shard_distribution(monitor: Any) -> Optional[Any]:
    """The monitor's distribution analytics snapshot, if it keeps one.

    Duck-typed like the other harvest surfaces: any analytics exposing
    ``distribution_snapshot()`` ships its histogram/sketch state home
    inside the ShardResult; everything else harvests ``None``.
    """
    analytics = getattr(monitor, "analytics", None)
    snapshot = getattr(analytics, "distribution_snapshot", None)
    if callable(snapshot):
        return snapshot()
    return None


def _open_window_count(monitor: Any) -> int:
    """How many in-flight analytics windows a partial harvest drops.

    Only windows that had already accumulated samples count — an empty
    time window carries no information (the same rule
    ``MinFilterAnalytics._close`` applies on flush).
    """
    state = getattr(getattr(monitor, "analytics", None), "_state", None)
    if not state:
        return 0
    return sum(
        1 for window in state.values()
        if getattr(window, "min_rtt_ns", None) is not None
    )


def _shard_telemetry(shard_id: int, monitor: Any):
    """Freeze the shard's metric state for the trip home.

    Runs once per shard at harvest (never per packet), in the worker
    context, so the coordinator can aggregate worker-side counters by
    merging plain-data snapshots instead of sharing any live state.
    """
    from ..obs.collect import collect_monitor
    from ..obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    collect_monitor(
        registry, monitor, type(monitor).__name__.lower(), str(shard_id)
    )
    return registry.snapshot()


class InlineWorker:
    """Runs the shard's monitor synchronously in the calling thread."""

    def __init__(
        self, shard_id: int, monitor_factory: MonitorFactory, **_: object
    ) -> None:
        self.shard_id = shard_id
        self._monitor = monitor_factory()

    def submit(self, batch: List[PacketRecord]) -> None:
        self._monitor.process_batch(batch)

    def finish(
        self,
        timeout: float = DEFAULT_JOIN_TIMEOUT,
        end_ns: Optional[int] = None,
    ) -> ShardResult:
        return harvest(self.shard_id, self._monitor, end_ns=end_ns)

    def telemetry_probe(self) -> Tuple[int, bool]:
        """(queue depth, liveness) — inline work has neither queue nor
        separate liveness, so it reports an empty queue and alive."""
        return 0, True

    def abort(self) -> None:
        pass


#: Abort sentinel: exit the batch loop without finishing.
_STOP = None

#: End-of-trace sentinel carrying the global last packet timestamp.
_FINISH = "__finish__"


class ThreadWorker:
    """A shard worker on a daemon thread with a bounded inbox."""

    def __init__(
        self,
        shard_id: int,
        monitor_factory: MonitorFactory,
        *,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        **_: object,
    ) -> None:
        self.shard_id = shard_id
        self._batches: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._result: Optional[ShardResult] = None
        self._partial: Optional[ShardResult] = None
        self._error: Optional[str] = None
        self._thread = threading.Thread(
            target=self._run,
            args=(monitor_factory,),
            name=f"dart-shard-{shard_id}",
            daemon=True,
        )
        self._thread.start()

    def _run(self, monitor_factory: MonitorFactory) -> None:
        monitor: Optional[Any] = None
        try:
            monitor = monitor_factory()
            end_ns: Optional[int] = None
            finish = False
            while True:
                batch = self._batches.get()
                if batch is _STOP:
                    break
                if isinstance(batch, tuple) and batch[0] is _FINISH:
                    finish, end_ns = True, batch[1]
                    break
                monitor.process_batch(batch)
            if finish:
                self._result = harvest(self.shard_id, monitor, end_ns=end_ns)
        except BaseException as exc:  # surfaced to the coordinator
            self._error = f"{exc!r}\n{traceback.format_exc()}"
            if monitor is not None:
                try:
                    self._partial = harvest(
                        self.shard_id, monitor, partial=True
                    )
                except Exception:
                    pass

    def _checked_put(self, item: object) -> None:
        while True:
            try:
                self._batches.put(item, timeout=_POLL_S)
                return
            except queue.Full:
                if self._error is not None or not self._thread.is_alive():
                    raise self._failure()

    def _failure(self) -> ShardFailure:
        partial = {self.shard_id: self._partial} if self._partial else None
        return ShardFailure(
            self.shard_id,
            self._error or "worker thread died without reporting an error",
            partial=partial,
        )

    def submit(self, batch: List[PacketRecord]) -> None:
        if self._error is not None:
            raise self._failure()
        self._checked_put(batch)

    def telemetry_probe(self) -> Tuple[int, bool]:
        """(inbox depth in batches, worker thread liveness)."""
        return self._batches.qsize(), self._thread.is_alive()

    def finish(
        self,
        timeout: float = DEFAULT_JOIN_TIMEOUT,
        end_ns: Optional[int] = None,
    ) -> ShardResult:
        self._checked_put((_FINISH, end_ns))
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ShardFailure(
                self.shard_id,
                f"worker thread missed the {timeout:.1f}s join timeout",
            )
        if self._error is not None:
            raise self._failure()
        assert self._result is not None
        return self._result

    def abort(self) -> None:
        # Threads cannot be killed; drain the inbox and leave the
        # sentinel so the daemon thread exits on its own.
        try:
            while True:
                self._batches.get_nowait()
        except queue.Empty:
            pass
        try:
            self._batches.put_nowait(_STOP)
        except queue.Full:
            pass


# -- Process mode ----------------------------------------------------------

def _worker_main(
    shard_id: int,
    monitor_factory: MonitorFactory,
    transport,
    result_queue,
    fastpath: bool = False,
) -> None:
    """Subprocess entry point: consume byte batches until the sentinel.

    Batches arrive as framed bytes (:mod:`repro.net.framing`) over the
    shard's transport; *this* is where they become
    :class:`~repro.net.packet.PacketRecord` objects — parsing runs in
    the worker, in parallel across shards, while the coordinator only
    ever touches bytes.  Wire frames that decode to non-TCP come back
    as ``None`` entries, which ``process_batch`` skips, matching the
    serial reader's behaviour for mixed captures.

    With ``fastpath`` (and numpy importable in the worker) framed
    batches decode columnar and feed the monitor's ``process_columns``
    — same verdicts, stats, and samples, pinned by the cluster
    equivalence suite.  Monitors without ``process_columns`` silently
    keep the object path.
    """
    monitor: Optional[Any] = None
    try:
        monitor = monitor_factory()
        use_columns = False
        if fastpath:
            from ..net import columnar

            use_columns = (
                columnar.HAVE_NUMPY
                and hasattr(monitor, "process_columns")
            )
        end_ns: Optional[int] = None
        while True:
            kind, payload = transport.recv()
            if kind == "stop":
                return
            if kind == "finish":
                end_ns = payload
                break
            if use_columns:
                monitor.process_columns(columnar.columns_from_framed(payload))
            else:
                monitor.process_batch(decode_frames(payload))
        result_queue.put(("ok", harvest(shard_id, monitor, end_ns=end_ns)))
    except BaseException as exc:
        partial = None
        if monitor is not None:
            try:
                partial = harvest(shard_id, monitor, partial=True)
            except Exception:
                partial = None
        try:
            result_queue.put(
                ("error", f"{exc!r}\n{traceback.format_exc()}", partial)
            )
        except Exception:
            pass
        raise SystemExit(1)
    finally:
        transport.close_consumer()


def _default_context():
    """Prefer fork (closures in monitor factories work); fall back cleanly."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return multiprocessing.get_context()


class ProcessWorker:
    """A shard worker in a subprocess — the multi-core mode.

    Batches cross the process boundary as contiguous framed bytes over
    a shard transport (:mod:`repro.cluster.transport`): the shared-
    memory ring by default, a bounded queue as the portable fallback.
    Either way the coordinator ships bytes and the *worker* parses, so
    dispatch cost no longer grows with per-packet object overhead.

    With the (Linux-default) fork start method the monitor factory may
    be any callable, closures included; under spawn it must be
    picklable.  Results travel back as plain-data :class:`ShardResult`
    objects on a separate queue, so unpicklable analytics internals
    (lambda key functions, open sinks) never cross the process
    boundary.
    """

    def __init__(
        self,
        shard_id: int,
        monitor_factory: MonitorFactory,
        *,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        transport: str = DEFAULT_TRANSPORT,
        mp_context=None,
        fastpath: bool = False,
        **_: object,
    ) -> None:
        self.shard_id = shard_id
        ctx = mp_context if mp_context is not None else _default_context()
        self._transport = make_transport(
            transport, ctx, queue_depth=queue_depth
        )
        self._results = ctx.Queue()
        self._proc = ctx.Process(
            target=_worker_main,
            args=(shard_id, monitor_factory, self._transport, self._results,
                  fastpath),
            name=f"dart-shard-{shard_id}",
            daemon=True,
        )
        self._proc.start()

    @property
    def transport_name(self) -> str:
        """The transport actually in use (``"shm"`` may have degraded)."""
        return self._transport.name

    def _died(self) -> ShardFailure:
        # The worker reports errors (with partial stats) on the result
        # queue before exiting; a hard crash (segfault, os._exit) leaves
        # only the exit code.
        try:
            report = self._results.get(timeout=0.5)
        except queue.Empty:
            report = None
        self._transport.destroy()
        if report is not None and report[0] == "error":
            _, reason, partial_result = report
            partial = (
                {self.shard_id: partial_result} if partial_result else None
            )
            return ShardFailure(self.shard_id, reason, partial=partial)
        return ShardFailure(
            self.shard_id,
            f"worker process died (exitcode {self._proc.exitcode})",
        )

    def _stall_check(self) -> None:
        """Raised into the transport's space-wait loop: a dead worker
        must surface as a :class:`ShardFailure`, never a stuck send."""
        if not self._proc.is_alive():
            raise self._died()

    def submit(self, batch: List[PacketRecord]) -> None:
        """Frame an object batch and ship it (convenience entry point).

        The coordinator's process-mode dispatcher frames records as it
        routes them and calls :meth:`submit_bytes` directly; this path
        exists for callers holding record lists (tests, the thread/
        process mode-agnostic fan-out in the engine).
        """
        self.submit_bytes(encode_records(batch))

    def submit_bytes(self, payload: bytes) -> None:
        """Ship one framed byte batch to the worker."""
        if not self._proc.is_alive():
            raise self._died()
        self._transport.send_batch(payload, self._stall_check)

    def telemetry_probe(self) -> Tuple[int, bool]:
        """(inbox depth, subprocess liveness).

        Depth units depend on the transport: queued messages for the
        queue transport, unconsumed ring *bytes* for shm; -1 where the
        platform cannot say.  Either way zero means "caught up".
        """
        return self._transport.depth(), self._proc.is_alive()

    def finish(
        self,
        timeout: float = DEFAULT_JOIN_TIMEOUT,
        end_ns: Optional[int] = None,
    ) -> ShardResult:
        self._transport.send_finish(end_ns, self._stall_check)
        deadline = time.monotonic() + timeout
        while True:
            try:
                report = self._results.get(timeout=2 * _POLL_S)
                break
            except queue.Empty:
                if not self._proc.is_alive():
                    # One last chance: the result may have been queued
                    # in the instant before the process exited.
                    try:
                        report = self._results.get(timeout=0.5)
                        break
                    except queue.Empty:
                        self._transport.destroy()
                        raise ShardFailure(
                            self.shard_id,
                            "worker process died "
                            f"(exitcode {self._proc.exitcode})",
                        )
                if time.monotonic() >= deadline:
                    self.abort()
                    raise ShardFailure(
                        self.shard_id,
                        f"worker missed the {timeout:.1f}s join timeout",
                    )
        if report[0] == "error":
            _, reason, partial_result = report
            self._proc.join(timeout=1.0)
            self._transport.destroy()
            partial = (
                {self.shard_id: partial_result} if partial_result else None
            )
            raise ShardFailure(self.shard_id, reason, partial=partial)
        self._proc.join(timeout=max(1.0, deadline - time.monotonic()))
        if self._proc.is_alive():
            self.abort()
        else:
            self._transport.destroy()
        return report[1]

    def abort(self) -> None:
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=1.0)
            if self._proc.is_alive():
                self._proc.kill()
                self._proc.join(timeout=1.0)
        self._transport.destroy()


WORKER_MODES = {
    "serial": InlineWorker,
    "thread": ThreadWorker,
    "process": ProcessWorker,
}
