"""Shard transports: byte batches from coordinator to worker processes.

The original cluster shipped every packet as a pickled Python object
through a ``multiprocessing.Queue`` — and lost to the serial monitor
(``BENCH_pipeline.json`` v4: 4-shard process mode at ~70k pps vs ~131k
serial), because per-object pickling on the coordinator ate more CPU
than sharding saved.  This module replaces that seam with transports
that move *contiguous byte batches* (see :mod:`repro.net.framing`):

* :class:`ShmRingTransport` — the default.  A single-producer /
  single-consumer ring buffer in ``multiprocessing.shared_memory``:
  the producer memcpys a batch into the ring and bumps a counter; the
  payload crosses the process boundary with **zero** pickling and zero
  kernel copies (both sides map the same pages).
* :class:`QueueTransport` — the fallback (platforms without usable
  shared memory, or ``transport="queue"``).  The same byte batches
  over a bounded ``multiprocessing.Queue``; pickling a ``bytes`` blob
  is a memcpy, so this is still far cheaper than object batches, just
  with the queue's copy-through-a-pipe cost on top.

Both speak the same three-message protocol the worker loop consumes:
``("batch", payload)``, ``("finish", end_ns)``, ``("stop", None)``.

Backpressure and fault rules (shared by both):

* a full channel blocks the *producer*, in ``poll_s`` steps, calling
  ``stall_check()`` between steps — the coordinator passes a callback
  that raises :class:`~repro.cluster.worker.ShardFailure` when the
  worker died, so a dead shard can never wedge the dispatch loop;
* the consumer blocks natively (queue get / semaphore acquire) — no
  busy-wait in workers;
* ``destroy()`` is idempotent and safe to call with the peer gone; the
  *coordinator* owns shared-memory unlinking (workers only close their
  mapping).
"""

from __future__ import annotations

import pickle
import struct
import time
from typing import Callable, Optional, Tuple

#: Seconds between stall checks while a producer waits for space.
POLL_S = 0.05

#: Target bytes per shipped batch.  Big enough that the per-batch fixed
#: costs (one semaphore op, one counter update or queue put) amortise
#: over thousands of packets; small enough that workers start promptly.
DEFAULT_BATCH_BYTES = 256 * 1024

#: Ring capacity as a multiple of the batch target: room for several
#: in-flight batches before the producer blocks (the byte-level
#: equivalent of the queue transport's ``queue_depth``).
RING_BATCHES = 8

TRANSPORT_MODES = ("shm", "queue")
DEFAULT_TRANSPORT = "shm"

Message = Tuple[str, object]

#: Ring message kinds.
_K_BATCH = 0
_K_CONTROL = 1

_MSG_HEAD = struct.Struct("<IB")  # payload length, kind
#: Length sentinel: "no message fits before the ring edge — wrap".
_WRAP = 0xFFFFFFFF


class TransportClosed(RuntimeError):
    """The channel is gone (peer exited and tore the transport down)."""


def _default_stall_check() -> None:
    """No-op stall check for callers without liveness to consult."""


class QueueTransport:
    """Byte batches over a bounded ``multiprocessing.Queue``.

    The fallback transport: portable everywhere multiprocessing works,
    with the queue's pipe copy as its only overhead — the payload is a
    single ``bytes`` object, so pickling it is O(len) memcpy, not an
    object-graph walk.
    """

    name = "queue"

    def __init__(self, ctx, *, queue_depth: int,
                 batch_bytes: int = DEFAULT_BATCH_BYTES) -> None:
        self.batch_bytes = batch_bytes
        self._queue = ctx.Queue(maxsize=queue_depth)

    # -- producer (coordinator) side --------------------------------------

    def send_batch(self, payload: bytes,
                   stall_check: Callable[[], None] = _default_stall_check,
                   ) -> None:
        self._send(("batch", payload), stall_check)

    def send_finish(self, end_ns: Optional[int],
                    stall_check: Callable[[], None] = _default_stall_check,
                    ) -> None:
        self._send(("finish", end_ns), stall_check)

    def send_stop(self) -> None:
        """Best-effort abort wake-up; never blocks."""
        try:
            self._queue.put_nowait(("stop", None))
        except Exception:
            pass

    def _send(self, message: Message,
              stall_check: Callable[[], None]) -> None:
        import queue as queue_mod

        while True:
            try:
                self._queue.put(message, timeout=POLL_S)
                return
            except queue_mod.Full:
                stall_check()

    # -- consumer (worker) side --------------------------------------------

    def recv(self) -> Message:
        return self._queue.get()

    def drain(self) -> None:
        """Discard queued batches (abort path, thread-safe best effort)."""
        import queue as queue_mod

        try:
            while True:
                self._queue.get_nowait()
        except (queue_mod.Empty, OSError, ValueError):
            pass

    def depth(self) -> int:
        """Messages currently queued (-1 where unsupported)."""
        try:
            return self._queue.qsize()
        except NotImplementedError:
            return -1

    def close_consumer(self) -> None:
        pass

    def destroy(self) -> None:
        try:
            self._queue.close()
        except Exception:
            pass


class ShmRingTransport:
    """SPSC byte ring in POSIX shared memory — the default transport.

    Layout of the segment: a 16-byte header (``head`` and ``tail``
    monotonic u64 byte counters) followed by ``capacity`` data bytes.
    The producer alone advances ``head``, the consumer alone advances
    ``tail``; both updates happen under one cross-process lock (two
    lock ops per *batch*, thousands of packets — noise), and a
    semaphore counts ready messages so the consumer blocks natively.

    Messages are framed ``u32 length | u8 kind | payload`` and never
    split across the ring edge: when a message does not fit in the
    space before the edge, the producer writes a 4-byte wrap sentinel
    (or, with less than 4 contiguous bytes left, relies on the shared
    "dead tail" rule) and restarts at offset zero.  Ring capacity is
    sized to ``RING_BATCHES`` batch targets, so backpressure engages
    only when the worker is genuinely behind.
    """

    name = "shm"

    _HEADER = 16

    def __init__(self, ctx, *, queue_depth: int,
                 batch_bytes: int = DEFAULT_BATCH_BYTES) -> None:
        from multiprocessing import shared_memory

        self.batch_bytes = batch_bytes
        self.capacity = max(queue_depth, RING_BATCHES) * batch_bytes
        self._shm = shared_memory.SharedMemory(
            create=True, size=self._HEADER + self.capacity
        )
        self._shm_name = self._shm.name
        self._owner = True
        struct.pack_into("<QQ", self._shm.buf, 0, 0, 0)
        self._lock = ctx.Lock()
        self._items = ctx.Semaphore(0)

    # -- pickling: the consumer half re-attaches by name -------------------

    def __getstate__(self):
        return {
            "batch_bytes": self.batch_bytes,
            "capacity": self.capacity,
            "shm_name": self._shm_name,
            "lock": self._lock,
            "items": self._items,
        }

    def __setstate__(self, state):
        from multiprocessing import resource_tracker, shared_memory

        self.batch_bytes = state["batch_bytes"]
        self.capacity = state["capacity"]
        self._shm_name = state["shm_name"]
        self._lock = state["lock"]
        self._items = state["items"]
        self._owner = False
        self._shm = shared_memory.SharedMemory(name=self._shm_name)
        # Attaching registers the segment with this process's resource
        # tracker (CPython gh-82300); the coordinator owns the unlink,
        # so deregister here or the tracker double-unlinks at exit.
        try:
            resource_tracker.unregister(self._shm._name, "shared_memory")
        except Exception:
            pass

    # -- counters -----------------------------------------------------------

    def _read_counters(self) -> Tuple[int, int]:
        with self._lock:
            return struct.unpack_from("<QQ", self._shm.buf, 0)

    def _advance_head(self, by: int) -> None:
        with self._lock:
            head, = struct.unpack_from("<Q", self._shm.buf, 0)
            struct.pack_into("<Q", self._shm.buf, 0, head + by)

    def _advance_tail(self, by: int) -> None:
        with self._lock:
            tail, = struct.unpack_from("<Q", self._shm.buf, 8)
            struct.pack_into("<Q", self._shm.buf, 8, tail + by)

    # -- producer (coordinator) side ----------------------------------------

    def send_batch(self, payload: bytes,
                   stall_check: Callable[[], None] = _default_stall_check,
                   ) -> None:
        self._send(_K_BATCH, payload, stall_check)

    def send_finish(self, end_ns: Optional[int],
                    stall_check: Callable[[], None] = _default_stall_check,
                    ) -> None:
        self._send(_K_CONTROL, pickle.dumps(("finish", end_ns)), stall_check)

    def send_stop(self) -> None:
        try:
            self._send(_K_CONTROL, pickle.dumps(("stop", None)),
                       _default_stall_check, timeout=1.0)
        except (TransportClosed, TimeoutError):
            pass

    def _send(self, kind: int, payload: bytes,
              stall_check: Callable[[], None],
              timeout: Optional[float] = None) -> None:
        need = _MSG_HEAD.size + len(payload)
        if need > self.capacity - 4:
            raise ValueError(
                f"message of {len(payload)} bytes exceeds the ring "
                f"capacity ({self.capacity}); raise batch_bytes"
            )
        if self._shm is None:
            raise TransportClosed("ring is destroyed")
        deadline = (time.monotonic() + timeout) if timeout else None
        while True:
            head, tail = self._read_counters()
            offset = head % self.capacity
            edge = self.capacity - offset
            # Worst case we burn `edge` padding bytes before the data.
            advance = need if edge >= need else edge + need
            if self.capacity - (head - tail) >= advance:
                break
            stall_check()
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError("ring full")
            time.sleep(POLL_S)
        buf = self._shm.buf
        if edge < need:
            # Not enough room before the edge: mark the dead tail (a
            # wrap sentinel when >= 4 bytes remain; fewer bytes are
            # skipped implicitly by the consumer's same edge rule).
            if edge >= 4:
                struct.pack_into("<I", buf, self._HEADER + offset, _WRAP)
            offset = 0
        _MSG_HEAD.pack_into(buf, self._HEADER + offset, len(payload), kind)
        data_at = self._HEADER + offset + _MSG_HEAD.size
        buf[data_at:data_at + len(payload)] = payload
        self._advance_head(advance)
        self._items.release()

    # -- consumer (worker) side ---------------------------------------------

    def recv(self) -> Message:
        self._items.acquire()
        head, tail = self._read_counters()
        offset = tail % self.capacity
        edge = self.capacity - offset
        buf = self._shm.buf
        skipped = 0
        if edge < _MSG_HEAD.size or (
            edge >= 4
            and struct.unpack_from("<I", buf, self._HEADER + offset)[0]
            == _WRAP
        ):
            skipped = edge
            offset = 0
        length, kind = _MSG_HEAD.unpack_from(buf, self._HEADER + offset)
        data_at = self._HEADER + offset + _MSG_HEAD.size
        payload = bytes(buf[data_at:data_at + length])
        self._advance_tail(skipped + _MSG_HEAD.size + length)
        if kind == _K_BATCH:
            return ("batch", payload)
        return pickle.loads(payload)

    def drain(self) -> None:
        """Fast-forward the consumer past everything queued (abort)."""
        while self._items.acquire(block=False):
            head, tail = self._read_counters()
            offset = tail % self.capacity
            edge = self.capacity - offset
            buf = self._shm.buf
            skipped = 0
            if edge < _MSG_HEAD.size or (
                edge >= 4
                and struct.unpack_from("<I", buf, self._HEADER + offset)[0]
                == _WRAP
            ):
                skipped = edge
                offset = 0
            length, _ = _MSG_HEAD.unpack_from(buf, self._HEADER + offset)
            self._advance_tail(skipped + _MSG_HEAD.size + length)

    def depth(self) -> int:
        """Unconsumed bytes in the ring (a load signal, not messages)."""
        if self._shm is None:
            return -1
        head, tail = self._read_counters()
        return head - tail

    def close_consumer(self) -> None:
        """Detach the worker-side mapping (never unlinks)."""
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
            except Exception:
                pass

    def destroy(self) -> None:
        """Release the segment.  Owner side also unlinks; idempotent."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except Exception:
            pass
        if self._owner:
            try:
                shm.unlink()
            except Exception:
                pass


def make_transport(name: str, ctx, *, queue_depth: int,
                   batch_bytes: int = DEFAULT_BATCH_BYTES):
    """Build a shard transport by name (``"shm"`` or ``"queue"``)."""
    if name == "shm":
        try:
            return ShmRingTransport(ctx, queue_depth=queue_depth,
                                    batch_bytes=batch_bytes)
        except (ImportError, OSError):
            # No usable POSIX shared memory (exotic platforms, tiny
            # /dev/shm): degrade to the portable queue transport.
            return QueueTransport(ctx, queue_depth=queue_depth,
                                  batch_bytes=batch_bytes)
    if name == "queue":
        return QueueTransport(ctx, queue_depth=queue_depth,
                              batch_bytes=batch_bytes)
    raise ValueError(
        f"transport must be one of {TRANSPORT_MODES}, got {name!r}"
    )
