"""Flow-consistent sharding: route packets to parallel Dart instances.

All Dart state — Range Tracker entries, Packet Tracker records, and the
analytics windows — is keyed by the SEQ-direction flow 4-tuple.  A
packet stream can therefore be split across N independent Dart
instances without changing per-flow semantics, *provided* both
directions of a connection land on the same instance: a data packet is
matched by an ACK travelling the opposite way, so the shard function
must be direction-independent.

:func:`shard_of_flow` achieves this by hashing the *canonical*
(smaller-endpoint-first) form of the 4-tuple, the same canonicalisation
:meth:`repro.core.flow.FlowKey.canonical` uses for connection counting.
The hash is a salted CRC32 with a salt of its own, so shard choice is
decorrelated from the table-index and signature hashes — otherwise
flows colliding in a PT stage would pile onto one shard and skew both
load and collision pressure.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from ..core.flow import FlowKey, flow_of
from ..core.hashing import crc32_hash
from ..net.framing import BatchEncoder
from ..net.packet import PacketRecord
from ..net.scan import SCAN_PROTOCOLS, scan_shard_key

#: Salt for the shard hash; distinct from every table-stage salt and the
#: signature salt in :mod:`repro.core.hashing`.
SHARD_SALT = 0x5AD0CAFE

#: Records buffered per shard before a batch is handed to its worker.
#: Large enough to amortise queue/pickling overhead in process mode,
#: small enough to keep workers busy on modest traces.
DEFAULT_BATCH_SIZE = 2048

#: Byte ceiling per emitted byte batch: record frames are ~36 bytes so
#: a count-full batch stays well under this, but raw wire frames can be
#: MTU-sized — the ceiling keeps any single batch far below the shm
#: ring's capacity regardless of frame mix.
DEFAULT_BATCH_BYTES = 256 * 1024


@lru_cache(maxsize=1 << 20)
def shard_of_flow(flow: FlowKey, shards: int) -> int:
    """Shard index of a flow (direction-independent).

    SEQ-direction and ACK-direction packets of one connection map to the
    same shard: ``shard_of_flow(f, n) == shard_of_flow(f.reversed(), n)``
    for every flow — the invariant the whole cluster rests on.
    """
    if shards <= 1:
        return 0
    return crc32_hash(flow.canonical().key_bytes(), SHARD_SALT) % shards


def shard_of(record: PacketRecord, shards: int) -> int:
    """Shard index of one observed packet."""
    return shard_of_flow(flow_of(record), shards)


def shard_of_key_bytes(key: bytes, shards: int) -> int:
    """Shard index from pre-built canonical flow-key bytes.

    ``key`` is what :func:`repro.net.scan.scan_shard_key` (or
    :func:`repro.net.scan.canonical_key_bytes`) returns — the exact
    bytes ``FlowKey.canonical().key_bytes()`` would produce after a
    full decode, so this always agrees with :func:`shard_of_flow`.
    """
    if shards <= 1:
        return 0
    return crc32_hash(key, SHARD_SALT) % shards


def shard_of_wire(
    data: bytes,
    shards: int,
    *,
    linktype_ethernet: bool = True,
    protocols: FrozenSet[int] = SCAN_PROTOCOLS,
) -> Optional[int]:
    """Shard index of a raw captured frame, without parsing it.

    ``None`` means the frame is not shardable (non-IP, protocol outside
    ``protocols``, or too short to reach the ports) — the byte-path
    analogue of the decoder returning ``None`` for non-TCP frames.
    """
    key = scan_shard_key(
        data, linktype_ethernet=linktype_ethernet, protocols=protocols
    )
    if key is None:
        return None
    return shard_of_key_bytes(key, shards)


def split_trace(
    records: Sequence[PacketRecord], shards: int
) -> List[List[PacketRecord]]:
    """Partition a trace into per-shard sub-traces (order-preserving)."""
    parts: List[List[PacketRecord]] = [[] for _ in range(shards)]
    for record in records:
        parts[shard_of(record, shards)].append(record)
    return parts


class BatchDispatcher:
    """Buffers records per shard and emits fixed-size batches.

    ``emit(shard_id, batch)`` is called whenever a shard's buffer
    reaches ``batch_size``; :meth:`flush` drains the remainders at end
    of trace.  Batching is what makes process-mode sharding profitable:
    one queue operation (and one pickle) covers thousands of packets.
    """

    def __init__(
        self,
        shards: int,
        emit: Callable[[int, List[PacketRecord]], None],
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.shards = shards
        self.batch_size = batch_size
        self._emit = emit
        self._buffers: List[List[PacketRecord]] = [[] for _ in range(shards)]
        #: Packets routed to each shard so far (including buffered ones).
        self.dispatched: Dict[int, int] = {i: 0 for i in range(shards)}

    def dispatch(self, record: PacketRecord) -> None:
        """Route one record; may emit a full batch."""
        shard = shard_of(record, self.shards)
        self.dispatched[shard] += 1
        buffer = self._buffers[shard]
        buffer.append(record)
        if len(buffer) >= self.batch_size:
            self._buffers[shard] = []
            self._emit(shard, buffer)

    def flush(self) -> None:
        """Emit every non-empty partial batch (end of trace)."""
        for shard, buffer in enumerate(self._buffers):
            if buffer:
                self._buffers[shard] = []
                self._emit(shard, buffer)


class ByteBatchDispatcher:
    """Buffers framed *bytes* per shard and emits contiguous batches.

    The process-mode twin of :class:`BatchDispatcher`: instead of
    per-shard record lists (which each cost a pickled object graph at
    the queue), every shard owns a :class:`~repro.net.framing.BatchEncoder`
    and records are packed into its buffer the moment they are routed.
    ``emit(shard_id, payload)`` receives a finished ``bytes`` batch when
    a shard's buffer reaches ``batch_size`` records *or* ``batch_bytes``
    bytes — the byte ceiling matters on the raw-frame path, where one
    record can be MTU-sized.

    Two routing entry points:

    * :meth:`dispatch` — a parsed :class:`~repro.net.packet.PacketRecord`;
      sharded via the (cached) flow hash, framed as a packed record.
    * :meth:`dispatch_wire` — a raw captured frame; sharded via the
      zero-copy header scan, framed *unparsed* so the worker does the
      decode.  Returns ``False`` for frames the scanner rejects, which
      the caller counts rather than ships.
    """

    def __init__(
        self,
        shards: int,
        emit: Callable[[int, bytes], None],
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        batch_bytes: int = DEFAULT_BATCH_BYTES,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if batch_bytes < 1:
            raise ValueError("batch_bytes must be positive")
        self.shards = shards
        self.batch_size = batch_size
        self.batch_bytes = batch_bytes
        self._emit = emit
        self._encoders: List[BatchEncoder] = [
            BatchEncoder() for _ in range(shards)
        ]
        #: Packets routed to each shard so far (including buffered ones).
        self.dispatched: Dict[int, int] = {i: 0 for i in range(shards)}

    def _maybe_emit(self, shard: int, encoder: BatchEncoder) -> None:
        if (encoder.count >= self.batch_size
                or encoder.size >= self.batch_bytes):
            self._emit(shard, encoder.take())

    def dispatch(self, record: PacketRecord) -> None:
        """Route one parsed record; may emit a full batch."""
        shard = shard_of(record, self.shards)
        self.dispatched[shard] += 1
        encoder = self._encoders[shard]
        encoder.add_record(record)
        self._maybe_emit(shard, encoder)

    def dispatch_wire(
        self,
        data: bytes,
        timestamp_ns: int,
        *,
        linktype_ethernet: bool = True,
        protocols: FrozenSet[int] = SCAN_PROTOCOLS,
    ) -> bool:
        """Route one raw frame unparsed; ``False`` if not shardable."""
        key = scan_shard_key(
            data, linktype_ethernet=linktype_ethernet, protocols=protocols
        )
        if key is None:
            return False
        shard = shard_of_key_bytes(key, self.shards)
        self.dispatched[shard] += 1
        encoder = self._encoders[shard]
        encoder.add_wire(
            data, timestamp_ns, linktype_ethernet=linktype_ethernet
        )
        self._maybe_emit(shard, encoder)
        return True

    def flush(self) -> None:
        """Emit every non-empty partial batch (end of trace)."""
        for shard, encoder in enumerate(self._encoders):
            if encoder.count:
                self._emit(shard, encoder.take())
