"""Flow-consistent sharding: route packets to parallel Dart instances.

All Dart state — Range Tracker entries, Packet Tracker records, and the
analytics windows — is keyed by the SEQ-direction flow 4-tuple.  A
packet stream can therefore be split across N independent Dart
instances without changing per-flow semantics, *provided* both
directions of a connection land on the same instance: a data packet is
matched by an ACK travelling the opposite way, so the shard function
must be direction-independent.

:func:`shard_of_flow` achieves this by hashing the *canonical*
(smaller-endpoint-first) form of the 4-tuple, the same canonicalisation
:meth:`repro.core.flow.FlowKey.canonical` uses for connection counting.
The hash is a salted CRC32 with a salt of its own, so shard choice is
decorrelated from the table-index and signature hashes — otherwise
flows colliding in a PT stage would pile onto one shard and skew both
load and collision pressure.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Sequence

from ..core.flow import FlowKey, flow_of
from ..core.hashing import crc32_hash
from ..net.packet import PacketRecord

#: Salt for the shard hash; distinct from every table-stage salt and the
#: signature salt in :mod:`repro.core.hashing`.
SHARD_SALT = 0x5AD0CAFE

#: Records buffered per shard before a batch is handed to its worker.
#: Large enough to amortise queue/pickling overhead in process mode,
#: small enough to keep workers busy on modest traces.
DEFAULT_BATCH_SIZE = 2048


@lru_cache(maxsize=1 << 20)
def shard_of_flow(flow: FlowKey, shards: int) -> int:
    """Shard index of a flow (direction-independent).

    SEQ-direction and ACK-direction packets of one connection map to the
    same shard: ``shard_of_flow(f, n) == shard_of_flow(f.reversed(), n)``
    for every flow — the invariant the whole cluster rests on.
    """
    if shards <= 1:
        return 0
    return crc32_hash(flow.canonical().key_bytes(), SHARD_SALT) % shards


def shard_of(record: PacketRecord, shards: int) -> int:
    """Shard index of one observed packet."""
    return shard_of_flow(flow_of(record), shards)


def split_trace(
    records: Sequence[PacketRecord], shards: int
) -> List[List[PacketRecord]]:
    """Partition a trace into per-shard sub-traces (order-preserving)."""
    parts: List[List[PacketRecord]] = [[] for _ in range(shards)]
    for record in records:
        parts[shard_of(record, shards)].append(record)
    return parts


class BatchDispatcher:
    """Buffers records per shard and emits fixed-size batches.

    ``emit(shard_id, batch)`` is called whenever a shard's buffer
    reaches ``batch_size``; :meth:`flush` drains the remainders at end
    of trace.  Batching is what makes process-mode sharding profitable:
    one queue operation (and one pickle) covers thousands of packets.
    """

    def __init__(
        self,
        shards: int,
        emit: Callable[[int, List[PacketRecord]], None],
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.shards = shards
        self.batch_size = batch_size
        self._emit = emit
        self._buffers: List[List[PacketRecord]] = [[] for _ in range(shards)]
        #: Packets routed to each shard so far (including buffered ones).
        self.dispatched: Dict[int, int] = {i: 0 for i in range(shards)}

    def dispatch(self, record: PacketRecord) -> None:
        """Route one record; may emit a full batch."""
        shard = shard_of(record, self.shards)
        self.dispatched[shard] += 1
        buffer = self._buffers[shard]
        buffer.append(record)
        if len(buffer) >= self.batch_size:
            self._buffers[shard] = []
            self._emit(shard, buffer)

    def flush(self) -> None:
        """Emit every non-empty partial batch (end of trace)."""
        for shard, buffer in enumerate(self._buffers):
            if buffer:
                self._buffers[shard] = []
                self._emit(shard, buffer)
