"""Merging per-shard results into one cluster-wide view.

Flow-consistent sharding guarantees every per-flow quantity is computed
entirely inside one shard, so merging is pure aggregation:

* counters add (:meth:`repro.core.pipeline.DartStats.merge`),
* sample streams interleave by timestamp (each shard's stream is
  already time-ordered, so the merged stream is the multiset union of
  the shards' samples in global ACK-arrival order),
* analytics window histories interleave by ``closed_at_ns`` — the order
  a single collector would have seen the windows close in.

What merging can *not* restore is cross-shard coupling that serial Dart
never had per flow anyway — see DESIGN.md ("Scaling out") for when the
merged output is bit-identical to a serial run versus multiset-equal.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterable, List, Optional, Sequence

from ..core.analytics import MinFilterAnalytics, WindowMinimum
from ..core.pipeline import DartStats
from ..core.samples import RttSample, SampleCollector
from .worker import ClusterPartialResultWarning, ShardResult


def merge_stats(stats: Iterable[Any]) -> Any:
    """Sum per-shard stats into a fresh object of the same stats type.

    Works for any monitor's counters dataclass: a zero-argument
    construction of the first item's type seeds the fold, and each
    item's own ``merge`` (field-wise addition, or
    :meth:`~repro.core.pipeline.DartStats.merge`'s histogram-aware
    variant) accumulates into it.  An empty input merges to an empty
    :class:`DartStats` — the historical behaviour, kept for callers that
    merge zero shards.
    """
    iterator = iter(stats)
    first = next(iterator, None)
    if first is None:
        return DartStats()
    merged = type(first)()
    merged.merge(first)
    for s in iterator:
        merged.merge(s)
    return merged


def merge_sample_lists(
    sample_lists: Iterable[Sequence[RttSample]],
) -> List[RttSample]:
    """Interleave per-shard sample streams by ACK arrival time.

    The sort is stable, so samples with equal timestamps keep their
    within-shard order; across shards equal-timestamp order follows
    shard id — a deterministic, documented tie-break.
    """
    merged: List[RttSample] = []
    for samples in sample_lists:
        merged.extend(samples)
    merged.sort(key=lambda s: s.timestamp_ns)
    return merged


def merge_collectors(collectors: Iterable[SampleCollector]) -> SampleCollector:
    """Union several collectors' samples into a fresh, time-ordered one."""
    merged = SampleCollector()
    merged.samples.extend(
        merge_sample_lists(c.samples for c in collectors)
    )
    return merged


def merge_window_histories(
    histories: Iterable[Sequence[WindowMinimum]],
) -> List[WindowMinimum]:
    """Interleave per-shard closed-window streams by close time.

    Stable under out-of-order ``closed_at_ns`` inputs: entries with the
    same close time keep their input order (first by history, then by
    position), so merging is deterministic even when shards close
    windows in the same nanosecond.
    """
    merged: List[WindowMinimum] = []
    for history in histories:
        merged.extend(history)
    merged.sort(key=lambda w: w.closed_at_ns)
    return merged


def absorb_window_history(
    analytics: MinFilterAnalytics,
    windows: Sequence[WindowMinimum],
) -> MinFilterAnalytics:
    """Fold other shards' closed windows into a live analytics object.

    Rebuilds ``analytics.history`` as the ``closed_at_ns``-sorted union
    and keeps the per-key ``minima_for`` index consistent by funnelling
    every entry through the analytics' own record path.  Works for
    :class:`MinFilterAnalytics` and :class:`PrefixMinAnalytics` alike.
    """
    merged = merge_window_histories([list(analytics.history), windows])
    analytics.history.clear()
    analytics._by_key.clear()
    for window in merged:
        analytics._record_window(window)
    return analytics


def merge_distributions(results: Sequence[ShardResult]) -> Optional[Any]:
    """Fold the shards' distribution snapshots by addition.

    Seeds the fold with a deep copy (distribution stages carry
    configuration — bin edges, alpha — so there is no zero-argument
    construction) and merges the rest in, leaving every shard's own
    snapshot untouched.  ``None`` when no shard carried one.
    """
    distributions = [r.distribution for r in results
                     if r.distribution is not None]
    if not distributions:
        return None
    from copy import deepcopy

    merged = deepcopy(distributions[0])
    for distribution in distributions[1:]:
        merged.merge(distribution)
    return merged


def merge_telemetry(results: Sequence[ShardResult]) -> Optional[Any]:
    """Sum the shards' obs snapshots (None when no shard carried one)."""
    snapshots = [r.telemetry for r in results if r.telemetry is not None]
    if not snapshots:
        return None
    from ..obs.snapshot import merge_snapshots

    return merge_snapshots(snapshots)


def merge_results(results: Iterable[ShardResult]) -> ShardResult:
    """Collapse per-shard results into one cluster-wide ShardResult.

    The merged object uses shard id -1 (it belongs to no single shard)
    and is marked partial if any contributing result was.  Merging a
    partial result is loud: the failed shard's in-flight analytics
    windows are gone, so a :class:`ClusterPartialResultWarning` names
    the failed shards and the window count lost — salvaged views must
    never read as complete ones.
    """
    ordered = sorted(results, key=lambda r: r.shard_id)
    failed = [r.shard_id for r in ordered if r.partial]
    if failed:
        lost = sum(r.windows_lost for r in ordered)
        warnings.warn(
            f"merging partial results: shard(s) {failed} failed "
            f"mid-trace; {lost} in-flight analytics window(s) lost "
            "(their samples are absent from the merged view)",
            ClusterPartialResultWarning,
            stacklevel=2,
        )
    return ShardResult(
        shard_id=-1,
        packets=sum(r.packets for r in ordered),
        stats=merge_stats(r.stats for r in ordered),
        samples=merge_sample_lists(r.samples for r in ordered),
        window_history=merge_window_histories(
            r.window_history for r in ordered
        ),
        rt_collapses=sum(r.rt_collapses for r in ordered),
        partial=any(r.partial for r in ordered),
        windows_lost=sum(r.windows_lost for r in ordered),
        telemetry=merge_telemetry(ordered),
        distribution=merge_distributions(ordered),
    )
