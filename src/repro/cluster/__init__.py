"""Flow-sharded parallel Dart: multi-core trace processing.

The software analogue of running Dart on several hardware pipelines:
packets are routed to N independent Dart instances by a bidirectional
flow-shard hash (both directions of a connection always land on the
same instance), each shard processes its sub-stream with its own Range
Tracker, Packet Tracker, and analytics, and the per-shard results merge
into one cluster-wide view.

Public surface:

* :class:`ShardedDart` (alias :class:`ShardedMonitor`) — the
  coordinator façade with the serial monitor's ``process_trace`` /
  ``finalize`` / ``stats`` / ``samples`` surface and a
  ``parallel="process" | "thread" | "serial"`` execution knob.  Via
  ``monitor_factory`` it shards any registered
  :class:`repro.engine.RttMonitor`, not just Dart.
* :class:`ShardFailure` / :class:`ShardResult` — the failure and result
  types of the worker layer.
* :func:`shard_of` / :func:`shard_of_flow` / :func:`shard_of_wire` /
  :func:`split_trace` / :class:`BatchDispatcher` /
  :class:`ByteBatchDispatcher` — the sharding primitives (object and
  byte-batch flavours).
* :class:`ShmRingTransport` / :class:`QueueTransport` — how process-
  mode byte batches cross the process boundary (``transport="shm"``
  is the default, ``"queue"`` the portable fallback).
* ``merge_*`` — pure aggregation of stats, sample streams, collectors,
  and analytics window histories.
"""

from .coordinator import PARALLEL_MODES, ShardedDart, ShardedMonitor
from .merge import (
    absorb_window_history,
    merge_collectors,
    merge_results,
    merge_sample_lists,
    merge_stats,
    merge_telemetry,
    merge_window_histories,
)
from .sharding import (
    DEFAULT_BATCH_BYTES,
    DEFAULT_BATCH_SIZE,
    SHARD_SALT,
    BatchDispatcher,
    ByteBatchDispatcher,
    shard_of,
    shard_of_flow,
    shard_of_key_bytes,
    shard_of_wire,
    split_trace,
)
from .transport import (
    DEFAULT_TRANSPORT,
    TRANSPORT_MODES,
    QueueTransport,
    ShmRingTransport,
    make_transport,
)
from .worker import (
    DEFAULT_JOIN_TIMEOUT,
    DEFAULT_QUEUE_DEPTH,
    ClusterPartialResultWarning,
    InlineWorker,
    MonitorFactory,
    ProcessWorker,
    ShardFailure,
    ShardResult,
    ThreadWorker,
    harvest,
)

__all__ = [
    "BatchDispatcher",
    "ByteBatchDispatcher",
    "ClusterPartialResultWarning",
    "DEFAULT_BATCH_BYTES",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_JOIN_TIMEOUT",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_TRANSPORT",
    "InlineWorker",
    "MonitorFactory",
    "PARALLEL_MODES",
    "ProcessWorker",
    "QueueTransport",
    "SHARD_SALT",
    "ShardFailure",
    "ShardResult",
    "ShardedDart",
    "ShardedMonitor",
    "ShmRingTransport",
    "TRANSPORT_MODES",
    "ThreadWorker",
    "absorb_window_history",
    "harvest",
    "make_transport",
    "merge_collectors",
    "merge_results",
    "merge_sample_lists",
    "merge_stats",
    "merge_telemetry",
    "merge_window_histories",
    "shard_of",
    "shard_of_flow",
    "shard_of_key_bytes",
    "shard_of_wire",
    "split_trace",
]
