"""``ShardedDart``: the cluster façade with the serial monitor surface.

A :class:`ShardedDart` looks like a :class:`~repro.core.pipeline.Dart`
— ``process_trace`` / ``finalize`` / ``stats`` / ``samples`` — but fans
the packet stream out across N flow-sharded workers and merges their
results.  ``shards=1`` degenerates to the serial monitor (the worker
machinery is bypassed entirely), so callers can treat the shard count
as just another sizing knob.

Despite the name, the shards need not run Dart: ``monitor_factory``
accepts any zero-argument factory building a
:class:`repro.engine.RttMonitor` (``repro.engine.monitor_factory("tcptrace")``
shards the tcptrace oracle, for instance).  Flow-consistent sharding is
what makes this sound: every monitor in this library keys all its state
by canonical flow, so a flow's packets landing on one shard reproduce
the serial monitor's per-flow decisions exactly.  ``ShardedMonitor`` is
the name-accurate alias.

Failure model: any worker crash or hang surfaces as a
:class:`~repro.cluster.worker.ShardFailure` carrying the failed shard's
id and whatever partial results were recovered.  On failure the
coordinator aborts the remaining workers before raising — it never
deadlocks waiting on a dead queue, and never silently returns a partial
merge as if it were complete.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from ..core.analytics import WindowMinimum
from ..core.config import DartConfig
from ..core.pipeline import Dart, LegFilter, TargetFilter
from ..core.samples import RttSample
from ..net.packet import PacketRecord, from_wire_bytes
from ..net.scan import TCP_ONLY, scan_shard_key
from .merge import merge_results
from .sharding import (
    DEFAULT_BATCH_SIZE,
    BatchDispatcher,
    ByteBatchDispatcher,
)
from .transport import DEFAULT_TRANSPORT, TRANSPORT_MODES
from .worker import (
    DEFAULT_JOIN_TIMEOUT,
    DEFAULT_QUEUE_DEPTH,
    MonitorFactory,
    ShardFailure,
    ShardResult,
    WORKER_MODES,
)

PARALLEL_MODES = tuple(WORKER_MODES)


class ShardedDart:
    """N flow-sharded Dart instances behind one Dart-shaped façade.

    Args:
        config: per-shard Dart configuration (each worker gets its own
            tables of this size — total memory scales with the shard
            count, exactly like adding hardware pipelines).
        shards: number of parallel Dart instances.  ``1`` short-circuits
            to a plain serial :class:`Dart`.
        parallel: ``"process"`` (multi-core, the default), ``"thread"``
            (GIL-bound; overlaps I/O only), or ``"serial"`` (inline, for
            debugging and ground-truth comparisons).
        monitor_factory: build one shard's monitor — any
            :class:`repro.engine.RttMonitor` factory; overrides
            ``config`` / ``analytics_factory`` / filters.  Must be
            callable in the worker context (any callable under fork;
            picklable under spawn).
        dart_factory: backward-compatible alias for
            ``monitor_factory`` (the parameter's name before shards
            could run non-Dart monitors).  Passing both is an error.
        analytics_factory: build one shard's analytics module (a shared
            analytics *instance* cannot be handed to N workers).
        leg_filter / target_filter: as for :class:`Dart`.
        transport: how process-mode byte batches cross the process
            boundary — ``"shm"`` (shared-memory ring, the default) or
            ``"queue"`` (bounded ``multiprocessing.Queue``, the
            portable fallback).  Ignored by the other parallel modes,
            which have no serialization boundary to optimise.
        batch_size: records per dispatched batch.
        queue_depth: batches buffered per worker before the dispatcher
            blocks (backpressure).
        join_timeout: seconds to wait for a worker at ``finalize``
            before declaring it hung.
        fastpath: decode byte batches columnar in process-mode workers
            (``process_columns`` instead of per-record parse) — same
            verdicts, stats, and samples, pinned by the cluster
            equivalence suite.  A no-op when numpy is unavailable in
            the worker, for monitors without ``process_columns``, and
            in serial/thread modes (no byte boundary to vectorise).
    """

    def __init__(
        self,
        config: Optional[DartConfig] = None,
        *,
        shards: int = 1,
        parallel: str = "process",
        monitor_factory: Optional[MonitorFactory] = None,
        dart_factory: Optional[MonitorFactory] = None,
        analytics_factory: Optional[Callable[[], object]] = None,
        leg_filter: Optional[LegFilter] = None,
        target_filter: Optional[TargetFilter] = None,
        transport: str = DEFAULT_TRANSPORT,
        batch_size: int = DEFAULT_BATCH_SIZE,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        join_timeout: float = DEFAULT_JOIN_TIMEOUT,
        fastpath: bool = False,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        if parallel not in WORKER_MODES:
            raise ValueError(
                f"parallel must be one of {sorted(WORKER_MODES)}, "
                f"got {parallel!r}"
            )
        if transport not in TRANSPORT_MODES:
            raise ValueError(
                f"transport must be one of {sorted(TRANSPORT_MODES)}, "
                f"got {transport!r}"
            )
        if monitor_factory is not None and dart_factory is not None:
            raise ValueError(
                "pass monitor_factory or dart_factory, not both "
                "(dart_factory is the deprecated alias)"
            )
        if monitor_factory is None:
            monitor_factory = dart_factory
        if monitor_factory is None:
            def monitor_factory() -> Dart:
                analytics = (
                    analytics_factory() if analytics_factory is not None
                    else None
                )
                return Dart(
                    config,
                    analytics=analytics,
                    leg_filter=leg_filter,
                    target_filter=target_filter,
                )
        self.shards = shards
        self.parallel = parallel if shards > 1 else "serial"
        #: Whether process-mode workers were asked to decode columnar.
        self.fastpath = fastpath
        #: The transport process-mode batches ride on; ``None`` when no
        #: process boundary exists (serial/thread modes, one shard).
        self.transport = (
            transport if shards > 1 and parallel == "process" else None
        )
        #: Multi-shard runs surface samples only after :meth:`finalize`
        #: (workers retain them until harvest); the engine reads this to
        #: route retained samples post-finalize instead of per batch.
        self.defers_samples = shards > 1
        #: Raw frames :meth:`process_wire` dropped because the header
        #: scanner could not shard them (non-IP, non-TCP, truncated
        #: before the ports) — the cluster twin of a capture reader
        #: skipping undecodable frames.
        self.wire_skipped = 0
        self._join_timeout = join_timeout
        self._results: Optional[List[ShardResult]] = None
        self._merged: Optional[ShardResult] = None
        #: Latest packet timestamp dispatched — every shard flushes its
        #: open analytics windows at this global end-of-trace time, so
        #: flush windows match a serial run's bit for bit.
        self._end_ns: Optional[int] = None
        self.dart: Optional[Any] = None
        self._workers: List = []
        self._dispatcher: Optional[Any] = None
        if shards == 1:
            # Degenerate case: the serial monitor itself, no workers,
            # no batching, live stats.
            self.dart = monitor_factory()
            return
        worker_cls = WORKER_MODES[parallel]
        self._workers = [
            worker_cls(
                shard, monitor_factory,
                queue_depth=queue_depth, transport=transport,
                fastpath=fastpath,
            )
            for shard in range(shards)
        ]
        if parallel == "process":
            # Byte path: records are framed as they are routed and the
            # workers parse — the coordinator never pickles an object
            # graph and never decodes a shipped wire frame.
            self._dispatcher = ByteBatchDispatcher(
                shards, self._submit_bytes, batch_size=batch_size
            )
        else:
            # No serialization boundary: object batches are strictly
            # cheaper in-process.
            self._dispatcher = BatchDispatcher(
                shards, self._submit, batch_size=batch_size
            )

    # -- Packet entry points ----------------------------------------------

    def process(self, record: PacketRecord) -> List[RttSample]:
        """Route one packet to its shard.

        Unlike serial :meth:`Dart.process` this cannot return the
        packet's samples synchronously (the shard consumes the batch
        later); samples are available from :attr:`samples` after
        :meth:`finalize`.  With ``shards=1`` it delegates and behaves
        exactly like the serial pipeline.
        """
        if self.dart is not None:
            return self.dart.process(record)
        if self._results is not None:
            raise RuntimeError("ShardedDart already finalized")
        if self._end_ns is None or record.timestamp_ns > self._end_ns:
            self._end_ns = record.timestamp_ns
        self._dispatcher.dispatch(record)
        return []

    def process_trace(self, records: Iterable[PacketRecord]) -> "ShardedDart":
        """Dispatch an iterable of packets; returns self for chaining."""
        if self.dart is not None:
            self.dart.process_trace(records)
            return self
        if self._results is not None:
            raise RuntimeError("ShardedDart already finalized")
        dispatch = self._dispatcher.dispatch
        end_ns = self._end_ns
        for record in records:
            if end_ns is None or record.timestamp_ns > end_ns:
                end_ns = record.timestamp_ns
            dispatch(record)
        self._end_ns = end_ns
        return self

    def process_batch(
        self, records: Iterable[Optional[PacketRecord]]
    ) -> List[RttSample]:
        """Batched entry point mirroring :meth:`Dart.process_batch`.

        With one shard it delegates to the serial fast path (and returns
        that batch's samples); with several it dispatches the batch and
        returns ``[]`` — like :meth:`process`, sharded samples are only
        available from :attr:`samples` after :meth:`finalize`.  ``None``
        entries (non-TCP decode results) are skipped either way.
        """
        if self.dart is not None:
            return self.dart.process_batch(records)
        self.process_trace(r for r in records if r is not None)
        return []

    def process_wire(
        self,
        data: bytes,
        timestamp_ns: int,
        *,
        linktype_ethernet: bool = True,
    ) -> List[RttSample]:
        """Ingest one raw captured frame — the zero-copy entry point.

        In process mode the frame is sharded by the pre-parse header
        scan and shipped *unparsed*; the owning worker runs the full
        decode.  Frames the scanner cannot shard (non-IP, non-TCP,
        truncated before the L4 ports) are dropped and counted in
        :attr:`wire_skipped` — in every mode, so shard count never
        changes which frames are skipped.  Frames that scan but are
        malformed deeper in raise wherever the decode runs: inline
        here for serial/thread modes, as a :class:`ShardFailure` from
        the owning shard in process mode.
        """
        if self._results is not None:
            raise RuntimeError("ShardedDart already finalized")
        if self._dispatcher is not None and isinstance(
            self._dispatcher, ByteBatchDispatcher
        ):
            # Process mode: one header scan routes the frame, unparsed.
            if not self._dispatcher.dispatch_wire(
                data, timestamp_ns,
                linktype_ethernet=linktype_ethernet, protocols=TCP_ONLY,
            ):
                self.wire_skipped += 1
                return []
            if self._end_ns is None or timestamp_ns > self._end_ns:
                self._end_ns = timestamp_ns
            return []
        # No byte transport below this point (serial or thread mode):
        # apply the same scanner gate — shard count and parallel mode
        # must never change *which* frames are skipped — then decode
        # inline.
        if scan_shard_key(
            data, linktype_ethernet=linktype_ethernet, protocols=TCP_ONLY
        ) is None:
            self.wire_skipped += 1
            return []
        record = from_wire_bytes(
            data, timestamp_ns, linktype_ethernet=linktype_ethernet
        )
        if record is None:
            self.wire_skipped += 1
            return []
        if self.dart is not None:
            return self.dart.process(record)
        if self._end_ns is None or timestamp_ns > self._end_ns:
            self._end_ns = timestamp_ns
        self._dispatcher.dispatch(record)
        return []

    def _submit(self, shard: int, batch: List[PacketRecord]) -> None:
        try:
            self._workers[shard].submit(batch)
        except ShardFailure as failure:
            self._abort_workers(exclude=shard)
            raise failure

    def _submit_bytes(self, shard: int, payload: bytes) -> None:
        try:
            self._workers[shard].submit_bytes(payload)
        except ShardFailure as failure:
            self._abort_workers(exclude=shard)
            raise failure

    # -- Shutdown and results ----------------------------------------------

    def finalize(self, at_ns: Optional[int] = None) -> None:
        """Flush batches, join every worker, and merge their results.

        Idempotent.  ``at_ns`` overrides the end-of-trace timestamp the
        shards flush their analytics windows at, exactly like
        :meth:`Dart.finalize` — useful when this cluster saw only part
        of a stream whose true end is later.  Raises
        :class:`ShardFailure` (with the completed shards' results
        attached as ``partial``) if any worker crashed or missed the
        join timeout.
        """
        if self.dart is not None:
            self.dart.finalize(at_ns)
            return
        if self._results is not None:
            return
        if at_ns is not None and (self._end_ns is None or at_ns > self._end_ns):
            self._end_ns = at_ns
        self._dispatcher.flush()
        completed: Dict[int, ShardResult] = {}
        failure: Optional[ShardFailure] = None
        for worker in self._workers:
            if failure is None:
                try:
                    result = worker.finish(
                        timeout=self._join_timeout, end_ns=self._end_ns
                    )
                    completed[result.shard_id] = result
                except ShardFailure as exc:
                    failure = exc
            else:
                worker.abort()
        if failure is not None:
            failure.partial.update(completed)
            raise failure
        self._results = [completed[shard] for shard in range(self.shards)]
        self._merged = merge_results(self._results)

    def _abort_workers(self, *, exclude: Optional[int] = None) -> None:
        for worker in self._workers:
            if worker.shard_id != exclude:
                worker.abort()

    def _require_merged(self) -> ShardResult:
        self.finalize()
        assert self._merged is not None
        return self._merged

    # -- The Dart-shaped read surface --------------------------------------

    @property
    def stats(self) -> Any:
        """Cluster-wide counters (per-shard stats summed).

        Reading this (or :attr:`samples`) finalizes the cluster if the
        trace has not been finalized yet, mirroring how serial callers
        read ``dart.stats`` after ``process_trace``.
        """
        if self.dart is not None:
            return self.dart.stats
        return self._require_merged().stats

    @property
    def samples(self) -> List[RttSample]:
        """All shards' samples, interleaved by ACK arrival time."""
        if self.dart is not None:
            return self.dart.samples
        return self._require_merged().samples

    @property
    def window_history(self) -> List[WindowMinimum]:
        """Merged analytics window history, ordered by close time."""
        if self.dart is not None:
            analytics = getattr(self.dart, "analytics", None)
            return list(getattr(analytics, "history", ()))
        return self._require_merged().window_history

    @property
    def distribution(self) -> Optional[Any]:
        """Merged histogram/sketch distribution (None when not enabled).

        Like :attr:`stats`, reading this finalizes the cluster if the
        trace has not been finalized yet.  Per-shard snapshots merge by
        addition; flow-consistent sharding makes the result equal a
        serial monitor's distribution bin for bin.
        """
        if self.dart is not None:
            analytics = getattr(self.dart, "analytics", None)
            snapshot = getattr(analytics, "distribution_snapshot", None)
            return snapshot() if callable(snapshot) else None
        return self._require_merged().distribution

    @property
    def shard_results(self) -> List[ShardResult]:
        """Per-shard results (shard id order); finalizes if needed."""
        if self.dart is not None:
            from .worker import harvest

            return [harvest(0, self.dart)]
        self.finalize()
        assert self._results is not None
        return list(self._results)

    @property
    def shard_stats(self) -> List[Any]:
        """Per-shard counters, e.g. eviction/recirculation breakdowns."""
        return [result.stats for result in self.shard_results]

    # -- Telemetry ----------------------------------------------------------

    def collect_telemetry(self, registry: Any, name: str) -> None:
        """Sample cluster state into an obs registry (emission-time hook).

        The engine's telemetry collector calls this instead of the
        generic monitor path because reading :attr:`stats` mid-run
        would finalize the cluster.  What it reports depends on phase:

        * mid-flight — coordinator-side observables only: per-shard
          inbox depth, worker liveness, and packets dispatched (the
          workers' own counters live in other processes until harvest);
        * after finalize — the per-shard worker snapshots that shipped
          home inside each ``ShardResult``, summed into the registry,
          plus merge/partial/window-loss accounting.
        """
        if self.dart is not None:
            from ..obs.collect import collect_monitor

            collect_monitor(registry, self.dart, name)
            return
        shard_labels = ("monitor", "shard")
        queue_depth = registry.gauge(
            "dart_cluster_queue_depth",
            "Batches waiting in this shard's inbox (-1: unknown)",
            shard_labels,
        )
        alive = registry.gauge(
            "dart_cluster_worker_alive",
            "1 while the shard's worker is alive", shard_labels,
        )
        for worker in self._workers:
            depth, live = worker.telemetry_probe()
            labels = (name, str(worker.shard_id))
            queue_depth.set(labels, depth)
            alive.set(labels, 1 if live else 0)
        dispatched = registry.counter(
            "dart_cluster_dispatched_total",
            "Packets routed to this shard so far", shard_labels,
        )
        for shard, count in self._dispatcher.dispatched.items():
            dispatched.set_cumulative((name, str(shard)), count)
        registry.counter(
            "dart_cluster_wire_skipped_total",
            "Raw frames dropped by the pre-parse shard scanner",
            ("monitor",),
        ).set_cumulative((name,), self.wire_skipped)
        if self._merged is None:
            return
        registry.counter(
            "dart_cluster_merges_total",
            "Cluster-wide result merges performed", ("monitor",),
        ).set_cumulative((name,), 1)
        registry.counter(
            "dart_cluster_partial_shards_total",
            "Shards whose results were partial (failed mid-trace)",
            ("monitor",),
        ).set_cumulative(
            (name,), sum(1 for r in self._results if r.partial)
        )
        registry.counter(
            "dart_cluster_windows_lost_total",
            "In-flight analytics windows dropped by partial harvests",
            ("monitor", "shard"),
        ).set_cumulative((name, ""), self._merged.windows_lost)
        if self._merged.telemetry is not None:
            registry.absorb(self._merged.telemetry)
        if self._merged.distribution is not None:
            from ..obs.collect import collect_distribution

            collect_distribution(registry, self._merged.distribution, name)

    def range_collapses(self) -> int:
        """Total Range Tracker collapses across shards.

        Zero for monitors without a Range Tracker (the baselines).
        """
        if self.dart is not None:
            range_tracker = getattr(self.dart, "range_tracker", None)
            if range_tracker is None:
                return 0
            return range_tracker.stats.total_collapses
        return self._require_merged().rt_collapses


#: Name-accurate alias: the coordinator shards any registered monitor,
#: not just Dart.  ``ShardedDart`` remains the primary name for
#: backward compatibility.
ShardedMonitor = ShardedDart
