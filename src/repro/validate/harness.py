"""Run matrix cells: trace generation → one engine pass → accuracy.

Each cell synthesizes its workload trace from the spec's derived seed,
then drives **Dart** and the **tcptrace oracle** through one
:class:`~repro.engine.engine.MonitorEngine` pass over the identical
record stream — exactly the one-pass comparison the benchmarks use —
and scores Dart's samples against the oracle's with
:func:`repro.analysis.accuracy.compare_samples`.

Dart runs with ``ideal_config`` (unconstrained tables): the matrix
measures *algorithmic* divergence under adversarial dynamics, not
capacity eviction, which the sizing benchmarks already cover.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..analysis.accuracy import PairedAccuracy, compare_samples
from ..core import ideal_config, make_leg_filter
from ..engine import MonitorEngine, MonitorOptions, create
from ..traces.datacenter import (
    FileTransferTraceConfig,
    IncastTraceConfig,
    VideoTraceConfig,
    WorkloadTrace,
    generate_file_transfer_trace,
    generate_incast_trace,
    generate_video_trace,
)
from .scenario import ScenarioSpec


def build_trace(spec: ScenarioSpec) -> WorkloadTrace:
    """Synthesize the cell's packet trace (bit-stable per spec)."""
    if spec.workload == "bulk":
        return generate_file_transfer_trace(
            FileTransferTraceConfig(
                seed=spec.seed,
                cc=spec.cc,
                loss_rate=spec.loss,
                reorder_rate=spec.reorder,
            )
        )
    if spec.workload == "incast":
        return generate_incast_trace(
            IncastTraceConfig(
                seed=spec.seed,
                cc=spec.cc,
                loss_rate=spec.loss,
                reorder_rate=spec.reorder,
            )
        )
    if spec.workload == "video":
        return generate_video_trace(
            VideoTraceConfig(
                seed=spec.seed,
                cc=spec.cc,
                loss_rate=spec.loss,
                reorder_rate=spec.reorder,
            )
        )
    raise ValueError(f"unknown workload {spec.workload!r}")


@dataclass
class CellResult:
    """One completed matrix cell."""

    spec: ScenarioSpec
    packets: int
    connections: int
    completed: int
    retransmissions: int
    timeouts: int
    accuracy: PairedAccuracy
    wall_seconds: float

    def to_dict(self) -> Dict:
        return {
            "scenario": self.spec.to_dict(),
            "trace": {
                "packets": self.packets,
                "connections": self.connections,
                "completed": self.completed,
                "retransmissions": self.retransmissions,
                "timeouts": self.timeouts,
            },
            "accuracy": self.accuracy.to_dict(),
            "wall_seconds": self.wall_seconds,
        }


def run_cell(spec: ScenarioSpec) -> CellResult:
    """Generate, monitor, and score one matrix cell."""
    started = time.perf_counter()
    trace = build_trace(spec)
    leg_filter = make_leg_filter(trace.internal.is_internal)
    engine = MonitorEngine()
    engine.add_monitor(
        create("dart", MonitorOptions(config=ideal_config(),
                                      leg_filter=leg_filter)),
        name="dart",
    )
    engine.add_monitor(
        create("tcptrace", MonitorOptions(leg_filter=leg_filter,
                                          track_handshake=True)),
        name="tcptrace",
    )
    engine.run(trace.records)
    accuracy = compare_samples(
        engine["dart"].monitor.samples,
        engine["tcptrace"].monitor.samples,
    )
    return CellResult(
        spec=spec,
        packets=trace.packets,
        connections=trace.connections,
        completed=trace.completed,
        retransmissions=trace.retransmissions,
        timeouts=trace.timeouts,
        accuracy=accuracy,
        wall_seconds=time.perf_counter() - started,
    )


def run_matrix(
    specs: Iterable[ScenarioSpec],
    *,
    progress: Optional[Callable[[ScenarioSpec, CellResult], None]] = None,
) -> List[CellResult]:
    """Run every cell in order; cells are independent and deterministic."""
    results = []
    for spec in specs:
        result = run_cell(spec)
        results.append(result)
        if progress is not None:
            progress(spec, result)
    return results
