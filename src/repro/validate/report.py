"""Machine-readable accuracy reports and the CI gate that reads them.

The JSON schema (``dart-accuracy-matrix/1``)::

    {
      "schema": "dart-accuracy-matrix/1",
      "base_seed": 1,
      "cells": [ <CellResult.to_dict()>, ... ],
      "thresholds": { ... },
      "failures": [ "<cell>: <what regressed>", ... ]
    }

Each cell row embeds its full :class:`~repro.validate.scenario.ScenarioSpec`
(including the derived seed), so any row can be re-run in isolation
with ``dart-matrix --workload ... --cc ... --loss ... --reorder ...``.

Thresholds are *pinned regression gates*, not aspirations: they sit
below what the current implementation achieves (with margin for
sketch rounding), so any real regression in sample collection or RTT
fidelity trips them while seed-to-seed noise does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from ..analysis.report import render_table
from .harness import CellResult
from .scenario import ScenarioSpec

SCHEMA = "dart-accuracy-matrix/1"

#: Pinned sample-ratio floors per ``workload/cc`` regime, measured
#: 2026-08 over the full matrix at seed 1 and set ~0.08–0.10 below the
#: worst cell of each regime.  The spread is a *finding*, not noise:
#: a loss-blind paced BBR sender keeps retransmitting at line rate, so
#: under loss most of Dart's measurement ranges are invalidated by
#: ambiguity (worst observed cell: video/bbr at 5% loss, ratio 0.18),
#: while ACK-clocked Reno/Cubic on bulk flows stay above 0.80.
DEFAULT_FLOORS: Mapping[str, float] = {
    "bulk/reno": 0.70,      # worst observed 0.798
    "bulk/cubic": 0.75,     # worst observed 0.841
    "bulk/bbr": 0.18,       # worst observed 0.264
    "incast/reno": 0.55,    # worst observed 0.649
    "incast/cubic": 0.58,   # worst observed 0.666
    "incast/bbr": 0.50,     # worst observed 0.597
    "video/reno": 0.30,     # worst observed 0.393
    "video/cubic": 0.40,    # worst observed 0.474
    "video/bbr": 0.12,      # worst observed 0.182
}


@dataclass(frozen=True)
class Thresholds:
    """Per-cell regression gates.

    The sample-ratio floor is regime-aware (``cell_floors``, keyed by
    ``workload/cc``): what counts as healthy collection differs by an
    order of magnitude between a clean bulk Reno flow and a lossy BBR
    video call.  The paired-error gate is global: whenever Dart and the
    oracle sample the same byte they currently agree *exactly* (both
    subtract the same two packet timestamps), so any nonzero p95 is an
    algorithmic divergence.
    """

    #: ``workload/cc`` -> minimum dart/oracle sample-count ratio (also
    #: applied to the paired fraction).
    cell_floors: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_FLOORS)
    )
    #: Floor for regimes absent from ``cell_floors``.
    default_min_ratio: float = 0.10
    #: A blowup past this multiple means Dart is emitting junk matches
    #: the oracle refuses.
    max_sample_ratio: float = 1.5
    #: p95 of the paired relative RTT error, percent.
    max_p95_error_pct: float = 2.0

    def floor_for(self, spec: ScenarioSpec) -> float:
        return self.cell_floors.get(
            f"{spec.workload}/{spec.cc}", self.default_min_ratio
        )

    @classmethod
    def uniform(cls, min_ratio: float, *,
                max_p95_error_pct: float = 2.0) -> "Thresholds":
        """One flat floor for every cell (CLI override)."""
        return cls(cell_floors={}, default_min_ratio=min_ratio,
                   max_p95_error_pct=max_p95_error_pct)

    def to_dict(self) -> Dict:
        return {
            "cell_floors": dict(self.cell_floors),
            "default_min_ratio": self.default_min_ratio,
            "max_sample_ratio": self.max_sample_ratio,
            "max_p95_error_pct": self.max_p95_error_pct,
        }


def check_cell(result: CellResult, thresholds: Thresholds) -> List[str]:
    """The threshold violations of one cell (empty = pass)."""
    acc = result.accuracy
    name = result.spec.name
    failures = []
    if acc.reference_count == 0:
        failures.append(f"{name}: oracle produced no samples")
        return failures
    floor = thresholds.floor_for(result.spec)
    if acc.sample_ratio < floor:
        failures.append(
            f"{name}: sample ratio {acc.sample_ratio:.3f} < {floor}"
        )
    if acc.sample_ratio > thresholds.max_sample_ratio:
        failures.append(
            f"{name}: sample ratio {acc.sample_ratio:.3f} > "
            f"{thresholds.max_sample_ratio}"
        )
    if acc.paired_fraction < floor:
        failures.append(
            f"{name}: paired fraction {acc.paired_fraction:.3f} < {floor}"
        )
    p95 = acc.error_pct.get("p95")
    if p95 is None:
        failures.append(f"{name}: no paired samples to measure error on")
    elif p95 > thresholds.max_p95_error_pct:
        failures.append(
            f"{name}: p95 RTT error {p95:.2f}% > "
            f"{thresholds.max_p95_error_pct}%"
        )
    return failures


def build_report(
    results: Iterable[CellResult],
    *,
    thresholds: Optional[Thresholds] = None,
    base_seed: int = 1,
) -> Dict:
    """Assemble the JSON document (checked against ``thresholds``)."""
    thresholds = thresholds or Thresholds()
    cells = list(results)
    failures: List[str] = []
    for cell in cells:
        failures.extend(check_cell(cell, thresholds))
    return {
        "schema": SCHEMA,
        "base_seed": base_seed,
        "cells": [c.to_dict() for c in cells],
        "thresholds": thresholds.to_dict(),
        "failures": failures,
    }


def render_report(report: Dict) -> str:
    """The report as a fixed-width table (one row per cell)."""
    rows = []
    for cell in report["cells"]:
        spec = cell["scenario"]
        acc = cell["accuracy"]
        rows.append(
            (
                spec["workload"],
                spec["cc"],
                f"{spec['loss'] * 100:g}%",
                f"{spec['reorder'] * 100:g}%",
                cell["trace"]["packets"],
                acc["candidate_count"],
                acc["reference_count"],
                f"{acc['sample_ratio']:.2f}",
                f"{acc['paired_fraction'] * 100:.0f}%",
                f"{acc['error_pct'].get('p50', float('nan')):.2f}",
                f"{acc['error_pct'].get('p95', float('nan')):.2f}",
                f"{acc['error_pct'].get('p99', float('nan')):.2f}",
            )
        )
    table = render_table(
        ("workload", "cc", "loss", "reorder", "pkts", "dart", "oracle",
         "ratio", "paired", "e50%", "e95%", "e99%"),
        rows,
        title="Dart vs tcptrace oracle — accuracy matrix",
    )
    lines = [table]
    if report["failures"]:
        lines.append("")
        lines.append("FAILURES:")
        lines.extend(f"  - {f}" for f in report["failures"])
    else:
        lines.append("")
        lines.append(f"all {len(report['cells'])} cells within thresholds")
    return "\n".join(lines)
