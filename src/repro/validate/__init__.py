"""Scenario-matrix validation: Dart vs the tcptrace oracle.

Sweeps congestion control × loss × reordering × workload
(:mod:`.scenario`), runs each cell's synthetic trace through Dart and
the tcptrace oracle in one engine pass (:mod:`.harness`), and emits a
machine-readable accuracy report with pinned regression thresholds
(:mod:`.report`).  The ``dart-matrix`` console script
(:mod:`repro.cli.matrix`) is the frontend; CI runs the quick matrix on
every PR and the full matrix nightly.
"""

from .harness import CellResult, build_trace, run_cell, run_matrix
from .report import (
    DEFAULT_FLOORS,
    SCHEMA,
    Thresholds,
    build_report,
    check_cell,
    render_report,
)
from .scenario import (
    CC_AXIS,
    FULL_WORKLOADS,
    LOSS_AXIS,
    QUICK_WORKLOADS,
    REORDER_AXIS,
    ScenarioSpec,
    build_matrix,
    filter_matrix,
    quick_matrix,
)

__all__ = [
    "CC_AXIS",
    "CellResult",
    "DEFAULT_FLOORS",
    "FULL_WORKLOADS",
    "LOSS_AXIS",
    "QUICK_WORKLOADS",
    "REORDER_AXIS",
    "SCHEMA",
    "ScenarioSpec",
    "Thresholds",
    "build_matrix",
    "build_report",
    "build_trace",
    "check_cell",
    "filter_matrix",
    "quick_matrix",
    "render_report",
    "run_cell",
    "run_matrix",
]
