"""Scenario matrix: CC × loss × reordering × workload.

One :class:`ScenarioSpec` names a single matrix cell and pins every
degree of freedom, including the RNG seed: the cell's seed is derived
from the base seed and the cell's *name* (CRC-32), so one JSON row is
enough to re-create the cell's packet trace bit-for-bit — adding or
removing other cells never shifts a cell's randomness.
"""

from __future__ import annotations

import zlib
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: The axes of the standard matrix.
CC_AXIS: Tuple[str, ...] = ("reno", "cubic", "bbr")
LOSS_AXIS: Tuple[float, ...] = (0.0, 0.01, 0.05)
REORDER_AXIS: Tuple[float, ...] = (0.0, 0.02)
#: Workloads (see :mod:`repro.traces.datacenter`): the quick matrix runs
#: only ``bulk``; the full matrix sweeps all of them.
QUICK_WORKLOADS: Tuple[str, ...] = ("bulk",)
FULL_WORKLOADS: Tuple[str, ...] = ("bulk", "incast", "video")


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of the validation matrix."""

    workload: str
    cc: str
    loss: float
    reorder: float
    base_seed: int = 1

    @property
    def name(self) -> str:
        """Stable human-readable cell id, e.g. ``bulk/reno/loss-1%/reorder-2%``."""
        return (
            f"{self.workload}/{self.cc}"
            f"/loss-{self.loss * 100:g}%"
            f"/reorder-{self.reorder * 100:g}%"
        )

    @property
    def seed(self) -> int:
        """The cell's RNG seed: base seed mixed with the cell name.

        Name-derived, so every cell draws an independent stream and the
        stream survives matrix reshapes (adding an axis value does not
        reseed existing cells).
        """
        return (self.base_seed * 0x9E3779B1 + zlib.crc32(self.name.encode())) & 0x7FFFFFFF

    def to_dict(self) -> Dict:
        row = asdict(self)
        row["name"] = self.name
        row["seed"] = self.seed
        return row

    @classmethod
    def from_dict(cls, row: Dict) -> "ScenarioSpec":
        spec = cls(
            workload=row["workload"],
            cc=row["cc"],
            loss=row["loss"],
            reorder=row["reorder"],
            base_seed=row.get("base_seed", 1),
        )
        if "seed" in row and row["seed"] != spec.seed:
            raise ValueError(
                f"scenario row {row.get('name', '?')!r} carries seed "
                f"{row['seed']} but derives {spec.seed} — the row was "
                "edited inconsistently"
            )
        return spec


def build_matrix(
    *,
    workloads: Sequence[str] = FULL_WORKLOADS,
    ccs: Sequence[str] = CC_AXIS,
    losses: Sequence[float] = LOSS_AXIS,
    reorders: Sequence[float] = REORDER_AXIS,
    base_seed: int = 1,
) -> List[ScenarioSpec]:
    """Every combination of the given axes, in a stable order."""
    return [
        ScenarioSpec(workload=w, cc=c, loss=l, reorder=r, base_seed=base_seed)
        for w in workloads
        for c in ccs
        for l in losses
        for r in reorders
    ]


def quick_matrix(*, base_seed: int = 1) -> List[ScenarioSpec]:
    """The PR-gate matrix: one workload over the full CC/loss/reorder grid."""
    return build_matrix(workloads=QUICK_WORKLOADS, base_seed=base_seed)


def filter_matrix(
    specs: Iterable[ScenarioSpec],
    *,
    workloads: Optional[Sequence[str]] = None,
    ccs: Optional[Sequence[str]] = None,
    losses: Optional[Sequence[float]] = None,
    reorders: Optional[Sequence[float]] = None,
) -> List[ScenarioSpec]:
    """Keep the cells matching every given axis restriction."""
    out = []
    for spec in specs:
        if workloads is not None and spec.workload not in workloads:
            continue
        if ccs is not None and spec.cc not in ccs:
            continue
        if losses is not None and spec.loss not in losses:
            continue
        if reorders is not None and spec.reorder not in reorders:
            continue
        out.append(spec)
    return out
