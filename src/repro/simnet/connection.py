"""Wiring one TCP connection through the monitored path.

Topology (paper Fig 1)::

    client --[internal leg]--> (monitor tap) --[external leg]--> server
    client <--[internal leg]-- (monitor tap) <--[external leg]-- server

Each direction of each leg is an independent :class:`~repro.simnet.link.Link`,
so loss/reordering/delay can differ per sub-path.  The application model
is request/response: the client sends ``request_bytes``, the server
answers with ``response_bytes`` and closes; the client closes once the
response is complete.  ``complete=False`` models the campus trace's
dominant population of never-established connections (SYNs into the
void; 72.5% of all connections, paper Fig 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .engine import EventLoop
from .link import DelaySpec, Link
from .monitor import MonitorTap
from .rng import SimRandom
from .segment import SimSegment
from .tcp_endpoint import TcpEndpoint, TcpParams

MS = 1_000_000


@dataclass
class LegProfile:
    """One leg's network characteristics (applied to both directions)."""

    delay_ns: DelaySpec = 10 * MS
    jitter_fraction: float = 0.05
    loss_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_extra_ns: Optional[int] = None
    #: Optional FIFO serialization rate; sustained bursts then build
    #: real queueing delay (bufferbloat).  None = infinite capacity.
    bandwidth_bps: Optional[float] = None
    #: Optional finite buffer (max queueing delay before tail drop).
    queue_limit_ns: Optional[int] = None


@dataclass
class ConnectionSpec:
    """Everything needed to instantiate one connection."""

    client_ip: int
    client_port: int
    server_ip: int
    server_port: int
    request_bytes: int = 400
    response_bytes: int = 100_000
    start_ns: int = 0
    internal: LegProfile = field(default_factory=LegProfile)
    external: LegProfile = field(default_factory=LegProfile)
    tcp: TcpParams = field(default_factory=TcpParams)
    complete: bool = True
    client_isn: int = 0x1000
    server_isn: int = 0x2000
    straggler_keepalive_ns: Optional[int] = None
    server_straggler_keepalive_ns: Optional[int] = None
    #: When False, neither side sends FIN after the request/response
    #: exchange — used for long-lived sessions that keep pushing data
    #: (e.g. the interception-attack scenario).
    auto_close: bool = True
    #: Address family of both endpoints (paper §7: Dart extends to IPv6
    #: with a larger flow key compressed to the same 4-byte signature).
    ipv6: bool = False


class Connection:
    """One client/server pair connected through the monitor."""

    def __init__(
        self,
        loop: EventLoop,
        rng: SimRandom,
        tap: MonitorTap,
        spec: ConnectionSpec,
        *,
        on_response_complete: Optional[Callable[["Connection"], None]] = None,
    ) -> None:
        self.loop = loop
        self.spec = spec
        self._on_response_complete = on_response_complete
        self._responded = False

        label = f"{spec.client_ip}:{spec.client_port}>{spec.server_ip}:{spec.server_port}"
        link_rng = rng.fork(f"links:{label}")

        def make_link(profile: LegProfile, name: str) -> Link:
            return Link(
                loop,
                link_rng,
                delay_ns=profile.delay_ns,
                jitter_fraction=profile.jitter_fraction,
                loss_rate=profile.loss_rate,
                reorder_rate=profile.reorder_rate,
                reorder_extra_ns=profile.reorder_extra_ns,
                bandwidth_bps=profile.bandwidth_bps,
                queue_limit_ns=profile.queue_limit_ns,
                name=name,
            )

        self.link_c2m = make_link(spec.internal, "client->monitor")
        self.link_m2s = make_link(spec.external, "monitor->server")
        self.link_s2m = make_link(spec.external, "server->monitor")
        self.link_m2c = make_link(spec.internal, "monitor->client")

        self.client = TcpEndpoint(
            loop,
            rng.fork(f"client:{label}"),
            local_ip=spec.client_ip,
            local_port=spec.client_port,
            remote_ip=spec.server_ip,
            remote_port=spec.server_port,
            isn=spec.client_isn,
            params=spec.tcp,
            role="client",
            ipv6=spec.ipv6,
            on_established=self._client_established,
            on_app_bytes=self._client_received,
            straggler_keepalive_ns=spec.straggler_keepalive_ns,
            expected_app_bytes=spec.response_bytes,
        )

        if spec.complete:
            self.server: Optional[TcpEndpoint] = TcpEndpoint(
                loop,
                rng.fork(f"server:{label}"),
                local_ip=spec.server_ip,
                local_port=spec.server_port,
                remote_ip=spec.client_ip,
                remote_port=spec.client_port,
                isn=spec.server_isn,
                params=spec.tcp,
                role="server",
                ipv6=spec.ipv6,
                on_app_bytes=self._server_received,
                straggler_keepalive_ns=spec.server_straggler_keepalive_ns,
                expected_app_bytes=spec.request_bytes,
            )
        else:
            self.server = None

        # Wire the monitored path.
        self.link_c2m.connect(tap.tap_and_forward(self.link_m2s))
        if self.server is not None:
            self.link_m2s.connect(self.server.receive)
        else:
            self.link_m2s.connect(self._blackhole)
        self.link_s2m.connect(tap.tap_and_forward(self.link_m2c))
        self.link_m2c.connect(self.client.receive)

        self.client.connect_pipe(self.link_c2m, bypass=self._client_bypass)
        if self.server is not None:
            self.server.connect_pipe(self.link_s2m, bypass=self._server_bypass)

    # -- unmonitored bypass (asymmetric routing for stragglers) -------------

    def _client_bypass(self, segment: SimSegment) -> None:
        if self.server is None:
            return
        delay = self.link_c2m.base_delay_ns() + self.link_m2s.base_delay_ns()
        self.loop.schedule(delay, self.server.receive, segment)

    def _server_bypass(self, segment: SimSegment) -> None:
        delay = self.link_s2m.base_delay_ns() + self.link_m2c.base_delay_ns()
        self.loop.schedule(delay, self.client.receive, segment)

    @staticmethod
    def _blackhole(segment: SimSegment) -> None:
        return

    # -- application behaviour ------------------------------------------------

    def start(self) -> None:
        """Schedule the connection's first packet."""
        self.loop.schedule_at(self.spec.start_ns, self.client.open)

    def _client_established(self) -> None:
        self.client.send_app_data(self.spec.request_bytes)

    def _server_received(self, delivered: int) -> None:
        if self._responded or self.server is None:
            return
        if delivered >= self.spec.request_bytes:
            self._responded = True
            self.server.send_app_data(self.spec.response_bytes)
            if self.spec.auto_close:
                self.server.close_when_done()

    def _client_received(self, delivered: int) -> None:
        if delivered >= self.spec.response_bytes and self._responded:
            if self.spec.auto_close and self.client.state == "ESTABLISHED":
                self.client.close_when_done()
            if self._on_response_complete is not None:
                callback, self._on_response_complete = (
                    self._on_response_complete,
                    None,
                )
                callback(self)
