"""The monitoring vantage point.

The tap sits on the path between the campus side and the Internet side
(paper Fig 1), sees both directions of every connection routed through
it, and produces the timestamped packet stream all monitors consume.
It can retain the trace (for offline replay into Dart/tcptrace) and/or
forward each observation to live consumers (for the real-time attack-
detection example, where Dart processes packets as the simulation runs).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..net.inet import prefix_of
from ..net.packet import PacketRecord
from .engine import EventLoop
from .segment import SimSegment

LiveConsumer = Callable[[PacketRecord], None]


class MonitorTap:
    """Observes segments passing a point on the path."""

    def __init__(
        self,
        loop: EventLoop,
        *,
        keep_trace: bool = True,
        consumers: Optional[Sequence[LiveConsumer]] = None,
    ) -> None:
        self._loop = loop
        self._keep_trace = keep_trace
        self._consumers: List[LiveConsumer] = list(consumers or [])
        self.trace: List[PacketRecord] = []
        self.observed = 0

    def attach(self, consumer: LiveConsumer) -> None:
        """Add a live consumer (e.g. ``dart.process``)."""
        self._consumers.append(consumer)

    def observe(self, segment: SimSegment) -> None:
        """Record one passing segment at the current virtual time."""
        record = segment.to_record(self._loop.now_ns)
        self.observed += 1
        if self._keep_trace:
            self.trace.append(record)
        for consumer in self._consumers:
            consumer(record)

    def tap_and_forward(self, next_hop) -> Callable[[SimSegment], None]:
        """A link handler that observes, then forwards to ``next_hop``.

        ``next_hop`` may be a Link (forwarded via ``send``) or any
        callable taking a segment.
        """
        forward = next_hop.send if hasattr(next_hop, "send") else next_hop

        def handler(segment: SimSegment) -> None:
            self.observe(segment)
            forward(segment)

        return handler


class InternalNetwork:
    """Membership test for the campus ("internal") side of the monitor.

    Used both to label legs (internal vs external) and by trace tooling
    to group clients into subnets (e.g. wired vs wireless, Fig 6).
    Prefixes are ``(network, length)`` for IPv4 or
    ``(network, length, 128)`` for IPv6; addresses above 2**32 are
    matched against the IPv6 set.
    """

    def __init__(self, prefixes: Sequence[tuple]) -> None:
        self._v4 = []
        self._v6 = []
        for prefix in prefixes:
            if len(prefix) == 3 and prefix[2] == 128:
                network, length, bits = prefix
                self._v6.append(
                    (prefix_of(network, length, bits=128), length)
                )
            else:
                network, length = prefix[0], prefix[1]
                self._v4.append((prefix_of(network, length), length))

    def __contains__(self, addr: int) -> bool:
        if addr >= (1 << 32):
            return any(
                prefix_of(addr, length, bits=128) == network
                for network, length in self._v6
            )
        return any(
            prefix_of(addr, length) == network
            for network, length in self._v4
        )

    def is_internal(self, addr: int) -> bool:
        return addr in self
