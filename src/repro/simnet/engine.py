"""Deterministic discrete-event simulation engine.

A minimal event loop with integer-nanosecond virtual time.  Events that
share a timestamp fire in scheduling order (a monotonic tiebreaker keeps
the heap deterministic), so a seeded simulation is exactly reproducible —
a property every test and benchmark in this repository depends on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on invalid scheduling (e.g. events in the past)."""


class EventLoop:
    """The virtual clock and event queue."""

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple]] = []
        self._counter = 0
        self._now_ns = 0
        self.events_processed = 0

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    def schedule_at(self, when_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute virtual time ``when_ns``."""
        if when_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule event at {when_ns} (now={self._now_ns})"
            )
        heapq.heappush(self._queue, (when_ns, self._counter, fn, args))
        self._counter += 1

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        self.schedule_at(self._now_ns + delay_ns, fn, *args)

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains (or a limit is hit).

        Returns the number of events processed by this call.  With
        ``until_ns`` set, events scheduled later than that remain queued
        and the clock stops at ``until_ns``.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            when_ns, _, fn, args = self._queue[0]
            if until_ns is not None and when_ns > until_ns:
                self._now_ns = until_ns
                break
            heapq.heappop(self._queue)
            self._now_ns = when_ns
            fn(*args)
            processed += 1
        self.events_processed += processed
        return processed

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._queue)
