"""The in-flight packet representation used inside the simulator.

Endpoints exchange mutable :class:`SimSegment` objects; the monitor tap
converts them into immutable :class:`~repro.net.packet.PacketRecord`
observations stamped with the virtual clock.  Keeping the two types
separate means a segment can traverse several links (accumulating no
state) while each monitoring point gets its own timestamped record.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net import tcp as tcp_flags
from ..net.packet import PacketRecord


@dataclass(slots=True)
class SimSegment:
    """One TCP segment in flight inside the simulated network."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload_len: int
    ipv6: bool = False

    @property
    def syn(self) -> bool:
        return bool(self.flags & tcp_flags.FLAG_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & tcp_flags.FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & tcp_flags.FLAG_RST)

    def to_record(self, timestamp_ns: int) -> PacketRecord:
        """Materialize a monitoring observation of this segment."""
        return PacketRecord(
            timestamp_ns=timestamp_ns,
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.seq,
            ack=self.ack,
            flags=self.flags,
            payload_len=self.payload_len,
            ipv6=self.ipv6,
        )
