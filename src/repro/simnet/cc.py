"""Pluggable congestion control for the simulated TCP sender.

The paper's accuracy claims must hold under *real* TCP dynamics, and
different congestion controllers stress a passive monitor differently:

* **Reno** (RFC 5681) — ACK-clocked slow start and AIMD congestion
  avoidance; bursts a full window per RTT, so loss arrives in clumps
  and fast retransmits collapse Dart's measurement range.
* **Cubic** (RFC 9438) — window growth is a cubic function of the time
  since the last loss, concave while recovering toward the previous
  maximum and convex beyond it; produces the sawtooth-and-plateau
  pacing of today's default Linux sender.
* **BBR-style pacing** — a model-based sender that paces at an
  estimated bottleneck bandwidth instead of filling a window; packets
  arrive evenly spaced, duplicate ACKs are rarer, and loss is largely
  ignored by the controller, so ambiguity comes from queueing rather
  than retransmission storms.

Every controller implements the same small surface the endpoint calls
into (:class:`CongestionControl`): event hooks (``on_ack`` /
``on_dupack`` / ``on_fast_retransmit`` / ``on_retransmit_timeout`` /
``on_send``) and outputs (``cwnd_segments``, ``ssthresh_segments``,
``pacing_gap_ns``).  Units: windows are in *segments* (the endpoint
multiplies by MSS), rates in bits per second, time in integer
nanoseconds of virtual clock.

Controllers are deterministic: the same event sequence produces the
same windows, which keeps whole-trace reproducibility (a scenario seed
pins every packet).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

SEC = 1_000_000_000


@runtime_checkable
class CongestionControl(Protocol):
    """What the endpoint needs from a congestion controller."""

    name: str

    def on_ack(self, *, acked_bytes: int, rtt_ns: Optional[int],
               now_ns: int, in_flight_bytes: int) -> None:
        """An ACK advanced ``snd_una`` by ``acked_bytes``.

        ``rtt_ns`` carries a Karn-valid RTT measurement when the ACK
        completed the endpoint's timing probe, else ``None``.
        """
        ...

    def on_dupack(self, now_ns: int) -> None:
        """A duplicate ACK arrived (below the fast-retransmit threshold)."""
        ...

    def on_fast_retransmit(self, now_ns: int) -> None:
        """Three duplicate ACKs: the endpoint is fast-retransmitting."""
        ...

    def on_retransmit_timeout(self, now_ns: int) -> None:
        """The RTO fired: the endpoint is retransmitting from snd_una."""
        ...

    def on_send(self, payload_bytes: int, now_ns: int) -> None:
        """New data left the endpoint (not retransmissions)."""
        ...

    @property
    def cwnd_segments(self) -> int:
        """Current congestion window, in segments (always >= 1)."""
        ...

    @property
    def ssthresh_segments(self) -> int:
        """Current slow-start threshold, in segments."""
        ...

    def pacing_gap_ns(self, mss: int) -> Optional[int]:
        """Inter-segment pacing gap, or ``None`` for ACK-clocked bursts."""
        ...


class RenoCC:
    """RFC 5681 Reno: slow start, AIMD, window halving on loss.

    Byte-for-byte the behaviour the endpoint had before congestion
    control became pluggable: +1 segment per ACK *event* in slow start,
    +1 per window in congestion avoidance (an ACK counter, not byte
    counting), ``ssthresh = cwnd/2`` and ``cwnd = ssthresh`` on fast
    retransmit, ``cwnd = 1`` on RTO.
    """

    name = "reno"

    def __init__(self, *, init_cwnd: int = 10, init_ssthresh: int = 64,
                 max_cwnd: int = 256) -> None:
        self._cwnd = init_cwnd
        self._ssthresh = init_ssthresh
        self._max_cwnd = max_cwnd
        self._ca_counter = 0

    def on_ack(self, *, acked_bytes: int, rtt_ns: Optional[int],
               now_ns: int, in_flight_bytes: int) -> None:
        if self._cwnd < self._ssthresh:
            self._cwnd += 1
        else:
            self._ca_counter += 1
            if self._ca_counter >= self._cwnd:
                self._ca_counter = 0
                self._cwnd += 1
        self._cwnd = min(self._cwnd, self._max_cwnd)

    def on_dupack(self, now_ns: int) -> None:
        return

    def on_fast_retransmit(self, now_ns: int) -> None:
        self._ssthresh = max(self._cwnd // 2, 2)
        self._cwnd = self._ssthresh

    def on_retransmit_timeout(self, now_ns: int) -> None:
        self._ssthresh = max(self._cwnd // 2, 2)
        self._cwnd = 1

    def on_send(self, payload_bytes: int, now_ns: int) -> None:
        return

    @property
    def cwnd_segments(self) -> int:
        return max(1, self._cwnd)

    @property
    def ssthresh_segments(self) -> int:
        return self._ssthresh

    def pacing_gap_ns(self, mss: int) -> Optional[int]:
        return None


class CubicCC:
    """RFC 9438 Cubic: time-based cubic window growth.

    After a loss at window ``W_max`` the window is cut to
    ``beta * W_max`` and then follows ``W(t) = C*(t-K)^3 + W_max``
    where ``K = cbrt((W_max - cwnd)/C)`` — concave (fast, flattening)
    while recovering toward ``W_max``, convex (slow, accelerating)
    beyond it.  Growth is applied per ACK as ``(target - cwnd)/cwnd``,
    the standard discretization.  Slow start below ``ssthresh`` is
    unchanged from Reno.
    """

    name = "cubic"

    #: RFC 9438 constants: aggressiveness and multiplicative decrease.
    C = 0.4
    BETA = 0.7

    def __init__(self, *, init_cwnd: int = 10, init_ssthresh: int = 64,
                 max_cwnd: int = 256) -> None:
        self._cwnd = float(init_cwnd)
        self._ssthresh = init_ssthresh
        self._max_cwnd = max_cwnd
        self._w_max = 0.0
        self._epoch_start_ns: Optional[int] = None
        self._k_seconds = 0.0

    # -- the cubic function (exposed for the convex/concave invariants) ------

    def window_at(self, elapsed_seconds: float) -> float:
        """``W(t)`` for the current epoch (segments)."""
        return (self.C * (elapsed_seconds - self._k_seconds) ** 3
                + self._w_max)

    def _start_epoch(self, now_ns: int) -> None:
        self._epoch_start_ns = now_ns
        if self._w_max > self._cwnd:
            self._k_seconds = ((self._w_max - self._cwnd) / self.C) ** (1 / 3)
        else:
            # No prior loss to recover toward: pure convex probing from
            # the current window.
            self._w_max = self._cwnd
            self._k_seconds = 0.0

    def on_ack(self, *, acked_bytes: int, rtt_ns: Optional[int],
               now_ns: int, in_flight_bytes: int) -> None:
        if self._cwnd < self._ssthresh:
            self._cwnd += 1.0
        else:
            if self._epoch_start_ns is None:
                self._start_epoch(now_ns)
            t = (now_ns - self._epoch_start_ns) / SEC
            target = self.window_at(t)
            if target > self._cwnd:
                self._cwnd += (target - self._cwnd) / self._cwnd
            else:
                # Below target (e.g. the epoch just started): creep so
                # the window is never frozen.
                self._cwnd += 0.01 / self._cwnd
        self._cwnd = min(self._cwnd, float(self._max_cwnd))

    def on_dupack(self, now_ns: int) -> None:
        return

    def _on_loss(self, now_ns: int) -> None:
        if self._cwnd < self._w_max:
            # Fast convergence (RFC 9438 §4.6): a second loss before
            # reaching the old maximum means a new competitor; release
            # more of the bottleneck.
            self._w_max = self._cwnd * (1 + self.BETA) / 2
        else:
            self._w_max = self._cwnd
        self._ssthresh = max(2, int(self._cwnd * self.BETA))
        self._epoch_start_ns = None

    def on_fast_retransmit(self, now_ns: int) -> None:
        self._on_loss(now_ns)
        self._cwnd = float(self._ssthresh)

    def on_retransmit_timeout(self, now_ns: int) -> None:
        self._on_loss(now_ns)
        self._cwnd = 1.0

    def on_send(self, payload_bytes: int, now_ns: int) -> None:
        return

    @property
    def cwnd_segments(self) -> int:
        return max(1, int(self._cwnd))

    @property
    def ssthresh_segments(self) -> int:
        return self._ssthresh

    def pacing_gap_ns(self, mss: int) -> Optional[int]:
        return None


class BbrCC:
    """A BBR-style model-based paced sender.

    Tracks a windowed-max delivery-rate estimate (the bottleneck
    bandwidth) and a windowed-min RTT, paces at ``gain * btlbw``, and
    caps in-flight data at ``cwnd_gain`` times the estimated BDP.
    Phases follow BBRv1's shape: STARTUP (gain 2.885 until the rate
    estimate plateaus), DRAIN (inverse gain until in-flight falls to
    the BDP), then PROBE_BW (an eight-phase gain cycle).  Loss does not
    feed the model — the endpoint still retransmits, but the controller
    neither halves nor collapses, which is exactly the adversarial
    property the accuracy matrix cares about: retransmissions keep
    flowing at line rate instead of backing off.

    Simplifications versus a kernel BBR (documented for reviewers):
    delivery rate is measured ACK-to-ACK rather than per-packet
    delivered-time sampling, there is no PROBE_RTT phase (traces are
    seconds long; min-RTT samples never age out), and RTO recovery
    relies on the endpoint's retransmission machinery alone.
    """

    name = "bbr"

    STARTUP_GAIN = 2.885       # 2/ln2: fills the pipe in log2(BDP) RTTs
    DRAIN_GAIN = 1 / 2.885
    CWND_GAIN = 2.0
    CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    BW_WINDOW = 10             # delivery-rate samples kept for the max
    #: Minimum span of one delivery-rate sample.  ACK-to-ACK deltas are
    #: useless here: delayed ACKs and ACK compression produce
    #: back-to-back ACKs whose tiny time deltas read as petabit rates.
    MIN_SAMPLE_NS = 1_000_000

    def __init__(self, *, init_cwnd: int = 10, init_ssthresh: int = 64,
                 max_cwnd: int = 256, mss: int = 1448) -> None:
        self._init_cwnd = init_cwnd
        self._max_cwnd = max_cwnd
        self._mss = mss
        self._mode = "startup"
        self._bw_samples: list = []     # recent (bps) delivery rates
        self._btlbw_bps = 0.0
        self._min_rtt_ns: Optional[int] = None
        self._rate_epoch_ns: Optional[int] = None
        self._rate_acc_bytes = 0
        self._full_bw_bps = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_start_ns = 0

    # -- model ----------------------------------------------------------------

    @property
    def btlbw_bps(self) -> float:
        """Current bottleneck-bandwidth estimate (0 until first sample)."""
        return self._btlbw_bps

    @property
    def min_rtt_ns(self) -> Optional[int]:
        return self._min_rtt_ns

    @property
    def mode(self) -> str:
        return self._mode

    def _bdp_bytes(self) -> Optional[float]:
        if self._btlbw_bps <= 0 or self._min_rtt_ns is None:
            return None
        return self._btlbw_bps / 8 * (self._min_rtt_ns / SEC)

    def pacing_gain(self) -> float:
        if self._mode == "startup":
            return self.STARTUP_GAIN
        if self._mode == "drain":
            return self.DRAIN_GAIN
        return self.CYCLE[self._cycle_index]

    def pacing_rate_bps(self) -> Optional[float]:
        if self._btlbw_bps <= 0:
            return None
        return self.pacing_gain() * self._btlbw_bps

    # -- event hooks ----------------------------------------------------------

    def on_ack(self, *, acked_bytes: int, rtt_ns: Optional[int],
               now_ns: int, in_flight_bytes: int) -> None:
        if rtt_ns is not None and rtt_ns > 0:
            if self._min_rtt_ns is None or rtt_ns < self._min_rtt_ns:
                self._min_rtt_ns = rtt_ns
        # Delivery rate: bytes acknowledged over an interval of at least
        # max(MIN_SAMPLE_NS, min_rtt/2), so a sample always spans many
        # ACKs and reflects the ACK clock, not ACK compression.
        if self._rate_epoch_ns is None:
            self._rate_epoch_ns = now_ns
            self._rate_acc_bytes = 0
            return
        self._rate_acc_bytes += acked_bytes
        interval = now_ns - self._rate_epoch_ns
        span = self.MIN_SAMPLE_NS
        if self._min_rtt_ns is not None:
            span = max(span, self._min_rtt_ns // 2)
        if interval < span:
            return
        rate = self._rate_acc_bytes * 8 * SEC / interval
        self._rate_epoch_ns = now_ns
        self._rate_acc_bytes = 0
        self._bw_samples.append(rate)
        if len(self._bw_samples) > self.BW_WINDOW:
            self._bw_samples.pop(0)
        self._btlbw_bps = max(self._bw_samples)

        if self._mode == "startup":
            # Full pipe: the rate estimate stopped growing >= 25% per
            # sample three times in a row.
            if self._btlbw_bps >= self._full_bw_bps * 1.25:
                self._full_bw_bps = self._btlbw_bps
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3 and self._btlbw_bps > 0:
                    self._mode = "drain"
        elif self._mode == "drain":
            bdp = self._bdp_bytes()
            if bdp is not None and in_flight_bytes <= bdp:
                self._mode = "probe_bw"
                self._cycle_start_ns = now_ns
        elif self._mode == "probe_bw":
            # Advance the gain cycle once per min-RTT.
            if (self._min_rtt_ns is not None
                    and now_ns - self._cycle_start_ns >= self._min_rtt_ns):
                self._cycle_index = (self._cycle_index + 1) % len(self.CYCLE)
                self._cycle_start_ns = now_ns

    def on_dupack(self, now_ns: int) -> None:
        return

    def on_fast_retransmit(self, now_ns: int) -> None:
        return  # loss does not feed the model

    def on_retransmit_timeout(self, now_ns: int) -> None:
        # BBRv1 conservation: restart the rate probe from scratch so a
        # genuinely vanished bottleneck (path change) is re-learned.
        # The in-progress rate sample spans the timeout's idle gap and
        # would only pollute the estimate — discard it.
        self._full_bw_bps = 0.0
        self._full_bw_rounds = 0
        self._rate_epoch_ns = None
        self._rate_acc_bytes = 0
        self._mode = "startup"

    def on_send(self, payload_bytes: int, now_ns: int) -> None:
        return

    # -- outputs ---------------------------------------------------------------

    @property
    def cwnd_segments(self) -> int:
        bdp = self._bdp_bytes()
        if bdp is None:
            return max(1, self._init_cwnd)
        gain = self.STARTUP_GAIN if self._mode == "startup" else self.CWND_GAIN
        cwnd = int(gain * bdp / self._mss)
        return max(4, min(cwnd, self._max_cwnd))

    @property
    def ssthresh_segments(self) -> int:
        return self._max_cwnd  # BBR has no slow-start threshold

    def pacing_gap_ns(self, mss: int) -> Optional[int]:
        rate = self.pacing_rate_bps()
        if rate is None or rate <= 0:
            return None
        return int(mss * 8 * SEC / rate)


#: name -> factory taking the endpoint's TcpParams-shaped knobs.
CC_ALGORITHMS: Dict[str, Callable[..., CongestionControl]] = {
    "reno": RenoCC,
    "cubic": CubicCC,
    "bbr": BbrCC,
}


def available_cc() -> Tuple[str, ...]:
    """Registered congestion-control names, sorted."""
    return tuple(sorted(CC_ALGORITHMS))


def make_cc(name: str, *, init_cwnd: int, init_ssthresh: int,
            max_cwnd: int, mss: int) -> CongestionControl:
    """Instantiate a controller by registry name."""
    try:
        factory = CC_ALGORITHMS[name]
    except KeyError:
        known = ", ".join(available_cc())
        raise ValueError(
            f"unknown congestion control {name!r} (known: {known})"
        ) from None
    if factory is BbrCC:
        return factory(init_cwnd=init_cwnd, init_ssthresh=init_ssthresh,
                       max_cwnd=max_cwnd, mss=mss)
    return factory(init_cwnd=init_cwnd, init_ssthresh=init_ssthresh,
                   max_cwnd=max_cwnd)
