"""Event-driven TCP network simulator.

The substrate that generates realistic monitored packet streams: a
deterministic event loop, lossy/reordering links, TCP endpoints with
delayed/duplicate/cumulative ACKs and retransmission, and the monitor
tap that produces :class:`~repro.net.packet.PacketRecord` streams.
"""

from .connection import Connection, ConnectionSpec, LegProfile
from .engine import EventLoop, SimulationError
from .link import Link, LinkStats
from .monitor import InternalNetwork, MonitorTap
from .rng import SimRandom
from .segment import SimSegment
from .tcp_endpoint import EndpointStats, TcpEndpoint, TcpParams

__all__ = [
    "Connection",
    "ConnectionSpec",
    "EndpointStats",
    "EventLoop",
    "InternalNetwork",
    "LegProfile",
    "Link",
    "LinkStats",
    "MonitorTap",
    "SimRandom",
    "SimSegment",
    "SimulationError",
    "SimulationError",
    "TcpEndpoint",
    "TcpParams",
]
