"""Event-driven TCP network simulator.

The substrate that generates realistic monitored packet streams: a
deterministic event loop, lossy/reordering links, TCP endpoints with
delayed/duplicate/cumulative ACKs and retransmission, and the monitor
tap that produces :class:`~repro.net.packet.PacketRecord` streams.
"""

from .cc import (
    BbrCC,
    CC_ALGORITHMS,
    CongestionControl,
    CubicCC,
    RenoCC,
    available_cc,
    make_cc,
)
from .connection import Connection, ConnectionSpec, LegProfile
from .engine import EventLoop, SimulationError
from .link import Link, LinkStats
from .monitor import InternalNetwork, MonitorTap
from .rng import SimRandom
from .rto import RtoEstimator
from .segment import SimSegment
from .tcp_endpoint import EndpointStats, TcpEndpoint, TcpParams

__all__ = [
    "BbrCC",
    "CC_ALGORITHMS",
    "CongestionControl",
    "Connection",
    "ConnectionSpec",
    "CubicCC",
    "EndpointStats",
    "EventLoop",
    "InternalNetwork",
    "LegProfile",
    "Link",
    "LinkStats",
    "MonitorTap",
    "RenoCC",
    "RtoEstimator",
    "SimRandom",
    "SimSegment",
    "SimulationError",
    "TcpEndpoint",
    "TcpParams",
    "available_cc",
    "make_cc",
]
