"""Simulated TCP endpoints.

One :class:`TcpEndpoint` implements one side of a TCP connection with
the behaviours that matter to passive RTT measurement:

* three-way handshake with SYN retransmission and backoff;
* cumulative and *delayed* ACKs (ack-every-N plus a delayed-ACK timer);
* duplicate ACKs on out-of-order arrivals, cumulative ACKs on hole fill;
* a window-based sender whose slow-start / congestion-avoidance /
  loss-response logic delegates to a pluggable congestion controller
  (:mod:`repro.simnet.cc`: Reno, Cubic, or a BBR-style paced sender),
  with fast retransmit on three duplicate ACKs and RTO retransmission
  with exponential backoff;
* an RFC 6298 SRTT/RTTVAR retransmission-timeout estimator
  (:mod:`repro.simnet.rto`) fed by Karn-valid timing probes, with a
  fixed-RTO escape hatch (``TcpParams.adaptive_rto=False``);
* FIN teardown (FIN consumes one sequence number, like SYN);
* optional *keepalive straggler* behaviour: the final cumulative ACK
  bypasses the monitored path (asymmetric routing) and a duplicate
  keepalive ACK follows seconds later — reproducing the 100-second RTT
  tail the paper observes in the campus trace (§6.1).

Deliberate simplifications (documented for reviewers): no receive-window
flow control (cwnd is the only limit), no SACK-based recovery (SACK loss
recovery would *reduce* the retransmission ambiguity Dart must handle,
so the simulation errs toward more ambiguity), and payload bytes are
never materialized (only lengths travel).  A historical simplification
was the *static* base RTO (``TcpParams.rto_ns`` with no RTT feedback) —
retained behind ``adaptive_rto=False`` for experiments that need the
old behaviour (e.g. reproducing Jain's timeout-divergence pathology by
pinning the RTO below the path RTT), but real stacks adapt, and so does
the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..net import tcp as tcpf
from ..core.seqspace import SEQ_MASK, seq_sub
from .cc import make_cc
from .engine import EventLoop
from .link import Link
from .rng import SimRandom
from .rto import RtoEstimator
from .segment import SimSegment

MS = 1_000_000
SEC = 1_000_000_000


@dataclass
class TcpParams:
    """Endpoint behaviour knobs (one instance may be shared).

    ``rto_ns`` is the *initial* RTO (RFC 6298 §2.1) when
    ``adaptive_rto`` is on; with ``adaptive_rto=False`` it is the fixed
    base timeout the endpoint historically used (backoff still doubles
    it, and progress resets it).
    """

    mss: int = 1448
    init_cwnd: int = 10          # segments
    max_cwnd: int = 256          # segments
    init_ssthresh: int = 64      # segments
    cc: str = "reno"             # congestion control (repro.simnet.cc)
    rto_ns: int = 250 * MS       # initial (or fixed) retransmission timeout
    adaptive_rto: bool = True    # RFC 6298 estimator; False = fixed rto_ns
    rto_min_ns: int = 200 * MS
    rto_max_ns: int = 60 * SEC
    syn_rto_ns: int = 1 * SEC
    syn_retries: int = 3
    ack_every: int = 2           # cumulative-ACK frequency
    delayed_ack_ns: int = 40 * MS
    dupack_threshold: int = 3
    segment_gap_ns: int = 2_000  # serialization gap when bursting


@dataclass
class EndpointStats:
    segments_sent: int = 0
    data_segments_sent: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    partial_ack_retransmits: int = 0
    acks_sent: int = 0
    dup_acks_sent: int = 0
    delayed_acks_fired: int = 0
    bytes_received: int = 0
    keepalive_acks_sent: int = 0
    rtt_samples: int = 0


class TcpEndpoint:
    """One side of a simulated TCP connection."""

    def __init__(
        self,
        loop: EventLoop,
        rng: SimRandom,
        *,
        local_ip: int,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        isn: int,
        params: Optional[TcpParams] = None,
        role: str = "client",
        ipv6: bool = False,
        on_established: Optional[Callable[[], None]] = None,
        on_app_bytes: Optional[Callable[[int], None]] = None,
        on_send_complete: Optional[Callable[[], None]] = None,
        straggler_keepalive_ns: Optional[int] = None,
        expected_app_bytes: Optional[int] = None,
    ) -> None:
        self._loop = loop
        self._rng = rng
        self.params = params or TcpParams()
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.isn = isn & SEQ_MASK
        self.role = role
        self.ipv6 = ipv6
        self.stats = EndpointStats()

        self._pipe: Optional[Link] = None
        self._bypass: Optional[Callable[[SimSegment], None]] = None

        # Connection state machine.
        self.state = "CLOSED" if role == "client" else "LISTEN"
        self._on_established = on_established
        self._on_app_bytes = on_app_bytes
        self._on_send_complete = on_send_complete

        # Send side (relative byte offsets; 0 is the first app byte).
        self._snd_una = 0
        self._snd_nxt = 0
        self._app_bytes = 0
        self._fin_queued = False
        self._fin_sent = False
        self._send_done_signalled = False
        self._cc = make_cc(
            self.params.cc,
            init_cwnd=self.params.init_cwnd,
            init_ssthresh=self.params.init_ssthresh,
            max_cwnd=self.params.max_cwnd,
            mss=self.params.mss,
        )
        self._rto_est: Optional[RtoEstimator] = None
        if self.params.adaptive_rto:
            self._rto_est = RtoEstimator(
                initial_ns=self.params.rto_ns,
                min_ns=self.params.rto_min_ns,
                max_ns=self.params.rto_max_ns,
            )
            self._rto_ns = self._rto_est.rto_ns
        else:
            self._rto_ns = self.params.rto_ns
        self._dup_acks = 0
        #: Karn timing probe: ``(rel_end, sent_ns)`` for one in-flight
        #: segment that has never been retransmitted, or None.
        self._rtt_probe: Optional[Tuple[int, int]] = None
        # NewReno-style recovery: high-water mark at the last loss
        # event; partial ACKs below it retransmit the next hole at once
        # instead of waiting out one (backed-off) RTO per hole.
        self._recover_point = 0
        self._timer_gen = 0
        self._syn_attempts = 0
        self._next_send_ns = 0  # pacing cursor: keeps bursts in seq order

        # Receive side.
        self._peer_isn: Optional[int] = None
        self._rcv_nxt = 0            # relative to peer_isn + 1
        self._ooo: List[Tuple[int, int]] = []   # sorted disjoint intervals
        self._pending_ack_segments = 0
        self._delack_gen = 0
        self._peer_fin_rel: Optional[int] = None

        # Keepalive-straggler behaviour.
        self._straggler_keepalive_ns = straggler_keepalive_ns
        self._expected_app_bytes = expected_app_bytes
        self._straggler_done = False

    # -- wiring ---------------------------------------------------------------

    def connect_pipe(self, pipe: Link,
                     bypass: Optional[Callable[[SimSegment], None]] = None) -> None:
        """Attach the outgoing link (and optional unmonitored bypass)."""
        self._pipe = pipe
        self._bypass = bypass

    # -- public API -------------------------------------------------------------

    def open(self) -> None:
        """Client: start the three-way handshake."""
        if self.role != "client":
            raise RuntimeError("only clients open connections")
        self.state = "SYN_SENT"
        self._send_syn()

    def send_app_data(self, nbytes: int) -> None:
        """Queue application bytes (sent once ESTABLISHED)."""
        if nbytes < 0:
            raise ValueError("cannot send negative bytes")
        self._app_bytes += nbytes
        if self.state == "ESTABLISHED":
            self._pump()

    def close_when_done(self) -> None:
        """Send FIN after all queued app data is transmitted."""
        self._fin_queued = True
        if self.state == "ESTABLISHED":
            self._pump()

    @property
    def established(self) -> bool:
        return self.state == "ESTABLISHED" or self.state == "CLOSING"

    @property
    def bytes_unacked(self) -> int:
        return self._snd_nxt - self._snd_una

    @property
    def congestion_control(self):
        """The live congestion controller (for inspection and tests)."""
        return self._cc

    @property
    def cwnd(self) -> int:
        """Current congestion window, in segments."""
        return self._cc.cwnd_segments

    @property
    def ssthresh(self) -> int:
        """Current slow-start threshold, in segments."""
        return self._cc.ssthresh_segments

    @property
    def srtt_ns(self) -> Optional[int]:
        """Smoothed RTT (None until the first Karn-valid measurement)."""
        return self._rto_est.srtt_ns if self._rto_est is not None else None

    @property
    def rto_ns(self) -> int:
        """The current retransmission timeout."""
        return self._rto_ns

    # -- sequence mapping ---------------------------------------------------------

    def _abs_seq(self, rel: int) -> int:
        return (self.isn + 1 + rel) & SEQ_MASK

    def _rel_of_ack(self, ack_abs: int) -> int:
        return seq_sub(ack_abs, (self.isn + 1) & SEQ_MASK)

    def _current_ack_abs(self) -> int:
        # _rcv_nxt already includes the peer FIN's virtual byte (it is
        # absorbed through the same interval machinery as payload).
        if self._peer_isn is None:
            return 0
        return (self._peer_isn + 1 + self._rcv_nxt) & SEQ_MASK

    @property
    def app_bytes_delivered(self) -> int:
        """Cumulative in-order application bytes received (FIN excluded)."""
        delivered = self._rcv_nxt
        if self._peer_fin_rel is not None and self._rcv_nxt > self._peer_fin_rel:
            delivered -= 1
        return delivered

    # -- segment construction ------------------------------------------------------

    def _emit(self, segment: SimSegment, *, via_bypass: bool = False) -> None:
        if via_bypass and self._bypass is not None:
            self._bypass(segment)
            return
        if self._pipe is None:
            raise RuntimeError("endpoint has no outgoing pipe")
        self.stats.segments_sent += 1
        self._pipe.send(segment)

    def _make_segment(
        self, *, seq: int, ack: int, flags: int, payload_len: int = 0
    ) -> SimSegment:
        return SimSegment(
            src_ip=self.local_ip,
            dst_ip=self.remote_ip,
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload_len=payload_len,
            ipv6=self.ipv6,
        )

    # -- handshake -------------------------------------------------------------------

    def _send_syn(self) -> None:
        self._syn_attempts += 1
        self._emit(self._make_segment(seq=self.isn, ack=0, flags=tcpf.FLAG_SYN))
        gen = self._bump_timer()
        backoff = self.params.syn_rto_ns * (1 << (self._syn_attempts - 1))
        self._loop.schedule(backoff, self._syn_timeout, gen)

    def _syn_timeout(self, gen: int) -> None:
        if gen != self._timer_gen or self.state != "SYN_SENT":
            return
        if self._syn_attempts > self.params.syn_retries:
            self.state = "FAILED"
            return
        self.stats.retransmissions += 1
        self._send_syn()

    def _send_syn_ack(self) -> None:
        self._emit(
            self._make_segment(
                seq=self.isn,
                ack=self._current_ack_abs(),
                flags=tcpf.FLAG_SYN | tcpf.FLAG_ACK,
            )
        )
        gen = self._bump_timer()
        self._loop.schedule(self.params.syn_rto_ns, self._syn_ack_timeout, gen)

    def _syn_ack_timeout(self, gen: int) -> None:
        if gen != self._timer_gen or self.state != "SYN_RCVD":
            return
        self.stats.retransmissions += 1
        self._send_syn_ack()

    # -- receive path ----------------------------------------------------------------

    def receive(self, segment: SimSegment) -> None:
        """Entry point for segments delivered by the network."""
        if segment.syn and not segment.flags & tcpf.FLAG_ACK:
            self._handle_syn(segment)
            return
        if segment.syn and segment.flags & tcpf.FLAG_ACK:
            self._handle_syn_ack(segment)
            return
        if self.state in ("CLOSED", "LISTEN", "FAILED", "SYN_SENT"):
            return
        if self.state == "SYN_RCVD":
            # The handshake-completing ACK.
            self.state = "ESTABLISHED"
            self._bump_timer()
            if self._on_established is not None:
                self._on_established()
        consumed = segment.payload_len + (1 if segment.fin else 0)
        if consumed > 0:
            self._handle_data(segment, consumed)
        if segment.flags & tcpf.FLAG_ACK:
            # RFC 5681: only a segment with no payload counts as a
            # *duplicate* ACK (data packets repeat the cumulative ACK as
            # a matter of course while traffic flows both ways).
            self._handle_ack(segment.ack, pure=consumed == 0)

    def _handle_syn(self, segment: SimSegment) -> None:
        if self.role != "server" or self.state not in ("LISTEN", "SYN_RCVD"):
            return
        self._peer_isn = segment.seq
        self.state = "SYN_RCVD"
        self._send_syn_ack()

    def _handle_syn_ack(self, segment: SimSegment) -> None:
        if self.role != "client" or self.state != "SYN_SENT":
            # A retransmitted SYN-ACK after establishment: re-ACK it.
            if self.role == "client" and self.state == "ESTABLISHED":
                self._send_pure_ack()
            return
        self._peer_isn = segment.seq
        self.state = "ESTABLISHED"
        self._bump_timer()
        self._send_pure_ack()
        if self._on_established is not None:
            self._on_established()
        self._pump()

    # -- data receive ------------------------------------------------------------------

    def _handle_data(self, segment: SimSegment, consumed: int) -> None:
        if self._peer_isn is None:
            return
        rel = seq_sub(segment.seq, (self._peer_isn + 1) & SEQ_MASK)
        if segment.fin:
            self._peer_fin_rel = rel + segment.payload_len
        start, end = rel, rel + consumed
        if end <= self._rcv_nxt:
            # Entirely old data (a retransmission we already have):
            # immediately re-ACK so the sender can move on.
            self._send_pure_ack(dup=True)
            return
        if start > self._rcv_nxt:
            # Out of order: buffer and emit a duplicate ACK.
            self._insert_ooo(start, end)
            self._send_pure_ack(dup=True)
            return
        # In-order (possibly overlapping) data: advance and absorb.
        advanced = end - self._rcv_nxt
        self._rcv_nxt = end
        filled_hole = self._absorb_ooo()
        self.stats.bytes_received += advanced
        self._pending_ack_segments += 1
        if self._on_app_bytes is not None:
            # The application may respond with data of its own, which
            # piggybacks the ACK (clearing the pending-ACK state), so no
            # redundant pure ACK follows — real stacks piggyback.
            self._on_app_bytes(self.app_bytes_delivered)
        if self._pending_ack_segments == 0:
            return  # acknowledged by piggyback
        if filled_hole or segment.fin:
            self._flush_ack()
            return
        if self._pending_ack_segments >= self.params.ack_every:
            self._flush_ack()
        else:
            self._arm_delayed_ack()

    def _insert_ooo(self, start: int, end: int) -> None:
        intervals = self._ooo + [(start, end)]
        intervals.sort()
        merged: List[Tuple[int, int]] = []
        for s, e in intervals:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self._ooo = merged

    def _absorb_ooo(self) -> bool:
        """Consume buffered intervals now contiguous; True if any were."""
        absorbed = False
        while self._ooo and self._ooo[0][0] <= self._rcv_nxt:
            start, end = self._ooo.pop(0)
            if end > self._rcv_nxt:
                self._rcv_nxt = end
                absorbed = True
        return absorbed

    # -- ACK transmission -----------------------------------------------------------------

    def _ack_covers_everything(self) -> bool:
        if self._expected_app_bytes is None:
            return False
        covered = self._rcv_nxt
        if self._peer_fin_rel is not None and self._rcv_nxt > self._peer_fin_rel:
            covered -= 1  # don't count the FIN's virtual byte
        return covered >= self._expected_app_bytes

    def _send_pure_ack(self, *, dup: bool = False, keepalive: bool = False) -> None:
        if self._peer_isn is None:
            return
        if (
            self._straggler_keepalive_ns is not None
            and not self._straggler_done
            and not keepalive
            and self._ack_covers_everything()
        ):
            # Straggler: the real final ACK takes an unmonitored path; a
            # duplicate keepalive ACK follows much later on the monitored
            # one (reproduces the paper's 100-second RTT tail).  Pending
            # delayed-ACK state is cleared so no later timer re-sends the
            # final ACK on the monitored path.
            self._straggler_done = True
            self._pending_ack_segments = 0
            self._delack_gen += 1
            segment = self._make_segment(
                seq=self._abs_seq(self._snd_nxt),
                ack=self._current_ack_abs(),
                flags=tcpf.FLAG_ACK,
            )
            self._emit(segment, via_bypass=True)
            self._loop.schedule(
                self._straggler_keepalive_ns, self._send_keepalive_ack
            )
            return
        flags = tcpf.FLAG_ACK
        self.stats.acks_sent += 1
        if dup:
            self.stats.dup_acks_sent += 1
        self._pending_ack_segments = 0
        self._delack_gen += 1
        self._emit(
            self._make_segment(
                seq=self._abs_seq(self._snd_nxt),
                ack=self._current_ack_abs(),
                flags=flags,
            )
        )

    def _send_keepalive_ack(self) -> None:
        self.stats.keepalive_acks_sent += 1
        self._send_pure_ack(keepalive=True)

    def _flush_ack(self) -> None:
        self._send_pure_ack()

    def _arm_delayed_ack(self) -> None:
        self._delack_gen += 1
        gen = self._delack_gen
        self._loop.schedule(self.params.delayed_ack_ns, self._delayed_ack_fire, gen)

    def _delayed_ack_fire(self, gen: int) -> None:
        if gen != self._delack_gen or self._pending_ack_segments == 0:
            return
        self.stats.delayed_acks_fired += 1
        self._flush_ack()

    # -- ACK receive / sender logic -----------------------------------------------------------

    def _total_send_len(self) -> int:
        return self._app_bytes + (1 if self._fin_queued else 0)

    def _handle_ack(self, ack_abs: int, *, pure: bool = True) -> None:
        rel = self._rel_of_ack(ack_abs)
        if rel > self._total_send_len():
            return  # not an ACK for anything we sent (e.g. weird overlap)
        if rel > self._snd_una:
            now = self._loop.now_ns
            acked = rel - self._snd_una
            self._snd_una = rel
            self._dup_acks = 0
            rtt_ns: Optional[int] = None
            if self._rtt_probe is not None and rel >= self._rtt_probe[0]:
                # The probe segment (never retransmitted — Karn) is now
                # cumulatively acknowledged: one valid RTT measurement.
                rtt_ns = now - self._rtt_probe[1]
                self._rtt_probe = None
                self.stats.rtt_samples += 1
                if self._rto_est is not None:
                    self._rto_ns = self._rto_est.on_measurement(rtt_ns)
            if self._rto_est is None:
                self._rto_ns = self.params.rto_ns  # backoff resets on progress
            self._cc.on_ack(
                acked_bytes=acked,
                rtt_ns=rtt_ns,
                now_ns=now,
                in_flight_bytes=self._snd_nxt - self._snd_una,
            )
            if rel < self._recover_point:
                # Partial ACK (RFC 6582): everything up to the recovery
                # point was sent before the loss event, so a gap at
                # snd_una means that segment is lost, not in flight —
                # retransmit it now.
                self.stats.retransmissions += 1
                self.stats.partial_ack_retransmits += 1
                self._retransmit_head()
            if self._snd_una >= self._snd_nxt:
                self._bump_timer()  # everything acked: stop RTO
            else:
                self._arm_rto()
            self._maybe_signal_send_complete()
            self._pump()
            return
        if pure and rel == self._snd_una and self._snd_nxt > self._snd_una:
            self._dup_acks += 1
            self._cc.on_dupack(self._loop.now_ns)
            if self._dup_acks == self.params.dupack_threshold:
                self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        self.stats.fast_retransmits += 1
        self.stats.retransmissions += 1
        self._rtt_probe = None  # Karn: retransmission voids the probe
        self._recover_point = self._snd_nxt
        self._cc.on_fast_retransmit(self._loop.now_ns)
        self._retransmit_head()
        self._arm_rto()

    def _retransmit_head(self) -> None:
        start = self._snd_una
        end = min(start + self.params.mss, self._total_send_len())
        if end <= start:
            return
        self._emit_range(start, end, retransmit=True)

    def _rto_fire(self, gen: int) -> None:
        if gen != self._timer_gen:
            return
        if self._snd_una >= self._snd_nxt:
            return
        self.stats.timeouts += 1
        self.stats.retransmissions += 1
        self._rtt_probe = None  # Karn: retransmission voids the probe
        self._recover_point = self._snd_nxt
        self._cc.on_retransmit_timeout(self._loop.now_ns)
        if self._rto_est is not None:
            self._rto_ns = self._rto_est.on_backoff()
        else:
            self._rto_ns = min(self._rto_ns * 2, self.params.rto_max_ns)
        self._retransmit_head()
        self._arm_rto()

    def _arm_rto(self) -> None:
        gen = self._bump_timer()
        self._loop.schedule(self._rto_ns, self._rto_fire, gen)

    def _bump_timer(self) -> int:
        self._timer_gen += 1
        return self._timer_gen

    # -- transmission ---------------------------------------------------------------------------

    def _pump(self) -> None:
        """Send as much new data as the congestion window allows."""
        if self.state not in ("ESTABLISHED", "CLOSING"):
            return
        limit = self._snd_una + self._cc.cwnd_segments * self.params.mss
        total = self._total_send_len()
        send_at = max(self._loop.now_ns, self._next_send_ns)
        pacing_gap = self._cc.pacing_gap_ns(self.params.mss)
        gap = max(self.params.segment_gap_ns, pacing_gap or 0)
        burst = 0
        while self._snd_nxt < total and self._snd_nxt < limit:
            start = self._snd_nxt
            end = min(start + self.params.mss, total)
            self._snd_nxt = end
            if send_at <= self._loop.now_ns:
                self._emit_range(start, end)
            else:
                self._loop.schedule_at(send_at, self._emit_range, start, end)
            send_at += gap
            burst += 1
        if burst:
            self._next_send_ns = send_at
            self._arm_rto()

    def _emit_range(self, start: int, end: int, retransmit: bool = False) -> None:
        """Send bytes [start, end); the last unit may be the FIN."""
        total = self._total_send_len()
        has_fin = self._fin_queued and end >= total
        payload = (end - start) - (1 if has_fin else 0)
        flags = tcpf.FLAG_ACK
        if has_fin:
            flags |= tcpf.FLAG_FIN
            self._fin_sent = True
            self.state = "CLOSING"
        if payload > 0 and end >= self._app_bytes:
            flags |= tcpf.FLAG_PSH
        if payload == 0 and not has_fin:
            return
        now = self._loop.now_ns
        if retransmit:
            self._rtt_probe = None  # Karn: never time a retransmitted range
        elif payload > 0 and self._rtt_probe is None:
            self._rtt_probe = (end, now)
        self._cc.on_send(payload, now)
        self.stats.data_segments_sent += 1
        # Data segments always carry the current cumulative ACK, so any
        # pending delayed-ACK obligation is satisfied by piggybacking.
        self._pending_ack_segments = 0
        self._delack_gen += 1
        self._emit(
            self._make_segment(
                seq=self._abs_seq(start),
                ack=self._current_ack_abs(),
                flags=flags,
                payload_len=payload,
            )
        )

    def _maybe_signal_send_complete(self) -> None:
        if self._send_done_signalled:
            return
        if self._app_bytes == 0:
            return
        if self._snd_una >= self._app_bytes:
            self._send_done_signalled = True
            if self._on_send_complete is not None:
                self._on_send_complete()
