"""RFC 6298 retransmission-timeout estimation.

Until this estimator existed the simulated sender used a fixed base RTO
from :class:`~repro.simnet.tcp_endpoint.TcpParams` — a deliberate
simplification that sidestepped RTT measurement entirely, at the cost
of two real phenomena the paper's ambiguity analysis cares about:

* a fixed RTO *below* the path RTT retransmits spuriously on every
  window (Jain's timeout-divergence pathology) — the sender floods the
  monitor with retransmission ambiguity even on a loss-free path;
* a fixed RTO far *above* the path RTT recovers tail loss seconds late,
  hiding the retransmission-storm dynamics of data-center incast
  (the T-RACKs problem: RTO_min dominates recovery latency).

The estimator follows RFC 6298 exactly: ``SRTT`` and ``RTTVAR`` are
exponentially weighted (alpha 1/8, beta 1/4), ``RTO = SRTT +
max(G, 4*RTTVAR)`` clamped to ``[min, max]``, the timer backs off by
doubling on each expiry, and — per Karn's algorithm — only segments
that were never retransmitted feed measurements (the *endpoint*
enforces that; this class just receives valid samples).
"""

from __future__ import annotations

from typing import Optional

#: RFC 6298 §2 constants.
ALPHA = 1 / 8
BETA = 1 / 4
K = 4

#: Clock granularity G: 1 ms, matching a kernel's timer wheel (the
#: simulator's virtual clock is exact; G only floors the variance term).
GRANULARITY_NS = 1_000_000


class RtoEstimator:
    """SRTT/RTTVAR tracking with exponential timer backoff."""

    __slots__ = ("_initial_ns", "_min_ns", "_max_ns", "srtt_ns",
                 "rttvar_ns", "_rto_ns", "samples", "backoffs")

    def __init__(self, *, initial_ns: int, min_ns: int, max_ns: int) -> None:
        if initial_ns <= 0:
            raise ValueError("initial RTO must be positive")
        if not 0 < min_ns <= max_ns:
            raise ValueError("need 0 < min_ns <= max_ns")
        self._initial_ns = initial_ns
        self._min_ns = min_ns
        self._max_ns = max_ns
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns: Optional[int] = None
        self._rto_ns = self._clamp(initial_ns)
        self.samples = 0
        self.backoffs = 0

    def _clamp(self, rto_ns: int) -> int:
        return max(self._min_ns, min(rto_ns, self._max_ns))

    @property
    def rto_ns(self) -> int:
        """The current retransmission timeout."""
        return self._rto_ns

    def on_measurement(self, rtt_ns: int) -> int:
        """Fold one Karn-valid RTT measurement; returns the new RTO."""
        if rtt_ns < 0:
            raise ValueError(f"negative RTT measurement: {rtt_ns}")
        self.samples += 1
        if self.srtt_ns is None:
            # RFC 6298 §2.2: first measurement.
            self.srtt_ns = rtt_ns
            self.rttvar_ns = rtt_ns // 2
        else:
            # §2.3: RTTVAR before SRTT (the deviation uses the old SRTT).
            self.rttvar_ns = int((1 - BETA) * self.rttvar_ns
                                 + BETA * abs(self.srtt_ns - rtt_ns))
            self.srtt_ns = int((1 - ALPHA) * self.srtt_ns + ALPHA * rtt_ns)
        self._rto_ns = self._clamp(
            self.srtt_ns + max(GRANULARITY_NS, K * self.rttvar_ns)
        )
        return self._rto_ns

    def on_backoff(self) -> int:
        """Double the timer after an expiry (§5.5); returns the new RTO."""
        self.backoffs += 1
        self._rto_ns = min(self._rto_ns * 2, self._max_ns)
        return self._rto_ns
