"""Seeded randomness helpers for workload and network models.

All stochastic behaviour in the simulator flows through one
:class:`SimRandom` so a single seed reproduces a whole trace.  The
distributions here are the standard heavy-tailed building blocks of
Internet traffic models: lognormal latency mixtures, bounded Pareto flow
sizes, exponential inter-arrivals.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class SimRandom:
    """A seeded random source with networking-flavoured helpers."""

    def __init__(self, seed: int = 0) -> None:
        self._random = random.Random(seed)
        self.seed = seed

    def fork(self, label: str) -> "SimRandom":
        """An independent stream derived from this seed and a label.

        Forking keeps component randomness decoupled: adding packets to
        one flow does not perturb another flow's loss pattern.
        """
        child = SimRandom.__new__(SimRandom)
        child._random = random.Random(f"{self.seed}:{label}")
        child.seed = self.seed
        return child

    # -- primitives ---------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def chance(self, probability: float) -> bool:
        """Bernoulli trial."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self._random.choices(items, weights=weights, k=1)[0]

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    # -- distributions -------------------------------------------------------

    def exponential_ns(self, mean_ns: float) -> int:
        """Exponential holding time (e.g. flow inter-arrival)."""
        return max(0, int(self._random.expovariate(1.0 / mean_ns)))

    def lognormal_ns(self, median_ns: float, sigma: float) -> int:
        """Lognormal delay with the given median and shape."""
        mu = math.log(median_ns)
        return max(0, int(self._random.lognormvariate(mu, sigma)))

    def bounded_pareto(self, alpha: float, low: float, high: float) -> float:
        """Bounded Pareto variate on [low, high] (heavy-tailed sizes)."""
        if not 0 < low < high:
            raise ValueError("need 0 < low < high")
        u = self._random.random()
        la, ha = low ** alpha, high ** alpha
        x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)
        return min(max(x, low), high)

    def flow_size_bytes(
        self,
        *,
        alpha: float = 1.2,
        low: int = 400,
        high: int = 20_000_000,
    ) -> int:
        """Heavy-tailed flow size: many mice, a few elephants."""
        return int(self.bounded_pareto(alpha, low, high))

    def jittered_ns(self, base_ns: int, jitter_fraction: float) -> int:
        """Base delay plus one-sided uniform jitter (queueing noise)."""
        if jitter_fraction <= 0:
            return base_ns
        return base_ns + int(base_ns * self._random.random() * jitter_fraction)
