"""Unidirectional link model: delay, jitter, loss, reordering, queueing.

A link delivers each segment after ``base delay + jitter``; a *loss*
drops the segment, and a *reordering event* adds an extra delay long
enough for subsequently sent segments to overtake — the mechanism that
produces duplicate-ACK/reordering ambiguity downstream.

The base delay may be a callable of virtual time, which is how the
interception-attack trace shifts a path's latency mid-connection
(paper §5.2: the wide-area leg jumps from ~25 ms to ~120 ms when the
BGP hijack takes effect).

With ``bandwidth_bps`` set, the link also models serialization through
a FIFO transmitter: each segment occupies the wire for
``bits / bandwidth`` and later segments queue behind it, so sustained
bursts build genuine queueing delay — the §7 bufferbloat signature
emerges from load instead of being scripted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from .engine import EventLoop
from .rng import SimRandom
from .segment import SimSegment

DelaySpec = Union[int, Callable[[int], int]]


#: Approximate L2-L4 header overhead per segment on the wire.
WIRE_OVERHEAD_BYTES = 58


@dataclass
class LinkStats:
    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    reordered: int = 0
    max_queue_delay_ns: int = 0


class Link:
    """One direction of a network path."""

    def __init__(
        self,
        loop: EventLoop,
        rng: SimRandom,
        *,
        delay_ns: DelaySpec,
        jitter_fraction: float = 0.05,
        loss_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_extra_ns: Optional[int] = None,
        bandwidth_bps: Optional[float] = None,
        queue_limit_ns: Optional[int] = None,
        name: str = "link",
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate out of range: {loss_rate}")
        if not 0.0 <= reorder_rate < 1.0:
            raise ValueError(f"reorder_rate out of range: {reorder_rate}")
        self._loop = loop
        self._rng = rng
        self._delay = delay_ns
        self._jitter_fraction = jitter_fraction
        self._loss_rate = loss_rate
        self._reorder_rate = reorder_rate
        self._reorder_extra_ns = reorder_extra_ns
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError(f"bandwidth_bps must be positive: {bandwidth_bps}")
        if queue_limit_ns is not None and queue_limit_ns <= 0:
            raise ValueError(f"queue_limit_ns must be positive: {queue_limit_ns}")
        self._bandwidth_bps = bandwidth_bps
        # Finite buffer, expressed as maximum queueing *delay* (a byte
        # limit divided by the bandwidth).  Overflow tail-drops — the
        # loss signal that makes loss-based congestion control sawtooth
        # through the buffer, i.e. textbook bufferbloat dynamics.
        self._queue_limit_ns = queue_limit_ns
        self._tx_busy_until_ns = 0
        self._handler: Optional[Callable[[SimSegment], None]] = None
        self._fifo_front_ns = 0
        self.name = name
        self.stats = LinkStats()

    def connect(self, handler: Callable[[SimSegment], None]) -> None:
        """Set the delivery callback (the next hop or endpoint)."""
        self._handler = handler

    def base_delay_ns(self) -> int:
        """Current base one-way delay."""
        if callable(self._delay):
            return self._delay(self._loop.now_ns)
        return self._delay

    def send(self, segment: SimSegment) -> None:
        """Inject a segment; it is delivered (or lost) asynchronously."""
        if self._handler is None:
            raise RuntimeError(f"link {self.name!r} has no delivery handler")
        self.stats.sent += 1
        if self._rng.chance(self._loss_rate):
            self.stats.dropped += 1
            return
        now = self._loop.now_ns
        queue_delay = 0
        if self._bandwidth_bps is not None:
            # FIFO transmitter: wait for the wire, then serialize.
            bits = 8 * (segment.payload_len + WIRE_OVERHEAD_BYTES)
            tx_time = int(bits * 1_000_000_000 / self._bandwidth_bps)
            start = max(now, self._tx_busy_until_ns)
            if (self._queue_limit_ns is not None
                    and start - now > self._queue_limit_ns):
                # Buffer overflow: tail drop.
                self.stats.dropped += 1
                return
            queue_delay = start - now
            self._tx_busy_until_ns = start + tx_time
            queue_delay += tx_time
            if queue_delay > self.stats.max_queue_delay_ns:
                self.stats.max_queue_delay_ns = queue_delay
        delay = self._rng.jittered_ns(self.base_delay_ns(), self._jitter_fraction)
        when = now + queue_delay + delay
        if self._reorder_rate and self._rng.chance(self._reorder_rate):
            # A deliberate reordering event: hold this segment back long
            # enough for subsequently sent segments to overtake it.  It
            # does not advance the FIFO front, so later traffic is not
            # forced to queue behind it.
            extra = self._reorder_extra_ns
            if extra is None:
                extra = self.base_delay_ns()
            when += extra
            self.stats.reordered += 1
        else:
            # Jitter models queueing, and queues are FIFO: a segment never
            # spontaneously overtakes one sent earlier on the same link.
            when = max(when, self._fifo_front_ns + 1)
            self._fifo_front_ns = when
        self._loop.schedule_at(when, self._deliver, segment)

    def _deliver(self, segment: SimSegment) -> None:
        self.stats.delivered += 1
        self._handler(segment)
