"""``repro.fastpath`` — the columnar/vectorized batch engine.

Splits per-packet work into a *vectorizable classification stage*
(decode, flow hashing, role masks — :mod:`repro.net.columnar` and
:mod:`repro.fastpath.classify`) and the existing *scalar mutation
stage* (tracker state transitions — ``Dart.process_columns`` in
:mod:`repro.core.pipeline`), with byte-identical verdicts, stats, and
sample multisets versus the reference object path.  DESIGN §15 states
the equivalence argument; numpy is optional and every entry point
gates on :data:`HAVE_NUMPY`.
"""

from ..net.columnar import (
    HAVE_NUMPY,
    KIND_RECORD,
    KIND_SKIP,
    KIND_VEC,
    PacketColumns,
    columns_from_framed,
    decode_wire_columns,
    records_to_columns,
)
from . import classify

__all__ = [
    "HAVE_NUMPY",
    "KIND_RECORD",
    "KIND_SKIP",
    "KIND_VEC",
    "PacketColumns",
    "classify",
    "columns_from_framed",
    "decode_wire_columns",
    "records_to_columns",
]
