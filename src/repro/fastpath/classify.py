"""Vectorised classification: flow hashes and stage indices as columns.

The scalar hot path spends most of its non-decode time hashing flow
keys (:mod:`repro.core.hashing`): an unsalted CRC32 for table indices,
a salted CRC32 signature, the murmur3 finalizer per stage probe, and a
canonical-key CRC for sharding.  Every one of those is fixed-layout
byte arithmetic over the 12-byte IPv4 key — exactly what vectorises.

This module computes the same values over whole
:class:`~repro.net.columnar.PacketColumns` batches.  Each function is
pinned bit-for-bit against its scalar twin by hypothesis properties
(``tests/net/test_columnar.py``); the pipeline's columnar loop then
*pre-fills* the lazy ``FlowKey`` caches with these columns, so the
scalar mutation stage never computes a hash per packet.

Values at non-``KIND_VEC`` rows are well-defined (the columns hold
zeros there) but meaningless; callers mask by row kind.
"""

from __future__ import annotations

from ..core.hashing import _STAGE_SALTS, MAX_STAGES
from ..net.columnar import HAVE_NUMPY, PacketColumns

if HAVE_NUMPY:
    import numpy as np
else:  # pragma: no cover - exercised only in numpy-free environments
    np = None  # type: ignore[assignment]

#: Salt of :func:`repro.core.hashing.signature32`.
SIGNATURE_SALT = 0x5A17ECAF

_CRC_TABLE = None


def _crc_table():
    """The reflected CRC-32 (poly 0xEDB88320) byte table, built lazily
    so the module imports without numpy."""
    global _CRC_TABLE
    if _CRC_TABLE is None:
        crc = np.arange(256, dtype=np.uint32)
        one = np.uint32(1)
        poly = np.uint32(0xEDB88320)
        for _ in range(8):
            crc = np.where(crc & one, (crc >> one) ^ poly, crc >> one)
        _CRC_TABLE = crc
    return _CRC_TABLE


def crc32_columns(byte_columns, salt: int = 0):
    """Row-wise ``zlib.crc32(bytes, salt)`` over parallel byte columns.

    ``byte_columns[j]`` holds byte *j* of every row's input string, so
    a batch of equal-length keys CRCs in ``len(byte_columns)`` table
    lookups total instead of one Python-level call per row.
    """
    table = _crc_table()
    n = byte_columns[0].shape[0]
    mask = np.uint32(0xFF)
    crc = np.full(n, (salt ^ 0xFFFFFFFF) & 0xFFFFFFFF, dtype=np.uint32)
    for column in byte_columns:
        crc = (crc >> np.uint32(8)) ^ table[(crc ^ column.astype(np.uint32)) & mask]
    return crc ^ np.uint32(0xFFFFFFFF)


def _key_byte_columns(src, dst, sport, dport):
    """The 12 byte columns of the paper's IPv4 flow-key layout
    (``FlowKey.key_bytes``: src, dst big-endian u32; ports u16)."""
    return [
        (src >> 24) & 0xFF, (src >> 16) & 0xFF, (src >> 8) & 0xFF, src & 0xFF,
        (dst >> 24) & 0xFF, (dst >> 16) & 0xFF, (dst >> 8) & 0xFF, dst & 0xFF,
        (sport >> 8) & 0xFF, sport & 0xFF,
        (dport >> 8) & 0xFF, dport & 0xFF,
    ]


def flow_crcs(cols: PacketColumns, reverse: bool = False):
    """``FlowKey.key_crc`` (unsalted CRC32 of the key bytes) per row.

    ``reverse=False`` hashes the tuple as it appears in the columns
    (the SEQ-direction flow of a data packet); ``reverse=True`` hashes
    the reversed tuple (the SEQ-direction flow an ACK acknowledges —
    ``ack_target_flow``).
    """
    if reverse:
        columns = _key_byte_columns(cols.dst_ip, cols.src_ip,
                                    cols.dst_port, cols.src_port)
    else:
        columns = _key_byte_columns(cols.src_ip, cols.dst_ip,
                                    cols.src_port, cols.dst_port)
    return crc32_columns(columns)


def signatures(cols: PacketColumns, reverse: bool = False):
    """``FlowKey.signature`` (salted CRC32) per row; ``reverse`` as in
    :func:`flow_crcs`."""
    if reverse:
        columns = _key_byte_columns(cols.dst_ip, cols.src_ip,
                                    cols.dst_port, cols.src_port)
    else:
        columns = _key_byte_columns(cols.src_ip, cols.dst_ip,
                                    cols.src_port, cols.dst_port)
    return crc32_columns(columns, SIGNATURE_SALT)


def pt_match_crcs(signature_col, acks):
    """CRC32 of ``pack2_u32(signature, ack)`` per row — the Packet
    Tracker's ACK-side lookup key (``StagedPacketTable.match_ack``)."""
    sig = signature_col.astype(np.int64)
    ack = acks.astype(np.int64)
    return crc32_columns([
        (sig >> 24) & 0xFF, (sig >> 16) & 0xFF, (sig >> 8) & 0xFF, sig & 0xFF,
        (ack >> 24) & 0xFF, (ack >> 16) & 0xFF, (ack >> 8) & 0xFF, ack & 0xFF,
    ])


def canonical_key_crcs(cols: PacketColumns, salt: int = 0):
    """CRC32 of the *canonical* (direction-independent) key per row —
    the hash :func:`repro.cluster.sharding.shard_of_flow` uses."""
    swap = ((cols.src_ip > cols.dst_ip)
            | ((cols.src_ip == cols.dst_ip)
               & (cols.src_port > cols.dst_port)))
    src = np.where(swap, cols.dst_ip, cols.src_ip)
    dst = np.where(swap, cols.src_ip, cols.dst_ip)
    sport = np.where(swap, cols.dst_port, cols.src_port)
    dport = np.where(swap, cols.src_port, cols.dst_port)
    return crc32_columns(_key_byte_columns(src, dst, sport, dport), salt)


def shard_indices(cols: PacketColumns, shards: int, salt: int):
    """Shard index per row: salted canonical-key CRC modulo ``shards``."""
    return canonical_key_crcs(cols, salt) % np.uint32(shards)


def mix32(x):
    """Vectorised murmur3 32-bit finalizer (``hashing._mix32``).

    Works in uint64 for the multiplies — a uint32 product would wrap
    with overflow warnings; masking a 64-bit product is exact.
    """
    x = x.astype(np.uint64) & np.uint64(0xFFFFFFFF)
    x ^= x >> np.uint64(16)
    x = (x * np.uint64(0x85EBCA6B)) & np.uint64(0xFFFFFFFF)
    x ^= x >> np.uint64(13)
    x = (x * np.uint64(0xC2B2AE35)) & np.uint64(0xFFFFFFFF)
    x ^= x >> np.uint64(16)
    return x.astype(np.uint32)


def stage_indices(key_crcs, stage: int, table_size: int):
    """Vector twin of :func:`repro.core.hashing.stage_index_from_crc`."""
    if not 0 <= stage < MAX_STAGES:
        raise ValueError(f"stage {stage} out of range (max {MAX_STAGES})")
    if table_size <= 0:
        raise ValueError("table size must be positive")
    salted = key_crcs.astype(np.uint32) ^ np.uint32(_STAGE_SALTS[stage])
    return mix32(salted) % np.uint32(table_size)


def rt_stage_indices(cols: PacketColumns, table_size: int):
    """Range Tracker slot candidates (stage 0) for every row."""
    return stage_indices(flow_crcs(cols), 0, table_size)


def pt_stage_candidates(cols: PacketColumns, stages: int, table_size: int):
    """Packet Tracker slot candidates, one row of indices per stage
    (shape ``(stages, n)``) — the insertion loop's probe sequence."""
    crcs = flow_crcs(cols)
    return np.stack([stage_indices(crcs, s, table_size)
                     for s in range(stages)])


def eack_values(cols: PacketColumns):
    """Expected-ACK column: ``(seq + payload + SYN + FIN) mod 2^32``
    (``PacketRecord.eack``)."""
    syn_fin = (cols.flags & 0x02 != 0).astype(np.int64) \
        + (cols.flags & 0x01 != 0).astype(np.int64)
    return (cols.seq + cols.payload_len + syn_fin) & 0xFFFFFFFF
