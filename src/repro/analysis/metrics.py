"""The paper's §6.2 performance metrics.

Dart's accuracy against ``tcptrace_const`` is quantified by:

* **RTT collection error** at the p-th percentile:
  ``(pct(baseline, p) - pct(dart, p)) / pct(baseline, p)`` — positive
  means Dart *under*-estimates; Fig 12's negative errors mean
  over-estimation.  The worst case over p in [5, 95] supplements the
  p = 50/95/99 points.
* **Fraction of RTT samples collected**: Dart's sample count over the
  baseline's, as a percentage.
* **Recirculations incurred per packet**: total recirculations over
  total packets processed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from .distributions import percentile

REPORTED_PERCENTILES = (50, 95, 99)
WORST_CASE_RANGE = tuple(range(5, 96, 5))


def collection_error_percent(
    baseline_rtts: Sequence[float], dart_rtts: Sequence[float], p: float
) -> float:
    """RTT collection error at one percentile, in percent."""
    base = percentile(baseline_rtts, p)
    if base == 0:
        raise ValueError(f"baseline percentile p{p} is zero")
    return 100.0 * (base - percentile(dart_rtts, p)) / base


def worst_case_error_percent(
    baseline_rtts: Sequence[float],
    dart_rtts: Sequence[float],
    percentiles: Sequence[float] = WORST_CASE_RANGE,
) -> float:
    """Max-|error| over p in [5, 95] (signed value of the worst point)."""
    worst = 0.0
    for p in percentiles:
        err = collection_error_percent(baseline_rtts, dart_rtts, p)
        if abs(err) > abs(worst):
            worst = err
    return worst


def fraction_collected_percent(
    baseline_count: int, dart_count: int
) -> float:
    """Dart's sample count relative to the baseline's, in percent."""
    if baseline_count <= 0:
        raise ValueError("baseline collected no samples")
    return 100.0 * dart_count / baseline_count


@dataclass(frozen=True)
class DartPerformance:
    """The §6.2 metric bundle for one Dart configuration."""

    error_p50: float
    error_p95: float
    error_p99: float
    error_worst_5_95: float
    fraction_collected: float
    recirculations_per_packet: float
    dart_samples: int
    baseline_samples: int

    def as_row(self) -> Dict[str, float]:
        return {
            "err_p50_%": self.error_p50,
            "err_p95_%": self.error_p95,
            "err_p99_%": self.error_p99,
            "err_worst_%": self.error_worst_5_95,
            "fraction_%": self.fraction_collected,
            "recirc_per_pkt": self.recirculations_per_packet,
        }


def evaluate_dart(
    baseline_rtts: Sequence[float],
    dart_rtts: Sequence[float],
    *,
    recirculations: int,
    packets_processed: int,
) -> DartPerformance:
    """Compute the full metric bundle for one configuration."""
    if len(dart_rtts) == 0:
        raise ValueError("Dart collected no samples; nothing to evaluate")
    return DartPerformance(
        error_p50=collection_error_percent(baseline_rtts, dart_rtts, 50),
        error_p95=collection_error_percent(baseline_rtts, dart_rtts, 95),
        error_p99=collection_error_percent(baseline_rtts, dart_rtts, 99),
        error_worst_5_95=worst_case_error_percent(baseline_rtts, dart_rtts),
        fraction_collected=fraction_collected_percent(
            len(baseline_rtts), len(dart_rtts)
        ),
        recirculations_per_packet=(
            recirculations / packets_processed if packets_processed else 0.0
        ),
        dart_samples=len(dart_rtts),
        baseline_samples=len(baseline_rtts),
    )
