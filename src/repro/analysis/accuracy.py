"""Per-sample Dart-vs-oracle accuracy comparison.

The §6.2 metrics (:mod:`repro.analysis.metrics`) compare *distributions*
— percentile collection error over everything each monitor reported.
The validation matrix needs something sharper: for every sample both
monitors emitted about the *same acknowledged byte*, how far apart are
the two RTT values?

Samples pair naturally on ``(flow, eack)``: ``flow`` is the
data-direction flow key (which also separates the internal and external
legs of one connection) and ``eack`` anchors the measurement to one
byte of the sequence space.  A tcptrace-style oracle emits at most one
sample per (flow, eack) — Karn's algorithm discards retransmitted
segments — so the reference side of the pairing is collision-free in
practice; duplicates are counted and the first occurrence wins.

Errors are *relative* (``|candidate - reference| / reference``) and
aggregated through the same DDSketch-style
:class:`~repro.analysis.sketch.QuantileSketch` the data-plane analytics
use, so the report's error percentiles carry a known relative accuracy
instead of depending on sample retention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..core.samples import RttSample
from .sketch import QuantileSketch

#: Error percentiles every accuracy report carries.
ERROR_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass
class PairedAccuracy:
    """How one monitor's samples compare against a reference monitor's."""

    candidate_count: int
    reference_count: int
    paired: int
    #: Reference-side (flow, eack) keys that appeared more than once.
    reference_duplicates: int
    #: candidate_count / reference_count (inf-safe: 0 refs -> 0 or inf).
    sample_ratio: float
    #: paired / reference_count.
    paired_fraction: float
    #: percentile (e.g. "p95") -> relative error in percent.
    error_pct: Dict[str, float] = field(default_factory=dict)
    max_error_pct: float = 0.0
    #: Fraction of paired samples whose RTTs agree within 1%.
    exact_fraction: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "candidate_count": self.candidate_count,
            "reference_count": self.reference_count,
            "paired": self.paired,
            "reference_duplicates": self.reference_duplicates,
            "sample_ratio": self.sample_ratio,
            "paired_fraction": self.paired_fraction,
            "error_pct": dict(self.error_pct),
            "max_error_pct": self.max_error_pct,
            "exact_fraction": self.exact_fraction,
        }


def pair_samples(
    candidate: Iterable[RttSample],
    reference: Iterable[RttSample],
) -> Tuple[List[Tuple[RttSample, RttSample]], int, int, int]:
    """Match candidate samples to reference samples on ``(flow, eack)``.

    Returns ``(pairs, candidate_count, reference_count, duplicates)``
    where ``pairs`` holds ``(candidate, reference)`` tuples in candidate
    emission order.
    """
    index: Dict[Tuple, RttSample] = {}
    duplicates = 0
    reference_count = 0
    for sample in reference:
        reference_count += 1
        key = (sample.flow, sample.eack)
        if key in index:
            duplicates += 1
            continue
        index[key] = sample
    pairs: List[Tuple[RttSample, RttSample]] = []
    candidate_count = 0
    for sample in candidate:
        candidate_count += 1
        match = index.get((sample.flow, sample.eack))
        if match is not None:
            pairs.append((sample, match))
    return pairs, candidate_count, reference_count, duplicates


def compare_samples(
    candidate: Iterable[RttSample],
    reference: Iterable[RttSample],
    *,
    alpha: float = 0.005,
) -> PairedAccuracy:
    """Score ``candidate`` against ``reference`` per paired sample."""
    pairs, n_cand, n_ref, duplicates = pair_samples(candidate, reference)
    sketch = QuantileSketch(alpha=alpha)
    max_error = 0.0
    exact = 0
    for cand, ref in pairs:
        if ref.rtt_ns <= 0:
            continue
        error = abs(cand.rtt_ns - ref.rtt_ns) / ref.rtt_ns * 100.0
        sketch.add(error)
        if error > max_error:
            max_error = error
        if error <= 1.0:
            exact += 1
    error_pct = {}
    if sketch.count:
        for p in ERROR_PERCENTILES:
            error_pct[f"p{p:g}"] = sketch.quantile(p)
    return PairedAccuracy(
        candidate_count=n_cand,
        reference_count=n_ref,
        paired=len(pairs),
        reference_duplicates=duplicates,
        sample_ratio=(n_cand / n_ref) if n_ref else (float("inf") if n_cand else 0.0),
        paired_fraction=(len(pairs) / n_ref) if n_ref else 0.0,
        error_pct=error_pct,
        max_error_pct=max_error,
        exact_fraction=(exact / len(pairs)) if pairs else 0.0,
    )
