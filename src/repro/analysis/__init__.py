"""Analysis tooling: distributions, §6.2 metrics, plain-text reports."""

from .accuracy import (
    ERROR_PERCENTILES,
    PairedAccuracy,
    compare_samples,
    pair_samples,
)
from .distributions import (
    ccdf,
    cdf,
    fraction_above,
    fraction_below,
    fraction_between,
    percentile,
    quantile_series,
    summarize,
)
from .metrics import (
    REPORTED_PERCENTILES,
    DartPerformance,
    collection_error_percent,
    evaluate_dart,
    fraction_collected_percent,
    worst_case_error_percent,
)
from .report import format_count, render_cdf, render_series, render_table
from .sketch import QuantileSketch, QuantileSketchAnalytics, SketchWindow

__all__ = [
    "DartPerformance",
    "ERROR_PERCENTILES",
    "PairedAccuracy",
    "compare_samples",
    "pair_samples",
    "QuantileSketch",
    "QuantileSketchAnalytics",
    "REPORTED_PERCENTILES",
    "SketchWindow",
    "ccdf",
    "cdf",
    "collection_error_percent",
    "evaluate_dart",
    "format_count",
    "fraction_above",
    "fraction_below",
    "fraction_between",
    "fraction_collected_percent",
    "percentile",
    "quantile_series",
    "render_cdf",
    "render_series",
    "render_table",
    "summarize",
    "worst_case_error_percent",
]
