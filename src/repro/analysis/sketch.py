"""Streaming quantile sketches for RTT distributions.

The analytics module (§3.3) is the customization point for operators;
beyond minima, operators typically want percentiles (the paper reports
p50/p95/p99 throughout §6).  Holding every sample is exactly what a
data plane cannot do, so this module provides a DDSketch-style
log-bucketed quantile estimator: constant-size state, one multiply/
compare per insert (feasible as a register array plus a lookup table on
a switch), and a guaranteed *relative* accuracy.

Guarantee: for relative accuracy ``alpha``, a returned quantile ``q̂``
satisfies ``|q̂ - q| <= alpha * q`` for the true sample quantile ``q``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class QuantileSketch:
    """A DDSketch-style relative-error quantile sketch."""

    def __init__(self, *, alpha: float = 0.01,
                 max_buckets: Optional[int] = 4096) -> None:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha out of range: {alpha}")
        self.alpha = alpha
        self._gamma = (1 + alpha) / (1 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._max_buckets = max_buckets
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- insertion -----------------------------------------------------------

    def _bucket_of(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def add(self, value: float, weight: int = 1) -> None:
        """Insert a non-negative value."""
        if value < 0:
            raise ValueError("sketch accepts non-negative values only")
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.count += weight
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if value == 0:
            self._zero_count += weight
            return
        index = self._bucket_of(value)
        self._buckets[index] = self._buckets.get(index, 0) + weight
        if (self._max_buckets is not None
                and len(self._buckets) > self._max_buckets):
            self._collapse_smallest()

    def _collapse_smallest(self) -> None:
        """Merge the two smallest buckets (bounded-memory fallback).

        Collapsing low buckets preserves accuracy at the high quantiles
        operators alarm on (p95/p99) at the cost of the extreme low end.
        """
        low, second = sorted(self._buckets)[:2]
        self._buckets[second] = self._buckets.get(second, 0) + self._buckets.pop(low)

    # -- queries ----------------------------------------------------------------

    def quantile(self, p: float) -> float:
        """The p-th (0..100) quantile estimate."""
        if not 0 <= p <= 100:
            raise ValueError(f"quantile out of range: {p}")
        if self.count == 0:
            raise ValueError("quantile of an empty sketch")
        rank = p / 100 * (self.count - 1)
        if rank < self._zero_count:
            return 0.0
        seen = self._zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen > rank:
                upper = self._gamma ** index
                estimate = 2 * upper / (1 + self._gamma)
                return min(max(estimate, self._min or 0.0),
                           self._max or estimate)
        return self._max if self._max is not None else 0.0

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    def bucket_count(self) -> int:
        return len(self._buckets) + (1 if self._zero_count else 0)

    # -- state (JSON-safe; fleet wire + checkpoint transport) ----------------

    def state_dict(self) -> Dict:
        """Freeze the sketch into plain JSON-safe data."""
        return {
            "alpha": self.alpha,
            "max_buckets": self._max_buckets,
            "buckets": [[index, self._buckets[index]]
                        for index in sorted(self._buckets)],
            "zero_count": self._zero_count,
            "count": self.count,
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`state_dict` output."""
        sketch = cls(alpha=state["alpha"], max_buckets=state["max_buckets"])
        sketch._buckets = {int(index): int(weight)
                           for index, weight in state["buckets"]}
        sketch._zero_count = int(state["zero_count"])
        sketch.count = int(state["count"])
        sketch._min = state["min"]
        sketch._max = state["max"]
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            abs(other.alpha - self.alpha) <= 1e-12
            and self._max_buckets == other._max_buckets
            and self._buckets == other._buckets
            and self._zero_count == other._zero_count
            and self.count == other.count
            and self._min == other._min
            and self._max == other._max
        )

    __hash__ = None  # type: ignore[assignment]

    def __getstate__(self) -> Dict:
        # Canonical bucket order: insertion order varies with merge and
        # flush grouping, and checkpoint bytes must not depend on when
        # (or whether) the sketch was read mid-run.
        state = dict(self.__dict__)
        state["_buckets"] = {
            index: self._buckets[index] for index in sorted(self._buckets)
        }
        return state

    # -- composition ----------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch (same alpha) into this one."""
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ValueError("cannot merge sketches with different alpha")
        for index, weight in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + weight
        self._zero_count += other._zero_count
        self.count += other.count
        for bound in (other._min, other._max):
            if bound is None:
                continue
            self._min = bound if self._min is None else min(self._min, bound)
            self._max = bound if self._max is None else max(self._max, bound)
        while (self._max_buckets is not None
               and len(self._buckets) > self._max_buckets):
            self._collapse_smallest()


@dataclass(frozen=True)
class SketchWindow:
    """Per-window percentile digest emitted by the sketch analytics."""

    key: object
    window_index: int
    closed_at_ns: int
    count: int
    p50_ns: float
    p95_ns: float
    p99_ns: float
    min_ns: float
    max_ns: float


class QuantileSketchAnalytics:
    """Windowed percentile tracking on constant per-key state.

    A drop-in alternative to :class:`~repro.core.analytics.MinFilterAnalytics`
    when the operator wants distribution shape, not just minima —
    while keeping state a switch could plausibly hold.
    """

    def __init__(self, *, window_ns: int, alpha: float = 0.02,
                 key_fn=None, on_window=None) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self._window_ns = window_ns
        self._alpha = alpha
        self._key_fn = key_fn or (lambda sample: sample.flow)
        self._on_window = on_window
        self._open: Dict[object, Tuple[int, int, QuantileSketch]] = {}
        self.history: List[SketchWindow] = []

    def add(self, sample) -> None:
        key = self._key_fn(sample)
        state = self._open.get(key)
        if state is None:
            state = (0, sample.timestamp_ns, QuantileSketch(alpha=self._alpha))
            self._open[key] = state
        index, started, sketch = state
        while sample.timestamp_ns - started >= self._window_ns:
            self._close(key, index, started, sketch)
            index += 1
            started += self._window_ns
            sketch = QuantileSketch(alpha=self._alpha)
            self._open[key] = (index, started, sketch)
        sketch.add(sample.rtt_ns)

    def _close(self, key, index, started, sketch) -> None:
        if sketch.count == 0:
            return
        window = SketchWindow(
            key=key,
            window_index=index,
            closed_at_ns=started + self._window_ns,
            count=sketch.count,
            p50_ns=sketch.quantile(50),
            p95_ns=sketch.quantile(95),
            p99_ns=sketch.quantile(99),
            min_ns=sketch.min or 0.0,
            max_ns=sketch.max or 0.0,
        )
        self.history.append(window)
        if self._on_window is not None:
            self._on_window(window)

    def flush(self, now_ns: int) -> None:
        for key, (index, started, sketch) in list(self._open.items()):
            self._close(key, index, started, sketch)
        self._open.clear()

    def worth_recirculating(self, flow, timestamp_ns: int,
                            now_ns: int) -> bool:
        return True  # percentile tracking wants every sample
