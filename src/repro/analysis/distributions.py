"""Empirical distribution helpers (CDF, CCDF, percentiles).

Used by the benchmark harness to regenerate the paper's distribution
figures (Fig 6, Fig 9b/9c) and by the metrics module for percentile
errors.  Percentiles use linear interpolation (numpy's default), which
is what matters for comparing two distributions at the same p.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0..100) of a non-empty sample.

    Delegates to :func:`repro.core.hist.exact_quantile` — the one
    exact-percentile implementation in the tree (linear interpolation,
    numpy-compatible), which the sketch accuracy guarantee is also
    checked against.
    """
    from ..core.hist import exact_quantile

    if len(values) == 0:
        raise ValueError("percentile of empty sample")
    return exact_quantile(values, p)


def cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF as (sorted values, cumulative fractions]."""
    if len(values) == 0:
        return [], []
    xs = np.sort(np.asarray(values, dtype=float))
    ys = np.arange(1, len(xs) + 1) / len(xs)
    return xs.tolist(), ys.tolist()

def ccdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Complementary CDF, P[X > x], as (sorted values, tail fractions)."""
    xs, ys = cdf(values)
    return xs, [1.0 - y for y in ys]


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """P[X < threshold] of the empirical sample."""
    if len(values) == 0:
        raise ValueError("fraction of empty sample")
    arr = np.asarray(values, dtype=float)
    return float(np.count_nonzero(arr < threshold) / arr.size)


def fraction_above(values: Sequence[float], threshold: float) -> float:
    """P[X > threshold] of the empirical sample."""
    if len(values) == 0:
        raise ValueError("fraction of empty sample")
    arr = np.asarray(values, dtype=float)
    return float(np.count_nonzero(arr > threshold) / arr.size)


def fraction_between(
    values: Sequence[float], low: float, high: float
) -> float:
    """P[low <= X <= high] of the empirical sample."""
    if len(values) == 0:
        raise ValueError("fraction of empty sample")
    arr = np.asarray(values, dtype=float)
    return float(np.count_nonzero((arr >= low) & (arr <= high)) / arr.size)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Standard summary row used across the benches."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return {"count": 0}
    return {
        "count": int(arr.size),
        "min": float(arr.min()),
        "p25": percentile(arr, 25),
        "p50": percentile(arr, 50),
        "p90": percentile(arr, 90),
        "p95": percentile(arr, 95),
        "p99": percentile(arr, 99),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }


def quantile_series(
    values: Sequence[float], points: Iterable[float]
) -> List[Tuple[float, float]]:
    """(p, percentile) pairs for plotting a distribution."""
    return [(p, percentile(values, p)) for p in points]
