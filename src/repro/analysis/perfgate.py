"""``perfgate``: compare two perf-baseline reports and fail on regression.

The committed ``BENCH_pipeline.json`` (written by
``benchmarks/perf_baseline.py``) is the performance contract for the
per-packet fast path.  This module compares a freshly measured report
against it and exits non-zero when throughput regressed beyond the
threshold — the check CI's ``perf-regression`` job runs on every push.

Rules:

* Throughput metrics (``packets_per_second``) regress when the fresh
  value drops more than ``threshold`` below the baseline
  (default 15%; CI uses a generous 25% to absorb shared-runner noise).
* Latency metrics (``p50_ns`` / ``p99_ns``) are reported for context
  and only gated with ``--gate-latency`` — per-packet timing is far
  noisier than whole-trace throughput on shared machines.
* A metric present in the baseline but missing from the fresh report is
  itself a failure (a silently dropped measurement must not pass).
* When the fresh report carries both ``serial`` and ``serial_engine``
  sections, the gate additionally asserts the
  :class:`~repro.engine.MonitorEngine` adds at most ``--engine-overhead``
  (default 5%) over calling ``Dart.process_batch`` directly.  This is a
  *within-report* check (both numbers come from the same run, so shared
  noise cancels); it is skipped for reports without an engine section.
* When the fresh report also carries ``serial_engine_telemetry``, the
  gate asserts a live :class:`repro.obs.TelemetryEmitter` costs at most
  ``--telemetry-overhead`` (default 3%) over the telemetry-off engine
  pass — the telemetry overhead budget from DESIGN §9.
* When a report carries a ``cluster_scaling`` section, the gate
  enforces the byte-transport scaling floor: 8-shard speedup over the
  same report's serial pass must reach ``--scaling-floor`` (default
  2×).  This is a *within-report* check, and it is **core-count
  aware**: the section records ``usable_cores``, and on hosts with
  fewer than ``--scaling-min-cores`` (default 4) the check reports
  info-only — a 1-core container cannot physically speed anything up,
  and failing there would gate on the machine, not the code.  The
  4-shard point is always an info row.
* When a report carries a ``serial_fastpath`` section, the gate
  enforces the columnar floor: the fast path's speedup over the
  object path (same run, same wire bytes, sample parity asserted by
  the harness before the report exists) must reach
  ``--fastpath-floor`` (default 2×).  Reports measured without numpy
  render the section info-only — the columnar engine never ran there.
  ``--fastpath-only`` checks just this floor on a single report (CI's
  ``fastpath-gate`` job).
* Workload pins must match: comparing two reports whose pinned
  ``connections``/``seed`` differ is comparing different experiments,
  and a ``quick`` or ``fastpath`` flag mismatch (one side measured the
  shrunk workload or without the columnar engine) likewise fails
  loudly instead of producing plausible nonsense.

Usage::

    python -m repro.analysis.perfgate BENCH_pipeline.json fresh.json \\
        --threshold 0.25

    # scaling floor only (CI's cluster-scaling job; one report):
    python -m repro.analysis.perfgate fresh.json --scaling-only \\
        --scaling-floor 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

#: The report schema this gate understands; ``perf_baseline.py`` stamps
#: it into every report so stale files fail loudly instead of comparing
#: apples to oranges.
#: v2 added the ``serial_engine`` section (Dart driven through
#: ``repro.engine.MonitorEngine``) and the engine-overhead check.
#: v3 added ``serial_engine_telemetry`` (same engine pass with a live
#: :class:`repro.obs.TelemetryEmitter`) and the telemetry-overhead check.
#: v4 added the ``fleet_merge`` section (synthetic-fleet delta merging
#: through :class:`repro.fleet.FleetCollector`), reported info-only —
#: the merge path is control-plane, far off the per-packet fast path,
#: and too short-running to gate against shared-runner noise.
#: v5 added the ``cluster_scaling`` section (serial vs 4/8-shard
#: byte-transport throughput with the host's usable core count) and the
#: core-count-aware scaling-floor check.
#: v6 added the ``serial_fastpath`` section (columnar ``process_columns``
#: vs object-path ``process_batch`` over identical wire bytes, sample
#: parity asserted by the harness) with the fastpath-floor check, and
#: pinned ``quick``/``fastpath`` into the workload identity.
#: v7 added the ``serial_hist`` section (the same engine pass with the
#: histogram+sketch distribution stage attached, interleaved with the
#: plain engine leg) and the hist-overhead check.
SCHEMA = "dart-perf-baseline/7"

DEFAULT_THRESHOLD = 0.15
#: Allowed fractional throughput cost of the engine layer vs calling
#: ``process_batch`` directly (same run, same records).
ENGINE_OVERHEAD_THRESHOLD = 0.05
#: Allowed fractional throughput cost of telemetry-on vs telemetry-off
#: for the same engine pass (DESIGN §9's overhead budget).
TELEMETRY_OVERHEAD_THRESHOLD = 0.03
#: Allowed fractional throughput cost of the histogram+sketch
#: distribution stage vs the plain engine pass (DESIGN §16's budget:
#: the stage is two bisects and a handful of adds per sample, and
#: samples are far rarer than packets).
HIST_OVERHEAD_THRESHOLD = 0.05
#: Minimum 8-shard speedup over serial the cluster_scaling section must
#: show (within-report) — deliberately below the ≥3× local target so CI
#: runners with exactly the minimum core count pass with headroom for
#: noisy neighbours.
DEFAULT_SCALING_FLOOR = 2.0
#: Cores below which the scaling floor is reported info-only: with
#: fewer usable cores than this, multi-core speedup is a property of
#: the machine, not the code.
SCALING_MIN_CORES = 4
#: Minimum columnar-over-object speedup the serial_fastpath section
#: must show (within-report; parity with the object path is asserted
#: by the measurement harness before the numbers exist).
DEFAULT_FASTPATH_FLOOR = 2.0


class PerfGateError(ValueError):
    """A report is malformed or the schemas do not match."""


@dataclass(slots=True)
class MetricComparison:
    """One metric's baseline-vs-fresh outcome."""

    metric: str
    baseline: float
    fresh: Optional[float]
    #: True when higher values are better (throughput); False for
    #: latency, where a rise is the regression.
    higher_is_better: bool
    gated: bool
    threshold: float

    @property
    def change_percent(self) -> Optional[float]:
        if self.fresh is None or self.baseline == 0:
            return None
        return (self.fresh - self.baseline) / self.baseline * 100.0

    @property
    def regressed(self) -> bool:
        if not self.gated:
            return False
        if self.fresh is None:
            return True  # measurement vanished: fail loud
        if self.higher_is_better:
            return self.fresh < self.baseline * (1.0 - self.threshold)
        return self.fresh > self.baseline * (1.0 + self.threshold)


def load_report(path) -> dict:
    """Read and validate one perf report."""
    try:
        report = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise PerfGateError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(report, dict) or "results" not in report:
        raise PerfGateError(f"{path}: missing 'results' section")
    if report.get("schema") != SCHEMA:
        raise PerfGateError(
            f"{path}: schema {report.get('schema')!r} != expected {SCHEMA!r}"
        )
    return report


def _flatten(report: dict) -> Dict[str, float]:
    """``results`` as ``{"serial.packets_per_second": value, ...}``."""
    flat: Dict[str, float] = {}
    for section, values in report["results"].items():
        if not isinstance(values, dict):
            continue
        for name, value in values.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[f"{section}.{name}"] = float(value)
    return flat


def check_workload_pins(baseline: dict, fresh: dict) -> None:
    """Refuse to compare reports measured on different pinned workloads.

    ``connections`` and ``seed`` are the workload's identity; a size or
    seed drift between baseline and fresh would make every throughput
    delta meaningless while still rendering a plausible-looking table.
    ``quick`` and ``fastpath`` are boolean pins compared with a missing
    key meaning False: a ``--quick`` report can never stand in for the
    full committed baseline, and a report measured without the columnar
    engine (no numpy) is a different experiment from one with it.
    """
    for pin in ("connections", "seed"):
        base = baseline.get("workload", {}).get(pin)
        new = fresh.get("workload", {}).get(pin)
        if base is not None and new is not None and base != new:
            raise PerfGateError(
                f"workload pin mismatch: baseline {pin}={base!r} vs "
                f"fresh {pin}={new!r} — these are different experiments"
            )
    for pin in ("quick", "fastpath"):
        base = bool(baseline.get("workload", {}).get(pin))
        new = bool(fresh.get("workload", {}).get(pin))
        if base != new:
            raise PerfGateError(
                f"workload pin mismatch: baseline {pin}={base!r} vs "
                f"fresh {pin}={new!r} — these are different experiments"
            )


def compare(
    baseline: dict,
    fresh: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    gate_latency: bool = False,
) -> List[MetricComparison]:
    """Compare every baseline metric against the fresh report.

    Only metrics the *baseline* carries are compared — a fresh report
    may add new sections without failing the gate (that is how the
    baseline grows), but may not drop gated ones.
    """
    if not 0 < threshold < 1:
        raise PerfGateError("threshold must be a fraction in (0, 1)")
    fresh_flat = _flatten(fresh)
    comparisons: List[MetricComparison] = []
    for metric, base_value in sorted(_flatten(baseline).items()):
        # fleet_merge.* rates are info-only: the merge path is
        # control-plane (deltas/sec, not packets/sec) and its short
        # runtime makes shared-runner numbers too noisy to gate.
        is_fleet_info = (metric.startswith("fleet_merge.")
                         and metric.endswith("_per_second"))
        is_throughput = (metric.endswith("packets_per_second")
                         and not is_fleet_info)
        is_latency = metric.endswith(("p50_ns", "p99_ns"))
        if not (is_throughput or is_latency or is_fleet_info):
            continue  # counts/sizes are workload facts, not perf metrics
        comparisons.append(MetricComparison(
            metric=metric,
            baseline=base_value,
            fresh=fresh_flat.get(metric),
            higher_is_better=is_throughput or is_fleet_info,
            gated=is_throughput or (is_latency and gate_latency),
            threshold=threshold,
        ))
    return comparisons


@dataclass(slots=True)
class EngineOverhead:
    """Within-report throughput comparison: a layer vs its baseline.

    Used for both the engine-vs-direct and the telemetry-on-vs-off
    checks; ``direct_pps`` is the cheaper configuration, ``engine_pps``
    the one paying the layer under test.
    """

    direct_pps: float
    engine_pps: float
    threshold: float

    @property
    def overhead_percent(self) -> float:
        if self.direct_pps == 0:
            return 0.0
        return (self.direct_pps - self.engine_pps) / self.direct_pps * 100.0

    @property
    def exceeded(self) -> bool:
        return self.engine_pps < self.direct_pps * (1.0 - self.threshold)


def check_engine_overhead(
    report: dict, *, threshold: float = ENGINE_OVERHEAD_THRESHOLD
) -> Optional[EngineOverhead]:
    """Compare ``serial_engine`` against ``serial`` within one report.

    Returns ``None`` (check skipped) when the report has no
    ``serial_engine`` section — older or minimal reports stay valid.
    """
    if not 0 < threshold < 1:
        raise PerfGateError("engine-overhead threshold must be in (0, 1)")
    flat = _flatten(report)
    direct = flat.get("serial.packets_per_second")
    engine = flat.get("serial_engine.packets_per_second")
    if direct is None or engine is None:
        return None
    return EngineOverhead(direct_pps=direct, engine_pps=engine,
                          threshold=threshold)


def check_telemetry_overhead(
    report: dict, *, threshold: float = TELEMETRY_OVERHEAD_THRESHOLD
) -> Optional[EngineOverhead]:
    """Compare ``serial_engine_telemetry`` against ``serial_engine``.

    A within-report check like :func:`check_engine_overhead`: both
    numbers come from the same run, so shared-machine noise cancels.
    Returns ``None`` (check skipped) when the report has no telemetry
    section.
    """
    if not 0 < threshold < 1:
        raise PerfGateError("telemetry-overhead threshold must be in (0, 1)")
    flat = _flatten(report)
    plain = flat.get("serial_engine.packets_per_second")
    telemetry = flat.get("serial_engine_telemetry.packets_per_second")
    if plain is None or telemetry is None:
        return None
    return EngineOverhead(direct_pps=plain, engine_pps=telemetry,
                          threshold=threshold)


def check_hist_overhead(
    report: dict, *, threshold: float = HIST_OVERHEAD_THRESHOLD
) -> Optional[EngineOverhead]:
    """Compare ``serial_hist`` against ``serial_engine``.

    A within-report check like :func:`check_telemetry_overhead`: the
    two legs are interleaved in one run, so shared-machine noise
    cancels.  Returns ``None`` (check skipped) when the report has no
    ``serial_hist`` section — pre-v7 reports stay valid.
    """
    if not 0 < threshold < 1:
        raise PerfGateError("hist-overhead threshold must be in (0, 1)")
    flat = _flatten(report)
    plain = flat.get("serial_engine.packets_per_second")
    hist = flat.get("serial_hist.packets_per_second")
    if plain is None or hist is None:
        return None
    return EngineOverhead(direct_pps=plain, engine_pps=hist,
                          threshold=threshold)


@dataclass(slots=True)
class ScalingCheck:
    """The cluster_scaling section's verdict, core-count aware.

    ``enforced`` is False on hosts below ``min_cores`` — the rows still
    render (the numbers are honest measurements of that machine) but a
    sub-floor speedup cannot fail the gate there.
    """

    serial_pps: float
    shard_4_pps: Optional[float]
    shard_4_speedup: Optional[float]
    shard_8_pps: Optional[float]
    shard_8_speedup: Optional[float]
    transport: str
    usable_cores: int
    floor: float
    min_cores: int

    @property
    def enforced(self) -> bool:
        return self.usable_cores >= self.min_cores

    @property
    def failed(self) -> bool:
        if not self.enforced:
            return False
        if self.shard_8_speedup is None:
            return True  # the gated measurement vanished: fail loud
        return self.shard_8_speedup < self.floor


def check_cluster_scaling(
    report: dict,
    *,
    floor: float = DEFAULT_SCALING_FLOOR,
    min_cores: int = SCALING_MIN_CORES,
) -> Optional[ScalingCheck]:
    """Check the report's cluster_scaling section against the floor.

    Returns ``None`` (check skipped) when the report carries no
    ``cluster_scaling`` section.  A within-report check: serial and
    sharded numbers come from the same run on the same machine, so
    shared-runner noise largely cancels out of the ratio.
    """
    if floor <= 0:
        raise PerfGateError("scaling floor must be positive")
    section = report["results"].get("cluster_scaling")
    if not isinstance(section, dict):
        return None
    serial = section.get("serial_pps")
    if not isinstance(serial, (int, float)) or serial <= 0:
        raise PerfGateError("cluster_scaling section lacks serial_pps")
    return ScalingCheck(
        serial_pps=float(serial),
        shard_4_pps=section.get("shard_4_pps"),
        shard_4_speedup=section.get("shard_4_speedup"),
        shard_8_pps=section.get("shard_8_pps"),
        shard_8_speedup=section.get("shard_8_speedup"),
        transport=str(section.get("transport", "?")),
        usable_cores=int(section.get("usable_cores", 0)),
        floor=floor,
        min_cores=min_cores,
    )


def render_scaling(check: ScalingCheck) -> str:
    """Human-readable scaling table for logs."""
    lines = [
        f"cluster scaling ({check.transport} transport, "
        f"{check.usable_cores} usable cores)",
        f"{'point':<16} {'pkts/s':>14} {'vs serial':>10}  gate",
        f"{'serial':<16} {check.serial_pps:>14,.0f} {'1.00x':>10}  -",
    ]
    for shards, pps, speedup in (
        (4, check.shard_4_pps, check.shard_4_speedup),
        (8, check.shard_8_pps, check.shard_8_speedup),
    ):
        if pps is None or speedup is None:
            lines.append(f"{f'{shards}-shard':<16} {'MISSING':>14}")
            continue
        if shards == 8 and check.enforced:
            verdict = "FAIL" if speedup < check.floor else "ok"
        else:
            verdict = "info"
        lines.append(
            f"{f'{shards}-shard':<16} {pps:>14,.0f} "
            f"{speedup:>9.2f}x  {verdict}"
        )
    if not check.enforced:
        lines.append(
            f"floor {check.floor:.1f}x not enforced: "
            f"{check.usable_cores} usable core(s) < required "
            f"{check.min_cores} — speedup is machine-bound here"
        )
    return "\n".join(lines)


@dataclass(slots=True)
class FastpathCheck:
    """The serial_fastpath section's verdict, numpy-aware.

    ``enforced`` is False when the report was measured without numpy —
    the object-leg number still renders, but a container that cannot
    run the columnar engine cannot fail its floor.  Sample parity is
    not re-checked here: the measurement harness refuses to *write* a
    speedup whose answer diverged, so a present ``speedup`` key implies
    parity held.
    """

    object_pps: float
    fastpath_pps: Optional[float]
    speedup: Optional[float]
    numpy: bool
    floor: float

    @property
    def enforced(self) -> bool:
        return self.numpy

    @property
    def failed(self) -> bool:
        if not self.enforced:
            return False
        if self.speedup is None:
            return True  # the gated measurement vanished: fail loud
        return self.speedup < self.floor


def check_serial_fastpath(
    report: dict, *, floor: float = DEFAULT_FASTPATH_FLOOR
) -> Optional[FastpathCheck]:
    """Check the report's serial_fastpath section against the floor.

    Returns ``None`` (check skipped) when the report carries no
    ``serial_fastpath`` section.  A within-report check like
    :func:`check_cluster_scaling`: object and columnar legs were
    interleaved in the same run on the same machine, so shared-runner
    noise largely cancels out of the ratio.
    """
    if floor <= 0:
        raise PerfGateError("fastpath floor must be positive")
    section = report["results"].get("serial_fastpath")
    if not isinstance(section, dict):
        return None
    object_pps = section.get("object_pps")
    if not isinstance(object_pps, (int, float)) or object_pps <= 0:
        raise PerfGateError("serial_fastpath section lacks object_pps")
    return FastpathCheck(
        object_pps=float(object_pps),
        fastpath_pps=section.get("fastpath_pps"),
        speedup=section.get("speedup"),
        numpy=bool(section.get("numpy")),
        floor=floor,
    )


def render_fastpath(check: FastpathCheck) -> str:
    """Human-readable fastpath table for logs."""
    lines = [
        "serial fastpath (columnar vs object, identical wire bytes)",
        f"{'leg':<16} {'pkts/s':>14} {'vs object':>10}  gate",
        f"{'object':<16} {check.object_pps:>14,.0f} {'1.00x':>10}  -",
    ]
    if check.fastpath_pps is None or check.speedup is None:
        lines.append(f"{'columnar':<16} {'MISSING':>14}")
    else:
        verdict = ("FAIL" if check.speedup < check.floor else "ok") \
            if check.enforced else "info"
        lines.append(
            f"{'columnar':<16} {check.fastpath_pps:>14,.0f} "
            f"{check.speedup:>9.2f}x  {verdict}"
        )
    if not check.enforced:
        lines.append(
            f"floor {check.floor:.1f}x not enforced: report measured "
            "without numpy — the columnar engine never ran"
        )
    return "\n".join(lines)


def render(comparisons: List[MetricComparison]) -> str:
    """Human-readable comparison table for logs."""
    lines = [
        f"{'metric':<44} {'baseline':>14} {'fresh':>14} {'change':>9}  gate"
    ]
    for c in comparisons:
        fresh = f"{c.fresh:,.0f}" if c.fresh is not None else "MISSING"
        change = (f"{c.change_percent:+.1f}%"
                  if c.change_percent is not None else "-")
        verdict = ("FAIL" if c.regressed
                   else "ok" if c.gated else "info")
        lines.append(
            f"{c.metric:<44} {c.baseline:>14,.0f} {fresh:>14} "
            f"{change:>9}  {verdict}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perfgate",
        description="Fail when a fresh perf report regresses the baseline.",
    )
    parser.add_argument("baseline",
                        help="committed BENCH_pipeline.json (or, with "
                             "--scaling-only, the single report to check)")
    parser.add_argument("fresh", nargs="?", default=None,
                        help="freshly measured report (omitted with "
                             "--scaling-only)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional drop before failing "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--gate-latency", action="store_true",
                        help="also gate p50/p99 per-packet latency")
    parser.add_argument("--engine-overhead", type=float,
                        default=ENGINE_OVERHEAD_THRESHOLD, metavar="FRAC",
                        help="allowed engine-vs-direct throughput cost "
                             f"(default {ENGINE_OVERHEAD_THRESHOLD})")
    parser.add_argument("--telemetry-overhead", type=float,
                        default=TELEMETRY_OVERHEAD_THRESHOLD, metavar="FRAC",
                        help="allowed telemetry-on-vs-off throughput cost "
                             f"(default {TELEMETRY_OVERHEAD_THRESHOLD})")
    parser.add_argument("--hist-overhead", type=float,
                        default=HIST_OVERHEAD_THRESHOLD, metavar="FRAC",
                        help="allowed distribution-stage-vs-plain engine "
                             f"throughput cost (default "
                             f"{HIST_OVERHEAD_THRESHOLD})")
    parser.add_argument("--scaling-only", action="store_true",
                        help="check only the cluster_scaling floor of one "
                             "report (no baseline comparison)")
    parser.add_argument("--scaling-floor", type=float,
                        default=DEFAULT_SCALING_FLOOR, metavar="X",
                        help="required 8-shard speedup over serial "
                             f"(default {DEFAULT_SCALING_FLOOR})")
    parser.add_argument("--scaling-min-cores", type=int,
                        default=SCALING_MIN_CORES, metavar="N",
                        help="usable cores below which the scaling floor "
                             f"is info-only (default {SCALING_MIN_CORES})")
    parser.add_argument("--fastpath-only", action="store_true",
                        help="check only the serial_fastpath floor of one "
                             "report (no baseline comparison)")
    parser.add_argument("--fastpath-floor", type=float,
                        default=DEFAULT_FASTPATH_FLOOR, metavar="X",
                        help="required columnar speedup over the object "
                             f"path (default {DEFAULT_FASTPATH_FLOOR})")
    args = parser.parse_args(argv)

    if args.scaling_only and args.fastpath_only:
        parser.error("--scaling-only and --fastpath-only are exclusive")

    if args.fastpath_only:
        if args.fresh is not None:
            parser.error("--fastpath-only takes a single report")
        try:
            fast = check_serial_fastpath(
                load_report(args.baseline), floor=args.fastpath_floor
            )
        except PerfGateError as exc:
            print(f"perfgate: {exc}", file=sys.stderr)
            return 2
        if fast is None:
            print(f"perfgate: {args.baseline} has no serial_fastpath "
                  "section", file=sys.stderr)
            return 2
        print(render_fastpath(fast))
        if fast.failed:
            print(
                f"perfgate: columnar speedup {fast.speedup or 0:.2f}x is "
                f"below the {args.fastpath_floor:.1f}x floor",
                file=sys.stderr,
            )
            return 1
        print(f"perfgate: ok (fastpath floor {args.fastpath_floor:.1f}x)")
        return 0

    if args.scaling_only:
        if args.fresh is not None:
            parser.error("--scaling-only takes a single report")
        try:
            scaling = check_cluster_scaling(
                load_report(args.baseline),
                floor=args.scaling_floor,
                min_cores=args.scaling_min_cores,
            )
        except PerfGateError as exc:
            print(f"perfgate: {exc}", file=sys.stderr)
            return 2
        if scaling is None:
            print(f"perfgate: {args.baseline} has no cluster_scaling "
                  "section", file=sys.stderr)
            return 2
        print(render_scaling(scaling))
        if scaling.failed:
            print(
                f"perfgate: 8-shard speedup "
                f"{scaling.shard_8_speedup or 0:.2f}x is below the "
                f"{args.scaling_floor:.1f}x floor on a "
                f"{scaling.usable_cores}-core host",
                file=sys.stderr,
            )
            return 1
        print(f"perfgate: ok (scaling floor {args.scaling_floor:.1f}x)")
        return 0

    if args.fresh is None:
        parser.error("fresh report required unless --scaling-only")
    try:
        baseline = load_report(args.baseline)
        fresh = load_report(args.fresh)
        check_workload_pins(baseline, fresh)
        comparisons = compare(
            baseline,
            fresh,
            threshold=args.threshold,
            gate_latency=args.gate_latency,
        )
        overhead = check_engine_overhead(fresh,
                                         threshold=args.engine_overhead)
        telemetry_overhead = check_telemetry_overhead(
            fresh, threshold=args.telemetry_overhead
        )
        hist_overhead = check_hist_overhead(
            fresh, threshold=args.hist_overhead
        )
        scaling = check_cluster_scaling(
            fresh, floor=args.scaling_floor,
            min_cores=args.scaling_min_cores,
        )
        fastpath = check_serial_fastpath(
            fresh, floor=args.fastpath_floor
        )
    except PerfGateError as exc:
        print(f"perfgate: {exc}", file=sys.stderr)
        return 2
    print(render(comparisons))
    failed = False
    regressions = [c for c in comparisons if c.regressed]
    if regressions:
        print(
            f"perfgate: {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.0%} against {args.baseline}",
            file=sys.stderr,
        )
        failed = True
    if overhead is not None:
        verdict = "FAIL" if overhead.exceeded else "ok"
        print(f"engine overhead: {overhead.overhead_percent:+.1f}% "
              f"vs direct process_batch (limit "
              f"{overhead.threshold:.0%})  {verdict}")
        if overhead.exceeded:
            print(
                "perfgate: MonitorEngine costs more than "
                f"{args.engine_overhead:.0%} over direct process_batch",
                file=sys.stderr,
            )
            failed = True
    if telemetry_overhead is not None:
        verdict = "FAIL" if telemetry_overhead.exceeded else "ok"
        print(f"telemetry overhead: "
              f"{telemetry_overhead.overhead_percent:+.1f}% "
              f"vs telemetry-off engine pass (limit "
              f"{telemetry_overhead.threshold:.0%})  {verdict}")
        if telemetry_overhead.exceeded:
            print(
                "perfgate: telemetry costs more than "
                f"{args.telemetry_overhead:.0%} over a telemetry-off run",
                file=sys.stderr,
            )
            failed = True
    if hist_overhead is not None:
        verdict = "FAIL" if hist_overhead.exceeded else "ok"
        print(f"hist overhead: "
              f"{hist_overhead.overhead_percent:+.1f}% "
              f"vs plain engine pass (limit "
              f"{hist_overhead.threshold:.0%})  {verdict}")
        if hist_overhead.exceeded:
            print(
                "perfgate: the distribution stage costs more than "
                f"{args.hist_overhead:.0%} over a plain engine run",
                file=sys.stderr,
            )
            failed = True
    if scaling is not None:
        print(render_scaling(scaling))
        if scaling.failed:
            print(
                f"perfgate: 8-shard speedup "
                f"{scaling.shard_8_speedup or 0:.2f}x is below the "
                f"{args.scaling_floor:.1f}x floor on a "
                f"{scaling.usable_cores}-core host",
                file=sys.stderr,
            )
            failed = True
    if fastpath is not None:
        print(render_fastpath(fastpath))
        if fastpath.failed:
            print(
                f"perfgate: columnar speedup "
                f"{fastpath.speedup or 0:.2f}x is below the "
                f"{args.fastpath_floor:.1f}x floor",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print(f"perfgate: ok (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
