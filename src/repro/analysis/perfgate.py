"""``perfgate``: compare two perf-baseline reports and fail on regression.

The committed ``BENCH_pipeline.json`` (written by
``benchmarks/perf_baseline.py``) is the performance contract for the
per-packet fast path.  This module compares a freshly measured report
against it and exits non-zero when throughput regressed beyond the
threshold — the check CI's ``perf-regression`` job runs on every push.

Rules:

* Throughput metrics (``packets_per_second``) regress when the fresh
  value drops more than ``threshold`` below the baseline
  (default 15%; CI uses a generous 25% to absorb shared-runner noise).
* Latency metrics (``p50_ns`` / ``p99_ns``) are reported for context
  and only gated with ``--gate-latency`` — per-packet timing is far
  noisier than whole-trace throughput on shared machines.
* A metric present in the baseline but missing from the fresh report is
  itself a failure (a silently dropped measurement must not pass).

Usage::

    python -m repro.analysis.perfgate BENCH_pipeline.json fresh.json \\
        --threshold 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

#: The report schema this gate understands; ``perf_baseline.py`` stamps
#: it into every report so stale files fail loudly instead of comparing
#: apples to oranges.
SCHEMA = "dart-perf-baseline/1"

DEFAULT_THRESHOLD = 0.15


class PerfGateError(ValueError):
    """A report is malformed or the schemas do not match."""


@dataclass(slots=True)
class MetricComparison:
    """One metric's baseline-vs-fresh outcome."""

    metric: str
    baseline: float
    fresh: Optional[float]
    #: True when higher values are better (throughput); False for
    #: latency, where a rise is the regression.
    higher_is_better: bool
    gated: bool
    threshold: float

    @property
    def change_percent(self) -> Optional[float]:
        if self.fresh is None or self.baseline == 0:
            return None
        return (self.fresh - self.baseline) / self.baseline * 100.0

    @property
    def regressed(self) -> bool:
        if not self.gated:
            return False
        if self.fresh is None:
            return True  # measurement vanished: fail loud
        if self.higher_is_better:
            return self.fresh < self.baseline * (1.0 - self.threshold)
        return self.fresh > self.baseline * (1.0 + self.threshold)


def load_report(path) -> dict:
    """Read and validate one perf report."""
    try:
        report = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise PerfGateError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(report, dict) or "results" not in report:
        raise PerfGateError(f"{path}: missing 'results' section")
    if report.get("schema") != SCHEMA:
        raise PerfGateError(
            f"{path}: schema {report.get('schema')!r} != expected {SCHEMA!r}"
        )
    return report


def _flatten(report: dict) -> Dict[str, float]:
    """``results`` as ``{"serial.packets_per_second": value, ...}``."""
    flat: Dict[str, float] = {}
    for section, values in report["results"].items():
        if not isinstance(values, dict):
            continue
        for name, value in values.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[f"{section}.{name}"] = float(value)
    return flat


def compare(
    baseline: dict,
    fresh: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    gate_latency: bool = False,
) -> List[MetricComparison]:
    """Compare every baseline metric against the fresh report.

    Only metrics the *baseline* carries are compared — a fresh report
    may add new sections without failing the gate (that is how the
    baseline grows), but may not drop gated ones.
    """
    if not 0 < threshold < 1:
        raise PerfGateError("threshold must be a fraction in (0, 1)")
    fresh_flat = _flatten(fresh)
    comparisons: List[MetricComparison] = []
    for metric, base_value in sorted(_flatten(baseline).items()):
        is_throughput = metric.endswith("packets_per_second")
        is_latency = metric.endswith(("p50_ns", "p99_ns"))
        if not (is_throughput or is_latency):
            continue  # counts/sizes are workload facts, not perf metrics
        comparisons.append(MetricComparison(
            metric=metric,
            baseline=base_value,
            fresh=fresh_flat.get(metric),
            higher_is_better=is_throughput,
            gated=is_throughput or (is_latency and gate_latency),
            threshold=threshold,
        ))
    return comparisons


def render(comparisons: List[MetricComparison]) -> str:
    """Human-readable comparison table for logs."""
    lines = [
        f"{'metric':<44} {'baseline':>14} {'fresh':>14} {'change':>9}  gate"
    ]
    for c in comparisons:
        fresh = f"{c.fresh:,.0f}" if c.fresh is not None else "MISSING"
        change = (f"{c.change_percent:+.1f}%"
                  if c.change_percent is not None else "-")
        verdict = ("FAIL" if c.regressed
                   else "ok" if c.gated else "info")
        lines.append(
            f"{c.metric:<44} {c.baseline:>14,.0f} {fresh:>14} "
            f"{change:>9}  {verdict}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perfgate",
        description="Fail when a fresh perf report regresses the baseline.",
    )
    parser.add_argument("baseline", help="committed BENCH_pipeline.json")
    parser.add_argument("fresh", help="freshly measured report")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional drop before failing "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--gate-latency", action="store_true",
                        help="also gate p50/p99 per-packet latency")
    args = parser.parse_args(argv)
    try:
        comparisons = compare(
            load_report(args.baseline),
            load_report(args.fresh),
            threshold=args.threshold,
            gate_latency=args.gate_latency,
        )
    except PerfGateError as exc:
        print(f"perfgate: {exc}", file=sys.stderr)
        return 2
    print(render(comparisons))
    regressions = [c for c in comparisons if c.regressed]
    if regressions:
        print(
            f"perfgate: {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.0%} against {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print(f"perfgate: ok (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
