"""``perfgate``: compare two perf-baseline reports and fail on regression.

The committed ``BENCH_pipeline.json`` (written by
``benchmarks/perf_baseline.py``) is the performance contract for the
per-packet fast path.  This module compares a freshly measured report
against it and exits non-zero when throughput regressed beyond the
threshold — the check CI's ``perf-regression`` job runs on every push.

Rules:

* Throughput metrics (``packets_per_second``) regress when the fresh
  value drops more than ``threshold`` below the baseline
  (default 15%; CI uses a generous 25% to absorb shared-runner noise).
* Latency metrics (``p50_ns`` / ``p99_ns``) are reported for context
  and only gated with ``--gate-latency`` — per-packet timing is far
  noisier than whole-trace throughput on shared machines.
* A metric present in the baseline but missing from the fresh report is
  itself a failure (a silently dropped measurement must not pass).
* When the fresh report carries both ``serial`` and ``serial_engine``
  sections, the gate additionally asserts the
  :class:`~repro.engine.MonitorEngine` adds at most ``--engine-overhead``
  (default 5%) over calling ``Dart.process_batch`` directly.  This is a
  *within-report* check (both numbers come from the same run, so shared
  noise cancels); it is skipped for reports without an engine section.
* When the fresh report also carries ``serial_engine_telemetry``, the
  gate asserts a live :class:`repro.obs.TelemetryEmitter` costs at most
  ``--telemetry-overhead`` (default 3%) over the telemetry-off engine
  pass — the telemetry overhead budget from DESIGN §9.

Usage::

    python -m repro.analysis.perfgate BENCH_pipeline.json fresh.json \\
        --threshold 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

#: The report schema this gate understands; ``perf_baseline.py`` stamps
#: it into every report so stale files fail loudly instead of comparing
#: apples to oranges.
#: v2 added the ``serial_engine`` section (Dart driven through
#: ``repro.engine.MonitorEngine``) and the engine-overhead check.
#: v3 added ``serial_engine_telemetry`` (same engine pass with a live
#: :class:`repro.obs.TelemetryEmitter`) and the telemetry-overhead check.
#: v4 added the ``fleet_merge`` section (synthetic-fleet delta merging
#: through :class:`repro.fleet.FleetCollector`), reported info-only —
#: the merge path is control-plane, far off the per-packet fast path,
#: and too short-running to gate against shared-runner noise.
SCHEMA = "dart-perf-baseline/4"

DEFAULT_THRESHOLD = 0.15
#: Allowed fractional throughput cost of the engine layer vs calling
#: ``process_batch`` directly (same run, same records).
ENGINE_OVERHEAD_THRESHOLD = 0.05
#: Allowed fractional throughput cost of telemetry-on vs telemetry-off
#: for the same engine pass (DESIGN §9's overhead budget).
TELEMETRY_OVERHEAD_THRESHOLD = 0.03


class PerfGateError(ValueError):
    """A report is malformed or the schemas do not match."""


@dataclass(slots=True)
class MetricComparison:
    """One metric's baseline-vs-fresh outcome."""

    metric: str
    baseline: float
    fresh: Optional[float]
    #: True when higher values are better (throughput); False for
    #: latency, where a rise is the regression.
    higher_is_better: bool
    gated: bool
    threshold: float

    @property
    def change_percent(self) -> Optional[float]:
        if self.fresh is None or self.baseline == 0:
            return None
        return (self.fresh - self.baseline) / self.baseline * 100.0

    @property
    def regressed(self) -> bool:
        if not self.gated:
            return False
        if self.fresh is None:
            return True  # measurement vanished: fail loud
        if self.higher_is_better:
            return self.fresh < self.baseline * (1.0 - self.threshold)
        return self.fresh > self.baseline * (1.0 + self.threshold)


def load_report(path) -> dict:
    """Read and validate one perf report."""
    try:
        report = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise PerfGateError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(report, dict) or "results" not in report:
        raise PerfGateError(f"{path}: missing 'results' section")
    if report.get("schema") != SCHEMA:
        raise PerfGateError(
            f"{path}: schema {report.get('schema')!r} != expected {SCHEMA!r}"
        )
    return report


def _flatten(report: dict) -> Dict[str, float]:
    """``results`` as ``{"serial.packets_per_second": value, ...}``."""
    flat: Dict[str, float] = {}
    for section, values in report["results"].items():
        if not isinstance(values, dict):
            continue
        for name, value in values.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[f"{section}.{name}"] = float(value)
    return flat


def compare(
    baseline: dict,
    fresh: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    gate_latency: bool = False,
) -> List[MetricComparison]:
    """Compare every baseline metric against the fresh report.

    Only metrics the *baseline* carries are compared — a fresh report
    may add new sections without failing the gate (that is how the
    baseline grows), but may not drop gated ones.
    """
    if not 0 < threshold < 1:
        raise PerfGateError("threshold must be a fraction in (0, 1)")
    fresh_flat = _flatten(fresh)
    comparisons: List[MetricComparison] = []
    for metric, base_value in sorted(_flatten(baseline).items()):
        # fleet_merge.* rates are info-only: the merge path is
        # control-plane (deltas/sec, not packets/sec) and its short
        # runtime makes shared-runner numbers too noisy to gate.
        is_fleet_info = (metric.startswith("fleet_merge.")
                         and metric.endswith("_per_second"))
        is_throughput = (metric.endswith("packets_per_second")
                         and not is_fleet_info)
        is_latency = metric.endswith(("p50_ns", "p99_ns"))
        if not (is_throughput or is_latency or is_fleet_info):
            continue  # counts/sizes are workload facts, not perf metrics
        comparisons.append(MetricComparison(
            metric=metric,
            baseline=base_value,
            fresh=fresh_flat.get(metric),
            higher_is_better=is_throughput or is_fleet_info,
            gated=is_throughput or (is_latency and gate_latency),
            threshold=threshold,
        ))
    return comparisons


@dataclass(slots=True)
class EngineOverhead:
    """Within-report throughput comparison: a layer vs its baseline.

    Used for both the engine-vs-direct and the telemetry-on-vs-off
    checks; ``direct_pps`` is the cheaper configuration, ``engine_pps``
    the one paying the layer under test.
    """

    direct_pps: float
    engine_pps: float
    threshold: float

    @property
    def overhead_percent(self) -> float:
        if self.direct_pps == 0:
            return 0.0
        return (self.direct_pps - self.engine_pps) / self.direct_pps * 100.0

    @property
    def exceeded(self) -> bool:
        return self.engine_pps < self.direct_pps * (1.0 - self.threshold)


def check_engine_overhead(
    report: dict, *, threshold: float = ENGINE_OVERHEAD_THRESHOLD
) -> Optional[EngineOverhead]:
    """Compare ``serial_engine`` against ``serial`` within one report.

    Returns ``None`` (check skipped) when the report has no
    ``serial_engine`` section — older or minimal reports stay valid.
    """
    if not 0 < threshold < 1:
        raise PerfGateError("engine-overhead threshold must be in (0, 1)")
    flat = _flatten(report)
    direct = flat.get("serial.packets_per_second")
    engine = flat.get("serial_engine.packets_per_second")
    if direct is None or engine is None:
        return None
    return EngineOverhead(direct_pps=direct, engine_pps=engine,
                          threshold=threshold)


def check_telemetry_overhead(
    report: dict, *, threshold: float = TELEMETRY_OVERHEAD_THRESHOLD
) -> Optional[EngineOverhead]:
    """Compare ``serial_engine_telemetry`` against ``serial_engine``.

    A within-report check like :func:`check_engine_overhead`: both
    numbers come from the same run, so shared-machine noise cancels.
    Returns ``None`` (check skipped) when the report has no telemetry
    section.
    """
    if not 0 < threshold < 1:
        raise PerfGateError("telemetry-overhead threshold must be in (0, 1)")
    flat = _flatten(report)
    plain = flat.get("serial_engine.packets_per_second")
    telemetry = flat.get("serial_engine_telemetry.packets_per_second")
    if plain is None or telemetry is None:
        return None
    return EngineOverhead(direct_pps=plain, engine_pps=telemetry,
                          threshold=threshold)


def render(comparisons: List[MetricComparison]) -> str:
    """Human-readable comparison table for logs."""
    lines = [
        f"{'metric':<44} {'baseline':>14} {'fresh':>14} {'change':>9}  gate"
    ]
    for c in comparisons:
        fresh = f"{c.fresh:,.0f}" if c.fresh is not None else "MISSING"
        change = (f"{c.change_percent:+.1f}%"
                  if c.change_percent is not None else "-")
        verdict = ("FAIL" if c.regressed
                   else "ok" if c.gated else "info")
        lines.append(
            f"{c.metric:<44} {c.baseline:>14,.0f} {fresh:>14} "
            f"{change:>9}  {verdict}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perfgate",
        description="Fail when a fresh perf report regresses the baseline.",
    )
    parser.add_argument("baseline", help="committed BENCH_pipeline.json")
    parser.add_argument("fresh", help="freshly measured report")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional drop before failing "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--gate-latency", action="store_true",
                        help="also gate p50/p99 per-packet latency")
    parser.add_argument("--engine-overhead", type=float,
                        default=ENGINE_OVERHEAD_THRESHOLD, metavar="FRAC",
                        help="allowed engine-vs-direct throughput cost "
                             f"(default {ENGINE_OVERHEAD_THRESHOLD})")
    parser.add_argument("--telemetry-overhead", type=float,
                        default=TELEMETRY_OVERHEAD_THRESHOLD, metavar="FRAC",
                        help="allowed telemetry-on-vs-off throughput cost "
                             f"(default {TELEMETRY_OVERHEAD_THRESHOLD})")
    args = parser.parse_args(argv)
    try:
        fresh = load_report(args.fresh)
        comparisons = compare(
            load_report(args.baseline),
            fresh,
            threshold=args.threshold,
            gate_latency=args.gate_latency,
        )
        overhead = check_engine_overhead(fresh,
                                         threshold=args.engine_overhead)
        telemetry_overhead = check_telemetry_overhead(
            fresh, threshold=args.telemetry_overhead
        )
    except PerfGateError as exc:
        print(f"perfgate: {exc}", file=sys.stderr)
        return 2
    print(render(comparisons))
    failed = False
    regressions = [c for c in comparisons if c.regressed]
    if regressions:
        print(
            f"perfgate: {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.0%} against {args.baseline}",
            file=sys.stderr,
        )
        failed = True
    if overhead is not None:
        verdict = "FAIL" if overhead.exceeded else "ok"
        print(f"engine overhead: {overhead.overhead_percent:+.1f}% "
              f"vs direct process_batch (limit "
              f"{overhead.threshold:.0%})  {verdict}")
        if overhead.exceeded:
            print(
                "perfgate: MonitorEngine costs more than "
                f"{args.engine_overhead:.0%} over direct process_batch",
                file=sys.stderr,
            )
            failed = True
    if telemetry_overhead is not None:
        verdict = "FAIL" if telemetry_overhead.exceeded else "ok"
        print(f"telemetry overhead: "
              f"{telemetry_overhead.overhead_percent:+.1f}% "
              f"vs telemetry-off engine pass (limit "
              f"{telemetry_overhead.threshold:.0%})  {verdict}")
        if telemetry_overhead.exceeded:
            print(
                "perfgate: telemetry costs more than "
                f"{args.telemetry_overhead:.0%} over a telemetry-off run",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print(f"perfgate: ok (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
