"""Plain-text tables and charts for the benchmark harness.

Every bench prints the rows/series of the table or figure it reproduces;
these helpers keep the output uniform and readable in a terminal, with
no plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a fixed-width table."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def render_series(
    points: Sequence[Tuple[float, float]],
    *,
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render one (x, y) series as an ASCII scatter/line chart."""
    if not points:
        return "(empty series)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_x:
        xs = [math.log10(x) if x > 0 else 0.0 for x in xs]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(f"{y_label}  [{y_min:.3g} .. {y_max:.3g}]")
    for line in grid:
        out.append("|" + "".join(line))
    out.append("+" + "-" * width)
    left = f"{points[0][0]:.3g}"
    right = f"{points[-1][0]:.3g}"
    out.append(
        f" {left}{' ' * max(1, width - len(left) - len(right))}{right}"
        f"   ({x_label}{', log' if log_x else ''})"
    )
    return "\n".join(out)


def render_cdf(
    series: Dict[str, Sequence[float]],
    *,
    points: Sequence[float],
    unit: str = "ms",
    title: Optional[str] = None,
) -> str:
    """Tabulate CDFs of several distributions at fixed thresholds."""
    from .distributions import fraction_below

    headers = [f"P[X < x] at x ({unit})"] + [f"{p:g}" for p in points]
    rows = []
    for name, values in series.items():
        rows.append(
            [name] + [100.0 * fraction_below(values, p) for p in points]
        )
    return render_table(headers, rows, title=title, float_format="{:.1f}")


def format_count(n: float) -> str:
    """Human-scale counts like the paper's '7.53M'."""
    if n >= 1_000_000:
        return f"{n / 1_000_000:.2f}M"
    if n >= 1_000:
        return f"{n / 1_000:.1f}K"
    return f"{n:.0f}"
