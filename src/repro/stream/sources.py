"""Packet sources: where a streaming run's records come from.

A :class:`PacketSource` produces decoded TCP
:class:`~repro.net.packet.PacketRecord` chunks and knows how to
describe its own position (``resume_state``) so a checkpoint can record
exactly which packet comes next.  Three implementations:

* :class:`CaptureFileSource` — one pass over a finished pcap/pcapng
  file (what ``dart-replay`` does, expressed as a source);
* :class:`TailCaptureSource` — follows a *growing* capture the way
  ``tail -F`` follows a log: reads every complete record, waits when
  the file ends mid-record (tcpdump flushes record-at-a-time, so the
  tail sees :class:`~repro.net.pcap.TruncatedCapture` routinely),
  and starts over when the file is rotated out from under it;
* :class:`PacedReplaySource` — replays a finished capture honoring the
  trace's own timestamps in wall-clock time (optionally scaled), which
  turns any archived trace into a live feed for rehearsing continuous
  operation.

Sources yield *possibly empty* chunks: an empty chunk means "nothing
right now" and gives the runner a chance to checkpoint, emit telemetry,
and notice shutdown signals while idle.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..net.packet import PacketRecord, from_wire_bytes
from ..net.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    PcapFormatError,
    PcapReader,
    TruncatedCapture,
)
from ..net.pcapng import PcapngReader, sniff_format

PathLike = Union[str, Path]


class PacketSource:
    """Shared surface of the packet sources (see module docstring)."""

    def chunks(self, max_records: int) -> Iterator[List[PacketRecord]]:
        """Yield chunks of at most ``max_records`` decoded TCP records.

        Chunks may be empty (idle poll).  The generator returning means
        the source is exhausted for good.
        """
        raise NotImplementedError

    def resume_state(self) -> Dict[str, Any]:
        """Position metadata a checkpoint stores to continue this source."""
        raise NotImplementedError

    def lag_bytes(self) -> int:
        """Bytes written to the capture that this source has not read."""
        return 0

    def close(self) -> None:
        """Release the underlying file handle (idempotent)."""


class CaptureFileSource(PacketSource):
    """One incremental pass over a finished pcap or pcapng file.

    ``resume_offset`` starts the pass at a checkpointed byte offset
    instead of the beginning; ``capture_format`` pins the format when
    the caller already knows it (otherwise it is sniffed).

    ``fastpath`` makes :meth:`chunks` yield decoded *columnar* batches
    (:class:`~repro.net.columnar.PacketColumns`) instead of record
    lists.  Chunk boundaries — and therefore ``resume_state`` offsets
    and checkpoint bytes — are identical to the object path: frames
    are pulled in sub-batches of exactly the records still missing
    from the chunk, which can never overshoot (a batch of *k* frames
    decodes to at most *k* records), so the reader always stops on the
    same frame the per-record pull would have stopped on.  A no-op
    when numpy is unavailable.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        capture_format: Optional[str] = None,
        resume_offset: Optional[int] = None,
        fastpath: bool = False,
    ) -> None:
        self.path = str(path)
        self._format = capture_format
        self._stream = None
        self._reader: Optional[Union[PcapReader, PcapngReader]] = None
        self._ethernet = True  # pcap: fixed per file; pcapng: per record
        self._fastpath = False
        if fastpath:
            from ..net.columnar import HAVE_NUMPY

            self._fastpath = HAVE_NUMPY
        self._open(resume_offset)

    # -- opening -----------------------------------------------------------

    def _open(self, resume_offset: Optional[int]) -> None:
        if self._format is None:
            self._format = sniff_format(self.path)
        self._stream = open(self.path, "rb")
        try:
            self._make_reader()
            if resume_offset is not None:
                self._reader.skip_to(resume_offset)
        except BaseException:
            self._stream.close()
            self._stream = None
            raise

    def _make_reader(self) -> None:
        if self._format == "pcapng":
            self._reader = PcapngReader(self._stream)
            return
        reader = PcapReader(self._stream)
        if reader.header.linktype == LINKTYPE_ETHERNET:
            self._ethernet = True
        elif reader.header.linktype == LINKTYPE_RAW:
            self._ethernet = False
        else:
            raise PcapFormatError(
                f"unsupported linktype {reader.header.linktype}"
            )
        self._reader = reader

    # -- record pull -------------------------------------------------------

    def _pull_raw(self) -> Optional[Tuple[int, bool, bytes]]:
        """Next raw frame as ``(timestamp_ns, is_ethernet, frame)``.

        Returns ``None`` at a clean end of stream; skips pcapng frames
        on link layers the decoder does not speak.  Propagates
        :class:`~repro.net.pcap.TruncatedCapture` — the one-shot source
        treats it as the fatal parse error it subclasses, the tail
        subclass catches it and waits.
        """
        while True:
            try:
                item = next(self._reader)
            except StopIteration:
                return None
            if self._format == "pcapng":
                timestamp_ns, linktype, frame = item
                if linktype == LINKTYPE_ETHERNET:
                    return timestamp_ns, True, frame
                if linktype == LINKTYPE_RAW:
                    return timestamp_ns, False, frame
                continue  # unsupported link layer: skip, as read_pcapng does
            timestamp_ns, frame = item
            return timestamp_ns, self._ethernet, frame

    def _next_record(self) -> Optional[Tuple[PacketRecord, int]]:
        """Next decoded TCP record and the byte offset it began at."""
        while True:
            start = self._reader.resume_offset
            raw = self._pull_raw()
            if raw is None:
                return None
            timestamp_ns, ethernet, frame = raw
            record = from_wire_bytes(frame, timestamp_ns,
                                     linktype_ethernet=ethernet)
            if record is not None:
                return record, start

    # -- PacketSource ------------------------------------------------------

    def chunks(self, max_records: int) -> Iterator[List[PacketRecord]]:
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        if self._fastpath:
            yield from self._fast_chunks(max_records)
            return
        while True:
            chunk: List[PacketRecord] = []
            while len(chunk) < max_records:
                pulled = self._next_record()
                if pulled is None:
                    if chunk:
                        yield chunk
                    return
                chunk.append(pulled[0])
            yield chunk

    def _fast_chunks(self, max_records: int):
        """Columnar twin of :meth:`chunks` (see class docstring).

        The chunk completes exactly when a sub-pull's every frame
        decodes — so the last frame read is always a decoded record,
        and the reader offset matches the object path's at every chunk
        boundary.
        """
        from ..net.columnar import PacketColumns, decode_wire_columns

        while True:
            parts: List[PacketColumns] = []
            decoded = 0
            eof = False
            while decoded < max_records:
                frames: List[Tuple[int, bool, bytes]] = []
                needed = max_records - decoded
                while len(frames) < needed:
                    raw = self._pull_raw()
                    if raw is None:
                        eof = True
                        break
                    frames.append(raw)
                if frames:
                    cols = decode_wire_columns(frames)
                    got = cols.decoded_count()
                    if got:
                        parts.append(cols)
                        decoded += got
                if eof:
                    break
            if parts:
                yield PacketColumns.concat(parts)
            if eof:
                return

    def resume_state(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "format": self._format,
            "offset": self._reader.resume_offset,
        }

    def lag_bytes(self) -> int:
        if self._stream is None:
            return 0
        try:
            size = os.fstat(self._stream.fileno()).st_size
        except OSError:
            return 0
        return max(0, size - self._reader.resume_offset)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


class TailCaptureSource(PacketSource):
    """Follows a growing capture file, ``tail -F`` style.

    Reads every complete record currently in the file, yields an empty
    chunk when it catches up, sleeps ``poll_interval_s``, and retries —
    a file ending mid-record (:class:`TruncatedCapture`) is the normal
    steady state of tailing a flushing tcpdump, not an error.  Rotation
    (the path replaced by a new inode, or the file shrinking below the
    committed offset) restarts the tail at the new file's beginning.

    ``idle_timeout_s`` bounds how long the source waits without a
    single new record before declaring the stream over — ``None`` (the
    daemon default) waits forever.  ``sleep`` is injectable for tests.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        poll_interval_s: float = 0.5,
        idle_timeout_s: Optional[float] = None,
        capture_format: Optional[str] = None,
        resume_offset: Optional[int] = None,
        sleep=time.sleep,
    ) -> None:
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        self.path = str(path)
        self._poll_interval = poll_interval_s
        self._idle_timeout = idle_timeout_s
        self._pinned_format = capture_format
        self._format = capture_format
        self._sleep = sleep
        self._stream = None
        self._reader: Optional[Union[PcapReader, PcapngReader]] = None
        self._ethernet = True
        self._committed = 0  # offset after the last fully delivered record
        if resume_offset is not None:
            self._try_resume(resume_offset)

    def _try_resume(self, offset: int) -> None:
        """Start at a checkpointed offset when the file still matches.

        If the capture was rotated since the checkpoint (missing, or
        now shorter than the offset) the tail starts fresh at the new
        file — the rotated-away bytes are gone either way.
        """
        try:
            size = os.stat(self.path).st_size
        except OSError:
            return
        if size < offset:
            return
        try:
            self._ensure_reader()
        except (TruncatedCapture, OSError):
            return
        if self._reader is not None:
            self._reader.skip_to(offset)
            self._committed = offset

    # -- (re)opening -------------------------------------------------------

    def _ensure_reader(self) -> None:
        """Open the file and parse its header once enough bytes exist."""
        if self._reader is not None:
            return
        if self._stream is None:
            try:
                self._stream = open(self.path, "rb")
            except OSError:
                return  # file not there yet; keep polling
        if self._format is None:
            try:
                self._format = sniff_format(self.path)
            except PcapFormatError:
                return  # fewer than 4 bytes so far
        try:
            self._make_reader()
        except TruncatedCapture:
            # Header still being written; readers rewound to 0 already.
            self._reader = None

    def _make_reader(self) -> None:
        if self._format == "pcapng":
            self._reader = PcapngReader(self._stream)
            return
        reader = PcapReader(self._stream)
        if reader.header.linktype == LINKTYPE_ETHERNET:
            self._ethernet = True
        elif reader.header.linktype == LINKTYPE_RAW:
            self._ethernet = False
        else:
            raise PcapFormatError(
                f"unsupported linktype {reader.header.linktype}"
            )
        self._reader = reader

    def _reopen(self) -> None:
        if self._stream is not None:
            self._stream.close()
        self._stream = None
        self._reader = None
        self._format = self._pinned_format
        self._committed = 0

    def _check_rotation(self) -> None:
        """Reopen when the path points at a new file.

        Two tells: the inode changed (classic rename rotation), or the
        file shrank below what this tail already consumed (truncate-in-
        place rotation).
        """
        if self._stream is None:
            return
        try:
            on_disk = os.stat(self.path)
        except OSError:
            return  # removed and not yet recreated; keep the old handle
        opened = os.fstat(self._stream.fileno())
        if on_disk.st_ino != opened.st_ino or on_disk.st_size < self._committed:
            self._reopen()

    # -- record pull -------------------------------------------------------

    def _collect(self, max_records: int) -> List[PacketRecord]:
        """Every decodable record available right now, up to the cap."""
        chunk: List[PacketRecord] = []
        self._ensure_reader()
        if self._reader is None:
            return chunk
        while len(chunk) < max_records:
            try:
                item = next(self._reader)
            except StopIteration:
                break  # caught up with a record boundary
            except TruncatedCapture:
                break  # caught up mid-record; reader rewound for retry
            if self._format == "pcapng":
                timestamp_ns, linktype, frame = item
                if linktype == LINKTYPE_ETHERNET:
                    ethernet = True
                elif linktype == LINKTYPE_RAW:
                    ethernet = False
                else:
                    self._committed = self._reader.resume_offset
                    continue
            else:
                timestamp_ns, frame = item
                ethernet = self._ethernet
            self._committed = self._reader.resume_offset
            record = from_wire_bytes(frame, timestamp_ns,
                                     linktype_ethernet=ethernet)
            if record is not None:
                chunk.append(record)
        return chunk

    # -- PacketSource ------------------------------------------------------

    def chunks(self, max_records: int) -> Iterator[List[PacketRecord]]:
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        idle = 0.0
        while True:
            chunk = self._collect(max_records)
            yield chunk
            if chunk:
                idle = 0.0
                continue
            if (
                self._idle_timeout is not None
                and idle >= self._idle_timeout
            ):
                return
            self._sleep(self._poll_interval)
            idle += self._poll_interval
            self._check_rotation()

    def resume_state(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "format": self._format,
            "offset": self._committed,
        }

    def lag_bytes(self) -> int:
        try:
            size = os.stat(self.path).st_size
        except OSError:
            return 0
        return max(0, size - self._committed)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


class PacedReplaySource(CaptureFileSource):
    """Replays a finished capture at the trace's own pace.

    The first record is released immediately and becomes the epoch;
    every later record is released when ``(its timestamp - epoch) /
    speed`` of wall-clock time has elapsed.  ``speed=10`` replays ten
    times faster than the capture; ``speed`` must be positive.

    A record pulled from the file but not yet due stays *pending*:
    ``resume_state`` reports the offset **before** it, so a checkpoint
    taken between chunks never skips the packet the pacer was holding.

    ``clock``/``sleep`` are injectable so tests run instantly.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        speed: float = 1.0,
        capture_format: Optional[str] = None,
        resume_offset: Optional[int] = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        super().__init__(path, capture_format=capture_format,
                         resume_offset=resume_offset)
        self._speed = speed
        self._clock = clock
        self._pace_sleep = sleep
        self._epoch_wall: Optional[float] = None
        self._epoch_ts = 0
        self._pending: Optional[PacketRecord] = None
        self._pending_start = 0

    def _due(self, record: PacketRecord) -> float:
        if self._epoch_wall is None:
            self._epoch_wall = self._clock()
            self._epoch_ts = record.timestamp_ns
        elapsed_ns = record.timestamp_ns - self._epoch_ts
        return self._epoch_wall + max(0, elapsed_ns) / 1e9 / self._speed

    def chunks(self, max_records: int) -> Iterator[List[PacketRecord]]:
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        while True:
            chunk: List[PacketRecord] = []
            while len(chunk) < max_records:
                if self._pending is None:
                    pulled = self._next_record()
                    if pulled is None:
                        if chunk:
                            yield chunk
                        return
                    self._pending, self._pending_start = pulled
                record = self._pending
                due = self._due(record)
                now = self._clock()
                if now < due:
                    if chunk:
                        # Ship what is ripe; the held record stays
                        # pending (and excluded from resume_state).
                        break
                    self._pace_sleep(due - now)
                chunk.append(record)
                self._pending = None
            yield chunk

    def resume_state(self) -> Dict[str, Any]:
        offset = (
            self._pending_start
            if self._pending is not None
            else self._reader.resume_offset
        )
        return {"path": self.path, "format": self._format, "offset": offset}
