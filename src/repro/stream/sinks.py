"""Resumable output files: export sinks with byte-offset accounting.

The resume contract is *byte identity*: a run that checkpoints and is
continued in a fresh process must produce output files identical to an
uninterrupted run.  The trick is that a crash (or even a graceful stop)
can leave rows in the files that were written *after* the checkpoint
was taken.  So every checkpoint records each file's flushed byte
offset, and resuming truncates the file back to that offset before
appending — discarding exactly the rows the restored monitors are about
to re-emit.

Offsets are measured with ``os.stat`` after a flush, never with the
stream's ``tell()``: text-mode ``tell`` returns an opaque cookie, not a
byte count.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, Union

from ..export.sinks import CsvSink, JsonlSink, ReportFileSink, WindowJsonlSink
from .checkpoint import CheckpointCorrupt

PathLike = Union[str, Path]

_FACTORIES = {
    "csv": CsvSink,
    "jsonl": JsonlSink,
    "reports": ReportFileSink,
    "windows": WindowJsonlSink,
}


class ResumableSink:
    """Wraps one export sink with the offset/truncate resume protocol.

    Quacks like the sink it wraps (``add``/``flush``/``close``), adds
    :meth:`tell` (flushed size in bytes) and :meth:`state` (the dict the
    checkpoint header stores), and a :meth:`resume` constructor that
    truncates to a checkpointed offset and reopens in append mode.
    """

    def __init__(self, kind: str, path: PathLike, *,
                 append: bool = False) -> None:
        try:
            factory = _FACTORIES[kind]
        except KeyError:
            known = ", ".join(sorted(_FACTORIES))
            raise ValueError(
                f"unknown sink kind {kind!r} (known: {known})"
            ) from None
        self.kind = kind
        self.path = str(path)
        self.inner = factory(path, append=append)

    @classmethod
    def resume(cls, state: Dict[str, Any]) -> "ResumableSink":
        """Reopen a sink at its checkpointed offset.

        Truncates the file to ``state["offset"]`` (rows written after
        the checkpoint are re-emitted by the restored monitors), then
        appends.  A file shorter than the offset means the output no
        longer matches the checkpoint — refuse rather than produce a
        silently incomplete file.
        """
        kind = state["kind"]
        path = state["path"]
        offset = int(state["offset"])
        try:
            size = os.stat(path).st_size
        except FileNotFoundError:
            raise CheckpointCorrupt(
                f"{path}: output file from checkpoint is missing"
            ) from None
        if size < offset:
            raise CheckpointCorrupt(
                f"{path}: output file is {size} bytes but the checkpoint "
                f"recorded {offset} — file was rewritten since"
            )
        if size > offset:
            with open(path, "r+b") as stream:
                stream.truncate(offset)
        return cls(kind, path, append=True)

    # -- sink protocol -----------------------------------------------------

    def add(self, item: Any) -> None:
        self.inner.add(item)

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    @property
    def count(self) -> int:
        return self.inner.count

    # -- checkpoint support ------------------------------------------------

    def tell(self) -> int:
        """Flushed size of the output file in bytes."""
        self.inner.flush()
        return os.stat(self.path).st_size

    def state(self) -> Dict[str, Any]:
        """What the checkpoint header records for this sink."""
        return {"kind": self.kind, "path": self.path, "offset": self.tell()}


class AnalyticsTap:
    """Adapt an analytics object to the sample-router sink protocol.

    Routers ``flush()``/``close()`` their sinks with no arguments at
    teardown, but analytics objects have richer lifecycle signatures
    (``MinFilterAnalytics.flush(now_ns)``), so the tap exposes only
    ``add`` and leaves window finalization to whoever owns the
    analytics — the stream runner or the report builder.
    """

    def __init__(self, analytics: Any) -> None:
        self.analytics = analytics

    def add(self, sample: Any) -> None:
        self.analytics.add(sample)
