"""Versioned, self-validating checkpoint files for streaming runs.

A checkpoint is everything a fresh process needs to continue a run
sample-for-sample: the pickled monitor objects (tracker tables,
recirculation queues, open analytics windows and all), the source
resume offset, and the byte offsets of every output file.  The file
layout is::

    8 bytes   magic  b"DARTCKPT"
    4 bytes   header length (big-endian)
    N bytes   JSON header
    M bytes   pickle payload

The JSON header carries the schema tag, the payload length and SHA-256,
and the structured resume metadata (source / sinks / runner progress).
Keeping the metadata in JSON means an operator can inspect a checkpoint
with ``dart-stream --inspect`` (or three lines of Python) without
unpickling anything, and the loader can reject corrupt or incompatible
files *before* touching the pickle.

Versioning: :data:`SCHEMA` is bumped whenever the payload structure or
monitor pickle layout changes incompatibly.  A mismatch raises
:class:`CheckpointSchemaMismatch` — resuming across versions is refused
rather than guessed at, because a half-restored tracker table corrupts
silently.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Union

PathLike = Union[str, Path]

MAGIC = b"DARTCKPT"
SCHEMA = "dart-stream-checkpoint/1"

_HEADER_LEN = struct.Struct(">I")

#: Refuse to parse absurd header lengths (a corrupt length field would
#: otherwise make the loader try to slurp gigabytes of "header").
_MAX_HEADER_BYTES = 1 << 20


class CheckpointError(Exception):
    """Base class for checkpoint load/store failures."""


class CheckpointCorrupt(CheckpointError):
    """The file is not a checkpoint, or its contents fail validation."""


class CheckpointSchemaMismatch(CheckpointError):
    """The checkpoint was written by an incompatible schema version."""


@dataclass(slots=True)
class Checkpoint:
    """One loaded checkpoint: inspectable header + unpickled payload."""

    header: Dict[str, Any]
    payload: Any

    @property
    def finalized(self) -> bool:
        return bool(self.header.get("finalized", False))


def write_checkpoint(path: PathLike, payload: Any,
                     meta: Dict[str, Any]) -> Dict[str, Any]:
    """Atomically write a checkpoint; returns the header written.

    ``meta`` is merged into the header (source/sinks/runner state,
    ``finalized`` flag).  The write goes to ``<path>.tmp`` first, is
    fsynced, and lands with ``os.replace`` — a crash mid-write leaves
    the previous checkpoint intact, never a half-written one.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header: Dict[str, Any] = {
        "schema": SCHEMA,
        "created_unix_ns": time.time_ns(),
        "payload_len": len(blob),
        "payload_sha256": hashlib.sha256(blob).hexdigest(),
    }
    header.update(meta)
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as stream:
        stream.write(MAGIC)
        stream.write(_HEADER_LEN.pack(len(header_bytes)))
        stream.write(header_bytes)
        stream.write(blob)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)
    return header


def read_header(path: PathLike) -> Dict[str, Any]:
    """Parse and validate only the JSON header (no unpickling).

    The inspection path: cheap, and safe on untrusted files — nothing
    in the payload is executed.
    """
    with open(path, "rb") as stream:
        magic = stream.read(len(MAGIC))
        if magic != MAGIC:
            raise CheckpointCorrupt(
                f"{path}: not a checkpoint file (bad magic {magic!r})"
            )
        len_bytes = stream.read(_HEADER_LEN.size)
        if len(len_bytes) < _HEADER_LEN.size:
            raise CheckpointCorrupt(f"{path}: truncated header length")
        (header_len,) = _HEADER_LEN.unpack(len_bytes)
        if header_len > _MAX_HEADER_BYTES:
            raise CheckpointCorrupt(
                f"{path}: implausible header length {header_len}"
            )
        header_bytes = stream.read(header_len)
        if len(header_bytes) < header_len:
            raise CheckpointCorrupt(f"{path}: truncated header")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise CheckpointCorrupt(f"{path}: header is not JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise CheckpointCorrupt(f"{path}: header is not a JSON object")
    schema = header.get("schema")
    if schema != SCHEMA:
        raise CheckpointSchemaMismatch(
            f"{path}: written by schema {schema!r}, this build reads "
            f"{SCHEMA!r}"
        )
    return header


def read_checkpoint(path: PathLike) -> Checkpoint:
    """Load and fully validate a checkpoint.

    Raises :class:`CheckpointCorrupt` when the payload length or digest
    disagrees with the header (torn write, bit rot), and
    :class:`CheckpointSchemaMismatch` across incompatible versions.
    """
    header = read_header(path)
    with open(path, "rb") as stream:
        (header_len,) = _HEADER_LEN.unpack(
            stream.read(len(MAGIC) + _HEADER_LEN.size)[len(MAGIC):]
        )
        stream.seek(len(MAGIC) + _HEADER_LEN.size + header_len)
        blob = stream.read()
    expected_len = header.get("payload_len")
    if expected_len != len(blob):
        raise CheckpointCorrupt(
            f"{path}: payload is {len(blob)} bytes, header says "
            f"{expected_len}"
        )
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointCorrupt(f"{path}: payload digest mismatch")
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointCorrupt(
            f"{path}: payload failed to unpickle: {exc}"
        ) from exc
    return Checkpoint(header=header, payload=payload)
