"""Continuous streaming operation: sources, checkpoints, the runner.

The paper's deployment is a switch that monitors RTTs *continuously*;
the batch CLIs replay a finished file and exit.  This package closes
that gap for the software reproduction: :class:`StreamRunner` drives a
:class:`~repro.engine.MonitorEngine` from a :class:`PacketSource`
(finished file, growing file, or paced replay) indefinitely, with
bounded memory (rotation), crash/restart durability (versioned
checkpoints, resumed sample-for-sample), and clean SIGTERM semantics.
The ``dart-stream`` CLI (:mod:`repro.cli.stream`) is the daemon
frontend.
"""

from .checkpoint import (
    SCHEMA,
    Checkpoint,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointSchemaMismatch,
    read_checkpoint,
    read_header,
    write_checkpoint,
)
from .runner import StreamHook, StreamReport, StreamRunner
from .signals import GracefulShutdown
from .sinks import AnalyticsTap, ResumableSink
from .sources import (
    CaptureFileSource,
    PacedReplaySource,
    PacketSource,
    TailCaptureSource,
)

__all__ = [
    "CaptureFileSource",
    "Checkpoint",
    "CheckpointCorrupt",
    "CheckpointError",
    "CheckpointSchemaMismatch",
    "GracefulShutdown",
    "PacedReplaySource",
    "PacketSource",
    "AnalyticsTap",
    "ResumableSink",
    "SCHEMA",
    "StreamHook",
    "StreamReport",
    "StreamRunner",
    "TailCaptureSource",
    "read_checkpoint",
    "read_header",
    "write_checkpoint",
]
