"""StreamRunner: the continuous-operation loop.

Ties the pieces together: pull chunks from a :class:`PacketSource`,
push them through a :class:`~repro.engine.MonitorEngine`, and on a
cadence (a) *rotate* — drain retained samples and closed analytics
windows so memory stays bounded by the rotation interval instead of
the run length — and (b) *checkpoint* — snapshot everything needed to
continue the run in a fresh process.

Two ways a run ends:

* **exhausted** — the source's generator returns (one-shot file done,
  tail hit its idle timeout, ``--max-records`` reached).  Monitors are
  finalized through :meth:`MonitorEngine.finish` (flushing open
  trackers and analytics windows), and the final checkpoint is marked
  ``finalized`` — resuming from it is refused.
* **stopped** — a shutdown was requested (SIGTERM/SIGINT).  Monitors
  are *not* finalized: open state is exactly what the checkpoint needs
  so a resumed process continues sample-for-sample.  Sinks are flushed,
  offsets recorded, checkpoint written, exit clean.

Checkpoints are only ever taken at chunk boundaries (never with a
partially processed chunk in flight), which is what makes the resumed
run byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .checkpoint import write_checkpoint
from .signals import GracefulShutdown
from .sinks import ResumableSink
from .sources import PacketSource


class StreamHook:
    """Extension point for periodic work riding the streaming loop.

    Subclasses (e.g. the fleet delta exporter) override what they need;
    the defaults are no-ops, so a hook only pays for what it uses.  The
    runner guarantees:

    * :meth:`on_chunk` runs once per loop iteration — including idle
      polls on a quiet tail — so time-based work (delta pushes,
      heartbeats) ticks even when no packets arrive.
    * :meth:`flush` runs inside every checkpoint, *before* the
      checkpoint file is written; :meth:`checkpoint_payload` is then
      included in the checkpoint under ``payload["hooks"][name]``, so
      hook state survives restarts with the same durability as monitor
      state.  A hook must never raise from :meth:`flush` merely because
      a remote peer is down — a checkpoint must not fail because the
      network did.
    * :meth:`on_stop` runs exactly once at the end of the run, in both
      endgames, after the final checkpoint has landed.
    """

    name = "hook"

    def on_chunk(self, runner: "StreamRunner") -> None:
        """Called once per loop iteration (idle iterations included)."""

    def flush(self) -> None:
        """Called inside each checkpoint, before the file is written."""

    def checkpoint_payload(self) -> Any:
        """Picklable state to store under ``payload['hooks'][name]``."""
        return None

    def restore(self, state: Any) -> None:
        """Re-arm from a loaded checkpoint's hook payload."""

    def on_stop(self, *, stopped: bool) -> None:
        """End of run; ``stopped`` distinguishes signal from exhausted."""


@dataclass(slots=True)
class StreamReport:
    """What one streaming run (or run segment) did."""

    records: int = 0
    wall_seconds: float = 0.0
    end_ns: Optional[int] = None
    stopped: bool = False  # True: shutdown signal; False: source exhausted
    finalized: bool = False
    checkpoints: int = 0
    rotations: int = 0
    samples_drained: int = 0
    windows_shipped: int = 0
    checkpoint_path: Optional[str] = None
    sink_counts: Dict[str, int] = field(default_factory=dict)


class StreamRunner:
    """Drives a MonitorEngine from a PacketSource, continuously.

    ``engine`` must have its monitors attached (with their sinks) before
    :meth:`run`; ``sinks`` lists the :class:`ResumableSink` objects whose
    offsets belong in the checkpoint (normally the same objects attached
    to the engine's routers, plus the window sink).  ``analytics`` (a
    :class:`~repro.core.analytics.MinFilterAnalytics`, optional) has its
    closed windows drained to ``window_sink`` on every rotation.

    ``shutdown`` is polled between chunks; ``checkpoint_path=None``
    disables checkpointing (the runner still rotates).  ``clock`` is
    injectable for tests.
    """

    def __init__(
        self,
        engine: Any,
        source: PacketSource,
        *,
        shutdown: Optional[GracefulShutdown] = None,
        sinks: Optional[List[ResumableSink]] = None,
        analytics: Optional[Any] = None,
        window_sink: Optional[ResumableSink] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval_s: float = 30.0,
        rotation_records: int = 65536,
        chunk_size: int = 8192,
        max_records: Optional[int] = None,
        telemetry: Optional[Any] = None,
        hooks: Optional[List[StreamHook]] = None,
        clock=time.monotonic,
    ) -> None:
        if rotation_records <= 0:
            raise ValueError("rotation_records must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be positive")
        self._engine = engine
        self._source = source
        self._shutdown = shutdown
        self._sinks = list(sinks or [])
        self._analytics = analytics
        self._window_sink = window_sink
        self._checkpoint_path = checkpoint_path
        self._checkpoint_interval = checkpoint_interval_s
        self._rotation_records = rotation_records
        self._chunk_size = chunk_size
        self._max_records = max_records
        self._clock = clock
        self._since_rotation = 0
        self._initial_records = 0
        self._report = StreamReport()
        self._last_checkpoint_wall: Optional[float] = None
        self._last_checkpoint_seconds = 0.0
        self._live_pps = 0.0
        self._hooks = list(hooks or [])
        self._telemetry = telemetry
        if telemetry is not None:
            telemetry.add_collector(self._collect_telemetry)

    # -- checkpoint restore ------------------------------------------------

    def restore(self, header: Dict[str, Any]) -> None:
        """Re-align runner counters from a loaded checkpoint header."""
        runner_state = header.get("runner", {})
        self._engine.restore_progress(
            records=int(runner_state.get("records", 0)),
            end_ns=runner_state.get("end_ns"),
        )
        self._initial_records = int(runner_state.get("records", 0))
        self._since_rotation = int(runner_state.get("since_rotation", 0))

    # -- the loop ----------------------------------------------------------

    def run(self) -> StreamReport:
        report = self._report
        started = self._clock()
        self._last_checkpoint_wall = started
        stopped = False
        for chunk in self._source.chunks(self._chunk_size):
            # Every chunk pulled from the source is ingested: the source
            # advanced its resume offset past these records, so dropping
            # a pulled chunk (e.g. on shutdown) would lose them from the
            # checkpoint.  The shutdown check runs after, never between
            # pull and ingest.
            if isinstance(chunk, list):
                n = len(chunk)
                ingest = self._engine.ingest_chunk
            else:
                # Columnar batch from a fastpath source: same records,
                # counters, and checkpoint boundaries — see
                # CaptureFileSource(fastpath=True).
                n = chunk.decoded_count()
                ingest = self._engine.ingest_columns
            if n:
                chunk_started = self._clock()
                ingest(chunk)
                elapsed = self._clock() - chunk_started
                if elapsed > 0:
                    self._live_pps = n / elapsed
                self._since_rotation += n
                if self._since_rotation >= self._rotation_records:
                    self._rotate()
            elif self._telemetry is not None:
                # Idle poll: the engine only ticks the emitter when fed,
                # so a quiet daemon still exports fresh metric state.
                self._telemetry.maybe_emit()
            for hook in self._hooks:
                hook.on_chunk(self)
            if (
                self._checkpoint_path is not None
                and self._clock() - self._last_checkpoint_wall
                >= self._checkpoint_interval
            ):
                self._checkpoint(finalized=False)
            if (
                self._max_records is not None
                and self._engine.records - self._initial_records
                >= self._max_records
            ):
                break
            if self._shutdown is not None and self._shutdown.triggered:
                stopped = True
                break
        self._source.close()
        if stopped:
            self._drain_without_finalize()
        else:
            self._finalize()
        report.records = self._engine.records
        report.end_ns = self._engine.end_ns
        report.stopped = stopped
        report.wall_seconds = self._clock() - started
        report.checkpoint_path = self._checkpoint_path
        for sink in self._sinks:
            report.sink_counts[sink.path] = sink.count
        return report

    # -- rotation ----------------------------------------------------------

    def _rotate(self) -> None:
        """Shed retained state: samples already routed, windows to disk."""
        self._report.samples_drained += self._engine.drain_retained()
        self._ship_windows()
        self._since_rotation = 0
        self._report.rotations += 1

    def _ship_windows(self) -> None:
        if self._analytics is None:
            return
        drain = getattr(self._analytics, "drain_windows", None)
        if drain is None:
            return
        windows = drain()
        if self._window_sink is not None:
            for window in windows:
                self._window_sink.add(window)
        self._report.windows_shipped += len(windows)

    # -- checkpointing -----------------------------------------------------

    def _checkpoint(self, *, finalized: bool) -> None:
        if self._checkpoint_path is None:
            return
        started = self._clock()
        self._engine.flush_routers()
        if self._window_sink is not None:
            self._window_sink.flush()
        for hook in self._hooks:
            hook.flush()
        payload = {
            "monitors": {
                run.name: run.monitor for run in self._engine.runs
            },
            "analytics": self._analytics,
        }
        if self._hooks:
            payload["hooks"] = {
                hook.name: hook.checkpoint_payload() for hook in self._hooks
            }
        meta = {
            "finalized": finalized,
            "source": self._source.resume_state(),
            "sinks": [sink.state() for sink in self._sinks],
            "runner": {
                "records": self._engine.records,
                "end_ns": self._engine.end_ns,
                "since_rotation": self._since_rotation,
                "samples_routed": {
                    run.name: run.samples_routed for run in self._engine.runs
                },
            },
        }
        write_checkpoint(self._checkpoint_path, payload, meta)
        self._last_checkpoint_seconds = self._clock() - started
        self._last_checkpoint_wall = self._clock()
        self._report.checkpoints += 1

    # -- endgame -----------------------------------------------------------

    def _drain_without_finalize(self) -> None:
        """The signal path: flush everything, finalize nothing.

        Open tracker/analytics state is preserved for the checkpoint so
        a resumed process continues exactly where this one stopped.
        """
        self._rotate()
        self._engine.flush_routers()
        self._checkpoint(finalized=False)
        for hook in self._hooks:
            hook.on_stop(stopped=True)
        for run in self._engine.runs:
            run.router.close()
        if self._window_sink is not None:
            self._window_sink.close()
        if self._telemetry is not None:
            self._telemetry.close()

    def _finalize(self) -> None:
        """The exhausted path: end-of-trace semantics, like a batch run."""
        self._engine.finish()  # finalizes monitors, closes routers+telemetry
        self._ship_windows()
        self._checkpoint(finalized=True)
        for hook in self._hooks:
            hook.on_stop(stopped=False)
        self._report.finalized = True
        if self._window_sink is not None:
            self._window_sink.close()

    # -- telemetry ---------------------------------------------------------

    def _collect_telemetry(self, registry: Any) -> None:
        records_total = registry.counter(
            "dart_stream_records_total",
            "Records ingested by the streaming runner",
        )
        records_total.set_cumulative((), self._engine.records)
        registry.gauge(
            "dart_stream_live_pps",
            "Ingest throughput over the most recent chunk",
        ).set((), self._live_pps)
        registry.counter(
            "dart_stream_checkpoints_total",
            "Checkpoints written this run",
        ).set_cumulative((), self._report.checkpoints)
        registry.counter(
            "dart_stream_rotations_total",
            "Rotation passes (retained-state drains) this run",
        ).set_cumulative((), self._report.rotations)
        registry.counter(
            "dart_stream_windows_shipped_total",
            "Closed analytics windows shipped to the window sink",
        ).set_cumulative((), self._report.windows_shipped)
        age = registry.gauge(
            "dart_stream_checkpoint_age_seconds",
            "Seconds since the last checkpoint landed",
        )
        if self._report.checkpoints and self._last_checkpoint_wall is not None:
            age.set((), max(0.0, self._clock() - self._last_checkpoint_wall))
        registry.gauge(
            "dart_stream_checkpoint_seconds",
            "Wall time of the most recent checkpoint write",
        ).set((), self._last_checkpoint_seconds)
        registry.gauge(
            "dart_stream_source_lag_bytes",
            "Capture bytes on disk not yet read by the source",
        ).set((), self._source.lag_bytes())
