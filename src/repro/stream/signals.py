"""Graceful shutdown for long-lived runs.

A continuous monitor is stopped from outside (systemd, an operator's
Ctrl-C, a CI harness sending SIGTERM).  Stopping must not lose data:
the run should finish the chunk in flight, flush its sinks, write a
final checkpoint, and exit 0.  :class:`GracefulShutdown` is the shared
mechanism — it turns the first SIGTERM/SIGINT into a flag the ingest
loop polls, and restores the default handlers on the second signal so
a stuck process can still be killed the ordinary way.
"""

from __future__ import annotations

import signal
import threading
from types import FrameType
from typing import Iterable, Iterator, Optional, Tuple, TypeVar

T = TypeVar("T")

DEFAULT_SIGNALS: Tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)


class GracefulShutdown:
    """Context manager translating SIGTERM/SIGINT into a drain flag.

    Usage::

        with GracefulShutdown() as stop:
            engine.run(stop.wrap(records))   # stops ingesting when signaled
        # ...flush/checkpoint/exit 0...

    The first signal sets :attr:`triggered`; the second restores the
    previously installed handlers, so repeating the signal interrupts
    for real.  Handlers can only be installed from the main thread —
    elsewhere (tests, embedded use) the object degrades to a manually
    settable flag via :meth:`request`.
    """

    def __init__(self, signals: Iterable[int] = DEFAULT_SIGNALS) -> None:
        self._signals = tuple(signals)
        self._previous: dict = {}
        self.triggered = False
        self.signal_number: Optional[int] = None

    # -- handler lifecycle -------------------------------------------------

    def __enter__(self) -> "GracefulShutdown":
        if threading.current_thread() is threading.main_thread():
            for signum in self._signals:
                self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc) -> None:
        self._restore()

    def _restore(self) -> None:
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)
        self._previous.clear()

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        if self.triggered:
            # Second signal: stop being graceful about it.
            self._restore()
            return
        self.triggered = True
        self.signal_number = signum

    # -- the drain flag ----------------------------------------------------

    def request(self) -> None:
        """Set the flag programmatically (tests, embedding without signals)."""
        self.triggered = True

    def __bool__(self) -> bool:
        return self.triggered

    def wrap(self, iterable: Iterable[T]) -> Iterator[T]:
        """Yield from ``iterable`` until a shutdown is requested.

        The check runs *before* each item, so the item being processed
        when the signal lands is completed, and nothing after it starts.
        """
        for item in iterable:
            if self.triggered:
                return
            yield item
