"""``dart-agent``: one fleet vantage point.

A thin wrapper over the ``dart-stream`` machinery: same sources, same
checkpoints, same resume semantics — plus a :class:`FleetExporter`
hook that pushes periodic cumulative deltas (stats, flow counts,
closed analytics windows, telemetry) to a ``dart-collector``.
Examples::

    # Monitor one tap, report to the collector every second:
    dart-agent tap-east.pcap --collector 10.0.0.5:9500 \\
        --window-samples 8 --checkpoint east.ckpt

    # The agent id defaults to the capture's stem ("tap-east"); set it
    # explicitly when the path varies across restarts:
    dart-agent /captures/current.pcap --agent-id tap-east \\
        --collector unix:/run/dart/fleet.sock --follow

    # Resume after a crash — the collector replaces this agent's view
    # (cumulative deltas, new epoch), so nothing double-counts:
    dart-agent tap-east.pcap --collector 10.0.0.5:9500 \\
        --window-samples 8 --checkpoint east.ckpt --resume
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

from ..core import DartConfig
from ..engine import MonitorEngine, MonitorOptions, create
from ..fleet import CollectorClient, FleetExporter, FlowCountTap, WindowTee
from ..obs import emitter_from_args
from ..stream import (
    AnalyticsTap,
    CheckpointError,
    GracefulShutdown,
    ResumableSink,
    StreamRunner,
    read_checkpoint,
)
from .stream import (
    _fresh_sinks,
    build_analytics,
    build_leg_filter,
    build_parser as build_stream_parser,
    build_source,
)


def build_parser():
    parser = build_stream_parser()
    parser.prog = "dart-agent"
    parser.description = (
        "Continuously monitor one tap and export deltas to a "
        "dart-collector."
    )
    fleet = parser.add_argument_group("fleet")
    fleet.add_argument(
        "--collector", metavar="HOST:PORT|unix:PATH", required=False,
        help="the dart-collector wire endpoint (required)",
    )
    fleet.add_argument(
        "--agent-id", metavar="ID", default=None,
        help="this vantage point's stable identity (default: the "
             "capture file's stem; must not change across --resume)",
    )
    fleet.add_argument(
        "--push-interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between delta pushes (default 1.0)",
    )
    fleet.add_argument(
        "--heartbeat-interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between heartbeats when no delta is due "
             "(default 2.0)",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.inspect:
        from .stream import main as stream_main

        return stream_main(["--inspect", args.inspect])
    if not args.pcap:
        raise SystemExit("dart-agent: a capture file is required")
    if not args.collector:
        raise SystemExit("dart-agent: --collector is required")
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")

    agent_id = args.agent_id or Path(args.pcap).stem
    telemetry = emitter_from_args(args)
    resume_offset: Optional[int] = None
    capture_format: Optional[str] = None
    hook_state = None

    if args.resume:
        try:
            checkpoint = read_checkpoint(args.checkpoint)
        except CheckpointError as exc:
            raise SystemExit(f"dart-agent: cannot resume: {exc}")
        if checkpoint.finalized:
            raise SystemExit(
                "dart-agent: cannot resume: the run behind "
                f"{args.checkpoint} already finalized"
            )
        monitors = checkpoint.payload["monitors"]
        if args.monitor not in monitors:
            known = ", ".join(sorted(monitors))
            raise SystemExit(
                f"dart-agent: checkpoint holds {known!r}, not "
                f"{args.monitor!r} — resume with the monitor the run "
                "started with"
            )
        monitor = monitors[args.monitor]
        analytics = checkpoint.payload.get("analytics")
        hook_state = checkpoint.payload.get("hooks", {}).get("fleet")
        sinks = [
            ResumableSink.resume(state)
            for state in checkpoint.header["sinks"]
        ]
        source_state = checkpoint.header["source"]
        resume_offset = source_state["offset"]
        capture_format = source_state.get("format")
    else:
        analytics = build_analytics(args)
        options = MonitorOptions(
            config=DartConfig(
                rt_slots=args.rt_slots,
                pt_slots=args.pt_slots,
                pt_stages=args.stages,
                max_recirculations=args.recirc,
                track_handshake=args.handshake,
            ),
            leg_filter=build_leg_filter(args),
            track_handshake=args.handshake,
            analytics=analytics if args.monitor == "dart" else None,
        )
        monitor = create(args.monitor, options)
        sinks = _fresh_sinks(args)

    client = CollectorClient(args.collector)
    flow_tap = FlowCountTap()
    engine = MonitorEngine(chunk_size=args.chunk_size, telemetry=telemetry)
    local_window_sink = next((s for s in sinks if s.kind == "windows"), None)
    sample_sinks = [s for s in sinks if s.kind != "windows"]
    engine_sinks: List = list(sample_sinks) + [flow_tap]
    if analytics is not None and args.monitor != "dart":
        engine_sinks.append(AnalyticsTap(analytics))
    engine.add_monitor(monitor, name=args.monitor, sinks=engine_sinks)

    exporter = FleetExporter(
        client,
        agent_id,
        engine=engine,
        monitor_name=args.monitor,
        flow_tap=flow_tap,
        analytics=analytics,
        telemetry=telemetry,
        push_interval_s=args.push_interval,
        heartbeat_interval_s=args.heartbeat_interval,
    )
    exporter.restore(hook_state)

    window_sink = local_window_sink
    if analytics is not None:
        window_sink = WindowTee(
            sinks=[local_window_sink] if local_window_sink else [],
            taps=[exporter],
        )

    source = build_source(args, resume_offset, capture_format)

    with GracefulShutdown() as stop:
        runner = StreamRunner(
            engine,
            source,
            shutdown=stop,
            sinks=sinks,
            analytics=analytics,
            window_sink=window_sink,
            checkpoint_path=args.checkpoint,
            checkpoint_interval_s=args.checkpoint_interval,
            rotation_records=args.rotation_records,
            chunk_size=args.chunk_size,
            max_records=args.max_records,
            telemetry=telemetry,
            hooks=[exporter],
        )
        if args.resume:
            runner.restore(checkpoint.header)
        report = runner.run()

    ending = "stopped by signal" if report.stopped else "source exhausted"
    print(f"dart-agent[{agent_id}]: {ending} after {report.records} "
          f"records ({report.wall_seconds:.1f}s)")
    print(f"  deltas sent: {exporter.deltas_sent}  "
          f"deferred: {exporter.deltas_deferred}  "
          f"heartbeats: {exporter.heartbeats_sent}  "
          f"reconnects: {client.reconnects}")
    print(f"  rotations: {report.rotations}  "
          f"checkpoints: {report.checkpoints}  "
          f"windows shipped: {report.windows_shipped}")
    if report.stopped and args.checkpoint:
        print(f"  resume with: dart-agent {args.pcap} --collector "
              f"{args.collector} --checkpoint {args.checkpoint} --resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
