"""``dart-stream``: the long-lived continuous monitoring daemon.

Where ``dart-replay`` analyzes a finished capture and exits,
``dart-stream`` runs until told to stop: it can tail a *growing*
capture (``--follow``), replay an archived one at its recorded pace
(``--pace``), checkpoint its complete state on an interval and on
SIGTERM/SIGINT, and resume from a checkpoint sample-for-sample.
Examples::

    # Follow a live capture, checkpoint every 30 s:
    dart-stream live.pcap --follow --checkpoint state.ckpt --csv out.csv

    # Stop it (flushes, checkpoints, exits 0):
    kill -TERM <pid>

    # Continue exactly where it stopped, in a fresh process:
    dart-stream live.pcap --follow --checkpoint state.ckpt --resume

    # Rehearse continuous operation from an archived trace at 10x:
    dart-stream archive.pcap --pace 10 --checkpoint state.ckpt

    # What's in a checkpoint?
    dart-stream --inspect state.ckpt
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..core import DartConfig
from ..core.analytics import DstPrefixKey, MinFilterAnalytics
from ..core.pipeline import PrefixLegFilter
from ..engine import (
    MonitorEngine,
    MonitorOptions,
    available,
    create,
    get_spec,
)
from ..net.inet import ipv4_to_int, prefix_of
from ..net.packet import NS_PER_MS
from ..obs import add_telemetry_arguments, emitter_from_args
from .distargs import add_distribution_arguments, build_distribution
from ..stream import (
    AnalyticsTap,
    CaptureFileSource,
    CheckpointError,
    GracefulShutdown,
    PacedReplaySource,
    ResumableSink,
    StreamRunner,
    TailCaptureSource,
    read_checkpoint,
    read_header,
)


def _tcp_monitors() -> List[str]:
    return [n for n in available() if get_spec(n).record_kind == "tcp"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dart-stream",
        description="Continuously monitor RTTs from a capture stream, "
                    "with checkpoint/resume.",
    )
    parser.add_argument("pcap", nargs="?", help="capture file to stream from")
    parser.add_argument(
        "--inspect", metavar="CKPT",
        help="print a checkpoint's header as JSON and exit",
    )
    parser.add_argument(
        "--monitor", default="dart", choices=_tcp_monitors(),
        help="monitor to run (default: dart)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--follow", action="store_true",
        help="tail the capture as it grows (tcpdump-style rotation is "
             "handled; waits for the file to appear)",
    )
    mode.add_argument(
        "--pace", nargs="?", type=float, const=1.0, default=None,
        metavar="SPEED",
        help="replay honoring trace timestamps in wall-clock time, "
             "optionally scaled (e.g. --pace 10 = 10x real time)",
    )
    parser.add_argument(
        "--internal", metavar="PREFIX",
        help="internal network as a.b.c.d/len; enables leg separation",
    )
    parser.add_argument(
        "--leg", choices=["external", "internal", "both"], default="both",
        help="which leg(s) to measure (requires --internal)",
    )
    parser.add_argument("--rt-slots", type=int, default=None,
                        help="Range Tracker slots (default: unlimited)")
    parser.add_argument("--pt-slots", type=int, default=None,
                        help="Packet Tracker slots (default: unlimited)")
    parser.add_argument("--stages", type=int, default=1,
                        help="PT stage count (default 1)")
    parser.add_argument("--recirc", type=int, default=1,
                        help="max recirculations per record (default 1)")
    parser.add_argument("--handshake", action="store_true",
                        help="track SYN/SYN-ACK packets (+SYN mode)")
    window = parser.add_mutually_exclusive_group()
    window.add_argument("--window-samples", type=int, metavar="N",
                        help="min-filter analytics: close a window every "
                             "N samples per key")
    window.add_argument("--window-ms", type=float, metavar="MS",
                        help="min-filter analytics: close a window every "
                             "MS milliseconds per key")
    parser.add_argument("--window-prefix", type=int, metavar="LEN",
                        help="aggregate windows per destination /LEN "
                             "prefix instead of per flow")
    parser.add_argument("--retain-windows", type=int, default=64, metavar="N",
                        help="per-key closed-window index depth "
                             "(default 64; bounds daemon memory)")
    parser.add_argument("--csv", metavar="PATH",
                        help="stream samples to a CSV file")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="stream samples to a JSONL file")
    parser.add_argument("--reports", metavar="PATH",
                        help="stream binary report records")
    parser.add_argument("--windows", metavar="PATH",
                        help="stream closed analytics windows as JSONL "
                             "(requires --window-samples/--window-ms)")
    parser.add_argument("--checkpoint", metavar="PATH",
                        help="write state snapshots here (on an interval "
                             "and on SIGTERM/SIGINT)")
    parser.add_argument("--checkpoint-interval", type=float, default=30.0,
                        metavar="SECONDS",
                        help="seconds between periodic checkpoints "
                             "(default 30)")
    parser.add_argument("--resume", action="store_true",
                        help="restore state from --checkpoint and continue "
                             "the run sample-for-sample")
    parser.add_argument("--rotation-records", type=int, default=65536,
                        metavar="N",
                        help="drain retained samples/windows every N "
                             "records (default 65536; bounds memory)")
    parser.add_argument("--chunk-size", type=int, default=8192, metavar="N",
                        help="ingest chunk size (default 8192)")
    parser.add_argument("--fastpath", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="decode capture chunks columnar (numpy) — "
                             "same samples and checkpoints, higher "
                             "throughput; falls back to the object path "
                             "when unavailable (default: off)")
    parser.add_argument("--max-records", type=int, default=None, metavar="N",
                        help="stop (and finalize) after N records")
    parser.add_argument("--poll-interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="--follow: seconds between polls when caught "
                             "up (default 0.5)")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="--follow: give up (and finalize) after this "
                             "long with no new records (default: wait "
                             "forever)")
    add_distribution_arguments(parser)
    add_telemetry_arguments(parser)
    return parser


def build_analytics(args):
    """Min-filter windows, a distribution stage wrapping them, or None.

    With ``--hist-bins``/``--hist-edges``/``--quantiles`` the min-filter
    (when configured) becomes the distribution stage's delegated inner,
    so windows, checkpoints, and drains all keep working unchanged.
    """
    if args.window_samples is None and args.window_ms is None:
        if args.window_prefix is not None:
            raise SystemExit(
                "--window-prefix requires --window-samples or --window-ms"
            )
        if args.windows:
            raise SystemExit(
                "--windows requires --window-samples or --window-ms"
            )
        return build_distribution(args)
    key_fn = (
        DstPrefixKey(args.window_prefix)
        if args.window_prefix is not None
        else None
    )
    min_filter = MinFilterAnalytics(
        window_samples=args.window_samples,
        window_ns=(
            int(args.window_ms * NS_PER_MS)
            if args.window_ms is not None
            else None
        ),
        key_fn=key_fn,
        retain_windows=args.retain_windows,
    )
    return build_distribution(args, inner=min_filter)


def build_leg_filter(args) -> Optional[PrefixLegFilter]:
    if args.internal:
        network_text, _, length_text = args.internal.partition("/")
        length = int(length_text) if length_text else 32
        network = prefix_of(ipv4_to_int(network_text), length)
        legs = (
            ("external", "internal") if args.leg == "both" else (args.leg,)
        )
        # PrefixLegFilter (not make_leg_filter's closure) so the monitor
        # pickles into checkpoints.
        return PrefixLegFilter(network=network, prefix_len=length, legs=legs)
    if args.leg != "both":
        raise SystemExit("--leg requires --internal to orient the path")
    return None


def effective_fastpath(args) -> bool:
    """Resolve ``--fastpath`` against what this run can actually use.

    The columnar path needs numpy and a one-shot file pass (tailing
    and pacing are per-record by nature); anything else degrades to
    the object path with a note, never an error — the two paths are
    sample-identical.
    """
    if not args.fastpath:
        return False
    from ..net.columnar import HAVE_NUMPY

    reason = None
    if not HAVE_NUMPY:
        reason = "numpy is not installed"
    elif args.follow:
        reason = "--follow tails the capture per record"
    elif args.pace is not None:
        reason = "--pace replays per record"
    if reason is not None:
        print(f"dart-stream: --fastpath disabled ({reason}); "
              "using the object path", file=sys.stderr)
        return False
    return True


def build_source(args, resume_offset: Optional[int],
                 capture_format: Optional[str], fastpath: bool = False):
    if args.follow:
        return TailCaptureSource(
            args.pcap,
            poll_interval_s=args.poll_interval,
            idle_timeout_s=args.idle_timeout,
            capture_format=capture_format,
            resume_offset=resume_offset,
        )
    if args.pace is not None:
        return PacedReplaySource(
            args.pcap,
            speed=args.pace,
            capture_format=capture_format,
            resume_offset=resume_offset,
        )
    return CaptureFileSource(
        args.pcap,
        capture_format=capture_format,
        resume_offset=resume_offset,
        fastpath=fastpath,
    )


def _fresh_sinks(args) -> List[ResumableSink]:
    sinks = []
    if args.csv:
        sinks.append(ResumableSink("csv", args.csv))
    if args.jsonl:
        sinks.append(ResumableSink("jsonl", args.jsonl))
    if args.reports:
        sinks.append(ResumableSink("reports", args.reports))
    if args.windows:
        sinks.append(ResumableSink("windows", args.windows))
    return sinks


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.inspect:
        try:
            header = read_header(args.inspect)
        except CheckpointError as exc:
            raise SystemExit(f"dart-stream: {exc}")
        try:
            print(json.dumps(header, indent=2, sort_keys=True))
            sys.stdout.flush()
        except BrokenPipeError:
            # Reader (e.g. `head`) went away; suppress the exit-time
            # flush error too.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    if not args.pcap:
        raise SystemExit("dart-stream: a capture file is required")
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")

    telemetry = emitter_from_args(args)
    resume_offset: Optional[int] = None
    capture_format: Optional[str] = None

    if args.resume:
        try:
            checkpoint = read_checkpoint(args.checkpoint)
        except CheckpointError as exc:
            raise SystemExit(f"dart-stream: cannot resume: {exc}")
        if checkpoint.finalized:
            raise SystemExit(
                "dart-stream: cannot resume: the run behind "
                f"{args.checkpoint} already finalized"
            )
        monitors = checkpoint.payload["monitors"]
        if args.monitor not in monitors:
            known = ", ".join(sorted(monitors))
            raise SystemExit(
                f"dart-stream: checkpoint holds {known!r}, not "
                f"{args.monitor!r} — resume with the monitor the run "
                "started with"
            )
        monitor = monitors[args.monitor]
        analytics = checkpoint.payload.get("analytics")
        sinks = [
            ResumableSink.resume(state)
            for state in checkpoint.header["sinks"]
        ]
        source_state = checkpoint.header["source"]
        resume_offset = source_state["offset"]
        capture_format = source_state.get("format")
    else:
        analytics = build_analytics(args)
        options = MonitorOptions(
            config=DartConfig(
                rt_slots=args.rt_slots,
                pt_slots=args.pt_slots,
                pt_stages=args.stages,
                max_recirculations=args.recirc,
                track_handshake=args.handshake,
            ),
            leg_filter=build_leg_filter(args),
            track_handshake=args.handshake,
            analytics=analytics if args.monitor == "dart" else None,
        )
        monitor = create(args.monitor, options)
        sinks = _fresh_sinks(args)

    window_sink = next((s for s in sinks if s.kind == "windows"), None)
    sample_sinks = [s for s in sinks if s.kind != "windows"]
    engine = MonitorEngine(chunk_size=args.chunk_size, telemetry=telemetry)
    engine_sinks: List = list(sample_sinks)
    if analytics is not None and args.monitor != "dart":
        # Non-dart monitors don't embed analytics; feed it the routed
        # sample stream instead (on resume the restored analytics is
        # re-attached the same way).  The tap keeps the router's no-arg
        # flush/close teardown away from the analytics lifecycle.
        engine_sinks.append(AnalyticsTap(analytics))
    engine.add_monitor(monitor, name=args.monitor, sinks=engine_sinks)

    source = build_source(args, resume_offset, capture_format,
                          effective_fastpath(args))

    with GracefulShutdown() as stop:
        runner = StreamRunner(
            engine,
            source,
            shutdown=stop,
            sinks=sinks,
            analytics=analytics,
            window_sink=window_sink,
            checkpoint_path=args.checkpoint,
            checkpoint_interval_s=args.checkpoint_interval,
            rotation_records=args.rotation_records,
            chunk_size=args.chunk_size,
            max_records=args.max_records,
            telemetry=telemetry,
        )
        if args.resume:
            runner.restore(checkpoint.header)
        report = runner.run()

    ending = "stopped by signal" if report.stopped else "source exhausted"
    print(f"dart-stream: {ending} after {report.records} records "
          f"({report.wall_seconds:.1f}s)")
    snapshot = getattr(analytics, "distribution_snapshot", None)
    if callable(snapshot):
        distribution = snapshot()
        if distribution.count:
            quantiles = "  ".join(
                f"p{q:g}={rtt_ns / 1e6:.3f}ms"
                for q, rtt_ns in distribution.percentiles().items()
            )
            print(f"  distribution: {distribution.count} samples  "
                  f"{quantiles}")
    print(f"  rotations: {report.rotations}  "
          f"checkpoints: {report.checkpoints}  "
          f"windows shipped: {report.windows_shipped}")
    for path, count in report.sink_counts.items():
        print(f"  {path}: {count} rows")
    if report.stopped and args.checkpoint:
        print(f"  resume with: dart-stream {args.pcap} --checkpoint "
              f"{args.checkpoint} --resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
