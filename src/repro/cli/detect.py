"""``dart-detect``: run the event detectors over a capture file.

Replays a pcap/pcapng through Dart and feeds the sample stream to the
interception detector (per destination /24, windowed-min change
detection, paper §5.2) and the bufferbloat detector (§7), printing every
event with its timestamp.

Example::

    dart-detect capture.pcap --internal 10.0.0.0/8
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..core import Dart, DartConfig, dst_prefix_key, make_leg_filter
from ..detection import (
    BufferbloatConfig,
    BufferbloatDetector,
    DetectorConfig,
    InterceptionDetector,
)
from ..net.inet import format_prefix, ipv4_to_int, prefix_of
from ..net.pcapng import read_any_capture

SEC = 1_000_000_000


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dart-detect",
        description="Detect interception/bufferbloat events in a capture.",
    )
    parser.add_argument("pcap", help="capture file (pcap or pcapng)")
    parser.add_argument("--internal", metavar="PREFIX", required=True,
                        help="internal network as a.b.c.d/len")
    parser.add_argument("--prefix-len", type=int, default=24,
                        help="aggregation prefix for detection (default 24)")
    parser.add_argument("--window", type=int, default=8,
                        help="min-RTT window size in samples (default 8)")
    parser.add_argument("--rise-factor", type=float, default=2.0,
                        help="abrupt-rise threshold (default 2.0x)")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    network_text, _, length_text = args.internal.partition("/")
    network = ipv4_to_int(network_text)
    length = int(length_text) if length_text else 32
    network = prefix_of(network, length)

    dart = Dart(
        DartConfig(),
        leg_filter=make_leg_filter(
            lambda addr: addr < (1 << 32)
            and prefix_of(addr, length) == network,
            legs=("external",),
        ),
    )
    key_fn = dst_prefix_key(args.prefix_len)
    interception: dict = {}
    bloat = BufferbloatDetector(BufferbloatConfig(), key_fn=key_fn)

    events = 0
    for record in read_any_capture(args.pcap):
        for sample in dart.process(record):
            key = key_fn(sample)
            detector = interception.get(key)
            if detector is None:
                detector = InterceptionDetector(
                    DetectorConfig(window_samples=args.window,
                                   rise_factor=args.rise_factor)
                )
                interception[key] = detector
            seen = len(detector.events)
            detector.add(sample)
            for event in detector.events[seen:]:
                events += 1
                print(f"t={event.timestamp_ns / SEC:10.3f}s  "
                      f"{format_prefix(key, args.prefix_len):>20s}  "
                      f"interception:{event.state.value:<10s} "
                      f"min={event.min_rtt_ns / 1e6:.1f}ms "
                      f"baseline={event.baseline_ns / 1e6:.1f}ms")
            episode = bloat.add(sample)
            if episode is not None:
                events += 1
                print(f"t={episode.confirmed_at_ns / SEC:10.3f}s  "
                      f"{format_prefix(key, args.prefix_len):>20s}  "
                      "bufferbloat confirmed: p90 "
                      f"{episode.inflation:.1f}x over "
                      f"{episode.baseline_min_ns / 1e6:.1f}ms floor")

    print(f"\n{dart.stats.packets_processed} packets, "
          f"{dart.stats.samples} samples, "
          f"{len(interception)} prefixes monitored, {events} events",
          file=sys.stderr)
    confirmed = [
        format_prefix(key, args.prefix_len)
        for key, detector in interception.items()
        if detector.confirmed_at_ns is not None
    ]
    if confirmed:
        print(f"interception CONFIRMED on: {', '.join(confirmed)}")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
