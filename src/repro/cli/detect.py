"""``dart-detect``: run the event detectors over a capture file.

Replays a pcap/pcapng through an RTT monitor (Dart by default; any
registered TCP monitor via ``--monitor``) and routes the sample stream
to the interception detector (per destination /24, windowed-min change
detection, paper §5.2) and the bufferbloat detector (§7), printing every
event with its timestamp.

Example::

    dart-detect capture.pcap --internal 10.0.0.0/8
    dart-detect capture.pcap --internal 10.0.0.0/8 --monitor tcptrace
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..core import DartConfig, dst_prefix_key, make_leg_filter
from ..detection import (
    BufferbloatConfig,
    BufferbloatDetector,
    DetectorConfig,
    InterceptionDetector,
)
from ..engine import (
    MonitorEngine,
    MonitorOptions,
    available,
    create,
    get_spec,
)
from ..net.inet import format_prefix, ipv4_to_int, prefix_of
from ..net.pcapng import read_any_capture
from ..obs import add_telemetry_arguments, emitter_from_args

SEC = 1_000_000_000


def _tcp_monitors() -> list:
    return [n for n in available() if get_spec(n).record_kind == "tcp"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dart-detect",
        description="Detect interception/bufferbloat events in a capture.",
    )
    parser.add_argument("pcap", help="capture file (pcap or pcapng)")
    parser.add_argument("--monitor", choices=_tcp_monitors(), default="dart",
                        help="RTT monitor feeding the detectors "
                             "(default: dart)")
    parser.add_argument("--internal", metavar="PREFIX", required=True,
                        help="internal network as a.b.c.d/len")
    parser.add_argument("--prefix-len", type=int, default=24,
                        help="aggregation prefix for detection (default 24)")
    parser.add_argument("--window", type=int, default=8,
                        help="min-RTT window size in samples (default 8)")
    parser.add_argument("--rise-factor", type=float, default=2.0,
                        help="abrupt-rise threshold (default 2.0x)")
    add_telemetry_arguments(parser)
    return parser


class DetectionSink:
    """Routes samples into per-prefix interception + bufferbloat detectors.

    A :class:`repro.engine.SampleRouter` sink: the engine feeds it every
    sample the monitor emits, in emission order, and it prints events as
    they fire — the streaming behaviour of the old hand-rolled loop.
    """

    def __init__(self, *, prefix_len: int, window: int, rise_factor: float):
        self._prefix_len = prefix_len
        self._window = window
        self._rise_factor = rise_factor
        self._key_fn = dst_prefix_key(prefix_len)
        self.interception: dict = {}
        self.bloat = BufferbloatDetector(BufferbloatConfig(),
                                         key_fn=self._key_fn)
        self.events = 0

    def add(self, sample) -> None:
        key = self._key_fn(sample)
        detector = self.interception.get(key)
        if detector is None:
            detector = InterceptionDetector(
                DetectorConfig(window_samples=self._window,
                               rise_factor=self._rise_factor)
            )
            self.interception[key] = detector
        seen = len(detector.events)
        detector.add(sample)
        for event in detector.events[seen:]:
            self.events += 1
            print(f"t={event.timestamp_ns / SEC:10.3f}s  "
                  f"{format_prefix(key, self._prefix_len):>20s}  "
                  f"interception:{event.state.value:<10s} "
                  f"min={event.min_rtt_ns / 1e6:.1f}ms "
                  f"baseline={event.baseline_ns / 1e6:.1f}ms")
        episode = self.bloat.add(sample)
        if episode is not None:
            self.events += 1
            print(f"t={episode.confirmed_at_ns / SEC:10.3f}s  "
                  f"{format_prefix(key, self._prefix_len):>20s}  "
                  "bufferbloat confirmed: p90 "
                  f"{episode.inflation:.1f}x over "
                  f"{episode.baseline_min_ns / 1e6:.1f}ms floor")

    def confirmed_prefixes(self) -> list:
        return [
            format_prefix(key, self._prefix_len)
            for key, detector in self.interception.items()
            if detector.confirmed_at_ns is not None
        ]


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    network_text, _, length_text = args.internal.partition("/")
    network = ipv4_to_int(network_text)
    length = int(length_text) if length_text else 32
    network = prefix_of(network, length)

    options = MonitorOptions(
        config=DartConfig(),
        leg_filter=make_leg_filter(
            lambda addr: addr < (1 << 32)
            and prefix_of(addr, length) == network,
            legs=("external",),
        ),
    )
    monitor = create(args.monitor, options)
    sink = DetectionSink(prefix_len=args.prefix_len, window=args.window,
                         rise_factor=args.rise_factor)
    engine = MonitorEngine(telemetry=emitter_from_args(args))
    engine.add_monitor(monitor, name=args.monitor, sinks=[sink])
    engine.run(read_any_capture(args.pcap))

    print(f"\n{monitor.stats.packets_processed} packets, "
          f"{monitor.stats.samples} samples, "
          f"{len(sink.interception)} prefixes monitored, "
          f"{sink.events} events",
          file=sys.stderr)
    confirmed = sink.confirmed_prefixes()
    if confirmed:
        print(f"interception CONFIRMED on: {', '.join(confirmed)}")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
