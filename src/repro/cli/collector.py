"""``dart-collector``: merge a fleet of dart-agents into one view.

Listens for agent wire connections, merges their cumulative deltas
(stats by addition, flows deduped exactly-once across taps, windows
content-deduped), runs the BGP-interception detector over the merged
window stream, and serves the whole thing over HTTP: ``/metrics``
(Prometheus), ``/agents``, ``/summary``, ``/healthz``.  Examples::

    # Listen for agents on 9500, scrape on 9590:
    dart-collector --listen 0.0.0.0:9500 --http 0.0.0.0:9590

    # Ephemeral ports for scripted runs (ports land in the files):
    dart-collector --listen 127.0.0.1:0 --port-file wire.port \\
        --http 127.0.0.1:0 --http-port-file http.port

    # A finite fleet: exit (writing the merged summary) once all three
    # agents have sent their final deltas:
    dart-collector --listen 127.0.0.1:0 --port-file wire.port \\
        --expect-agents 3 --summary-json merged.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional

from ..detection.change import DetectorConfig
from ..fleet import FleetCollector, FleetHttpServer, FleetServer
from ..fleet.agent import parse_endpoint
from ..stream import GracefulShutdown


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dart-collector",
        description="Merge dart-agent deltas into one fleet-wide view.",
    )
    parser.add_argument(
        "--listen", metavar="HOST:PORT|unix:PATH", default="127.0.0.1:0",
        help="wire endpoint agents connect to (default 127.0.0.1:0 — "
             "an ephemeral port; see --port-file)",
    )
    parser.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="write the bound wire port here once listening",
    )
    parser.add_argument(
        "--http", metavar="HOST:PORT", default="127.0.0.1:0",
        help="HTTP exposition endpoint (default 127.0.0.1:0)",
    )
    parser.add_argument(
        "--http-port-file", metavar="PATH", default=None,
        help="write the bound HTTP port here once serving",
    )
    parser.add_argument(
        "--expect-agents", type=int, default=None, metavar="N",
        help="exit once N agents have sent their final delta "
             "(default: run until SIGTERM/SIGINT)",
    )
    parser.add_argument(
        "--agent-timeout", type=float, default=10.0, metavar="SECONDS",
        help="seconds without a frame before an agent's liveness gauge "
             "drops (state is kept; default 10)",
    )
    parser.add_argument(
        "--rise-factor", type=float, default=2.0,
        help="detector: 'abrupt' = min RTT rises by this factor "
             "(default 2.0)",
    )
    parser.add_argument(
        "--baseline-windows", type=int, default=3,
        help="detector: windows used to establish the baseline "
             "(default 3)",
    )
    parser.add_argument(
        "--summary-json", metavar="PATH", default=None,
        help="write the merged summary document here at exit",
    )
    parser.add_argument(
        "--summary-windows", action="store_true",
        help="embed the full merged window list in --summary-json "
             "(exact but proportional to run length)",
    )
    return parser


def _write_port_file(path: str, port: int) -> None:
    """Atomic write so a polling reader never sees a half-written port."""
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        handle.write(f"{port}\n")
    os.replace(tmp, path)


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.expect_agents is not None and args.expect_agents <= 0:
        raise SystemExit("--expect-agents must be positive")

    tcp, unix_path = parse_endpoint(args.listen)
    collector = FleetCollector(
        agent_timeout_s=args.agent_timeout,
        detector_config=DetectorConfig(
            rise_factor=args.rise_factor,
            baseline_windows=args.baseline_windows,
        ),
    )
    if unix_path is not None:
        server = FleetServer(collector, unix_path=unix_path)
    else:
        server = FleetServer(collector, host=tcp[0], port=tcp[1])
    server.start()
    if args.port_file and unix_path is None:
        _write_port_file(args.port_file, server.address[1])

    http_host, http_unix = parse_endpoint(args.http)
    if http_unix is not None:
        raise SystemExit("dart-collector: --http must be HOST:PORT")
    http = FleetHttpServer(collector, host=http_host[0], port=http_host[1])
    http.start()
    if args.http_port_file:
        _write_port_file(args.http_port_file, http.address[1])

    print(f"dart-collector: wire on {args.listen}"
          f"{'' if unix_path else f' (port {server.address[1]})'}, "
          f"http on port {http.address[1]}", flush=True)

    try:
        with GracefulShutdown() as stop:
            while not stop.triggered:
                if (
                    args.expect_agents is not None
                    and collector.finalized_agents() >= args.expect_agents
                ):
                    break
                time.sleep(0.1)
    finally:
        server.close()
        http.close()
        if unix_path is not None:
            try:
                os.unlink(unix_path)
            except OSError:
                pass

    summary = collector.to_summary(include_windows=args.summary_windows)
    if args.summary_json:
        tmp = f"{args.summary_json}.tmp"
        with open(tmp, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, args.summary_json)

    flows = summary["flows"]
    print(f"dart-collector: {len(summary['agents'])} agent(s), "
          f"{summary['frames_total']} frames "
          f"({summary['stale_deltas_dropped']} stale dropped)")
    print(f"  flows: {flows['unique']} unique, {flows['duplicates']} "
          f"multi-tap; samples: {flows['exactly_once_samples']} "
          f"exactly-once of {flows['attributed_samples']} attributed")
    print(f"  windows: {summary['windows']} merged, "
          f"{summary['windows_lost']} lost; detector: "
          f"{summary['detector']['state']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
