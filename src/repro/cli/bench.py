"""``dart-bench``: quick table-configuration sweeps from the command line.

A lightweight version of the §6.2 benchmark harness: generates a
synthetic campus trace and sweeps one knob (PT size, stage count, or the
recirculation budget), printing the paper's three metrics per point.
``--monitor`` appends reference rows for other registered monitors, all
evaluated in one shared engine pass over the same trace.

Examples::

    dart-bench --sweep pt-size --connections 1500
    dart-bench --sweep stages --monitor strawman --monitor dapper
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..analysis import evaluate_dart, render_table
from ..baselines import tcptrace_const
from ..core import Dart, DartConfig, make_leg_filter
from ..engine import (
    MonitorEngine,
    MonitorOptions,
    available,
    create,
    get_spec,
)
from ..obs import add_telemetry_arguments, emitter_from_args
from ..traces import CampusTraceConfig, generate_campus_trace, replay
from .distargs import (
    add_distribution_arguments,
    distribution_factory_from_args,
    distribution_rows,
    monitor_distribution,
)

LARGE_RT = 1 << 18


def _tcp_monitors() -> list:
    return [n for n in available() if get_spec(n).record_kind == "tcp"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dart-bench",
        description="Sweep one Dart table knob over a synthetic trace.",
    )
    parser.add_argument("--sweep", choices=["pt-size", "stages", "recirc"],
                        default="pt-size")
    parser.add_argument(
        "--monitor", action="append", dest="monitors", metavar="NAME",
        choices=_tcp_monitors(),
        help="also evaluate these monitors on the same trace as reference "
             "rows (repeatable; they run side-by-side in one engine pass)",
    )
    parser.add_argument("--connections", type=int, default=1000,
                        help="synthetic trace size (default 1000)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--pt-slots", type=int, default=1 << 10,
                        help="fixed PT size for stages/recirc sweeps")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="run each sweep point as N flow-sharded "
                             "parallel Dart instances (default 1 = serial)")
    parser.add_argument("--parallel", choices=["process", "thread", "serial"],
                        default="process",
                        help="execution mode for --shards > 1 "
                             "(default: process)")
    parser.add_argument("--transport", choices=["shm", "queue"],
                        default="shm",
                        help="process-mode byte transport: shared-memory "
                             "ring or mp.Queue fallback (default: shm)")
    parser.add_argument("--fastpath", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="evaluate each sweep point through the "
                             "columnar engine — same metrics, higher "
                             "throughput; falls back to the object path "
                             "when numpy is unavailable (default: off)")
    add_distribution_arguments(parser)
    add_telemetry_arguments(parser)
    return parser


def sweep_points(args):
    if args.sweep == "pt-size":
        return [
            (f"2^{n}", DartConfig(rt_slots=LARGE_RT, pt_slots=1 << n,
                                  max_recirculations=1))
            for n in range(6, 15)
        ]
    if args.sweep == "stages":
        return [
            (str(k), DartConfig(rt_slots=LARGE_RT, pt_slots=args.pt_slots,
                                pt_stages=k, max_recirculations=1))
            for k in range(1, 9)
        ]
    return [
        (str(r), DartConfig(rt_slots=LARGE_RT, pt_slots=args.pt_slots,
                            pt_stages=8, max_recirculations=r))
        for r in range(1, 9)
    ]


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    print(f"generating campus trace ({args.connections} connections, "
          f"seed {args.seed})...", file=sys.stderr)
    trace = generate_campus_trace(
        CampusTraceConfig(connections=args.connections, seed=args.seed)
    )

    def leg():
        return make_leg_filter(trace.internal.is_internal,
                               legs=("external",))

    baseline = tcptrace_const(leg_filter=leg())
    replay(trace.records, baseline)
    reference = [s.rtt_ns for s in baseline.samples]
    print(f"trace: {trace.packets} packets; baseline samples: "
          f"{len(reference)}", file=sys.stderr)

    fastpath = args.fastpath
    if fastpath:
        from ..net.columnar import HAVE_NUMPY

        if not HAVE_NUMPY:
            print("dart-bench: --fastpath disabled (numpy is not "
                  "installed); using the object path", file=sys.stderr)
            fastpath = False

    from ..core.analytics import CollectAllAnalytics

    # evaluate_dart reads per-sample RTTs, so the distribution stage
    # wraps a CollectAll inner (same arrangement as dart-replay).
    dist_factory = distribution_factory_from_args(
        args, inner_factory=CollectAllAnalytics
    )

    def build_monitor(config):
        if args.shards > 1:
            from ..cluster import ShardedDart

            return ShardedDart(config, shards=args.shards,
                               parallel=args.parallel,
                               analytics_factory=dist_factory,
                               transport=args.transport, leg_filter=leg(),
                               fastpath=fastpath)
        analytics = dist_factory() if dist_factory is not None else None
        return Dart(config, analytics=analytics, leg_filter=leg())

    extra = list(dict.fromkeys(args.monitors or ()))
    emitter = emitter_from_args(args)
    points = [(label, build_monitor(config))
              for label, config in sweep_points(args)]
    reference_monitors = []
    from ..stream import GracefulShutdown

    with GracefulShutdown() as stop:
        # SIGTERM/SIGINT stops the sweep at the next record/point; what
        # has been measured so far still finalizes and prints.
        if emitter is not None:
            # Telemetry wants one observable trace pass: every sweep
            # point and reference monitor rides the same engine, so the
            # emitter sees the whole run (per-monitor chunk timings
            # included).
            engine = MonitorEngine(telemetry=emitter)
            options = MonitorOptions(leg_filter=leg())
            for label, dart in points:
                engine.add_monitor(dart, name=f"sweep-{label}")
            for name in extra:
                monitor = create(name, options)
                engine.add_monitor(monitor, name=name)
                reference_monitors.append((name, monitor))
            if fastpath:
                from itertools import islice

                from ..net.columnar import records_to_columns
                from ..traces.replay import REPLAY_CHUNK

                iterator = iter(stop.wrap(trace.records))
                while True:
                    chunk = list(islice(iterator, REPLAY_CHUNK))
                    if not chunk:
                        break
                    engine.ingest_columns(records_to_columns(chunk))
                engine.finish()
            else:
                engine.run(stop.wrap(trace.records))
        else:
            for _, dart in points:
                if stop.triggered:
                    break
                replay(trace.records, dart, fastpath=fastpath)
            if extra:
                # All reference monitors share one engine pass.
                engine = MonitorEngine()
                options = MonitorOptions(leg_filter=leg())
                for name in extra:
                    monitor = create(name, options)
                    engine.add_monitor(monitor, name=name)
                    reference_monitors.append((name, monitor))
                engine.run(stop.wrap(trace.records))
    if stop.triggered:
        print("dart-bench: interrupted — reporting what completed",
              file=sys.stderr)

    rows = []
    for label, dart in points:
        perf = evaluate_dart(
            reference,
            [s.rtt_ns for s in dart.samples],
            recirculations=dart.stats.recirculations,
            packets_processed=dart.stats.packets_processed,
        )
        rows.append([
            label, perf.error_p50, perf.error_p95, perf.error_p99,
            perf.error_worst_5_95, perf.fraction_collected,
            perf.recirculations_per_packet,
        ])
    for name, monitor in reference_monitors:
        stats = monitor.stats
        perf = evaluate_dart(
            reference,
            [s.rtt_ns for s in monitor.samples],
            recirculations=getattr(stats, "recirculations", 0),
            packets_processed=stats.packets_processed,
        )
        rows.append([
            f"[{name}]", perf.error_p50, perf.error_p95,
            perf.error_p99, perf.error_worst_5_95,
            perf.fraction_collected, perf.recirculations_per_packet,
        ])
    print(render_table(
        [args.sweep, "err p50 (%)", "err p95 (%)", "err p99 (%)",
         "worst [5,95] (%)", "fraction (%)", "recirc/pkt"],
        rows,
        title=(f"dart-bench sweep: {args.sweep}"
               + (f" ({args.shards} shards, {args.parallel})"
                  if args.shards > 1 else "")),
        float_format="{:.3f}",
    ))
    if dist_factory is not None and points:
        # One distribution table per sweep — each point carries its own
        # histogram/sketch stage over the identical trace.
        print()
        for label, dart in points:
            distribution = monitor_distribution(dart)
            if distribution is None:
                continue
            print(render_table(
                ["quantity", "value"], distribution_rows(distribution),
                title=f"distribution @ {args.sweep}={label}",
            ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
