"""``dart-replay``: analyze a capture file from the command line.

Runs one or more registered RTT monitors over a pcap/pcapng in a single
trace pass through :class:`repro.engine.MonitorEngine`.  Examples::

    dart-replay capture.pcap --internal 10.0.0.0/8 --leg external \\
        --pt-slots 4096 --recirc 2

    dart-replay capture.pcap --monitor dart --monitor tcptrace

    dart-replay quic.pcap --monitor spinbit --internal 10.0.0.0/8

Prints a summary (sample count, percentiles, overhead counters) or, with
``--dump``, one line per RTT sample.  With several ``--monitor`` flags a
side-by-side comparison table follows the primary monitor's summary.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..analysis import percentile, render_table
from ..core import DartConfig, make_leg_filter
from ..engine import MonitorEngine, MonitorOptions, available, create, get_spec
from ..net.inet import ipv4_to_int, prefix_of
from ..obs import add_telemetry_arguments, emitter_from_args
from .distargs import (
    add_distribution_arguments,
    distribution_factory_from_args,
    distribution_rows,
    monitor_distribution,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dart-replay",
        description="Replay a capture through RTT monitors and report "
                    "samples.",
    )
    parser.add_argument("pcap", help="capture file to analyze")
    parser.add_argument(
        "--monitor", action="append", dest="monitors", metavar="NAME",
        choices=available(),
        help="monitor(s) to run in one trace pass (repeatable; default: "
             f"dart; choices: {', '.join(available())})",
    )
    parser.add_argument(
        "--internal", metavar="PREFIX",
        help="internal network as a.b.c.d/len; enables leg separation "
             "(TCP monitors) and orients the spin-bit observer (spinbit)",
    )
    parser.add_argument(
        "--leg", choices=["external", "internal", "both"], default="both",
        help="which leg(s) to measure (requires --internal)",
    )
    parser.add_argument("--rt-slots", type=int, default=None,
                        help="Range Tracker slots (default: unlimited)")
    parser.add_argument("--pt-slots", type=int, default=None,
                        help="Packet Tracker slots (default: unlimited)")
    parser.add_argument("--stages", type=int, default=1,
                        help="PT stage count (default 1)")
    parser.add_argument("--recirc", type=int, default=1,
                        help="max recirculations per record (default 1)")
    parser.add_argument("--handshake", action="store_true",
                        help="track SYN/SYN-ACK packets (+SYN mode)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="flow-shard each TCP monitor across N parallel "
                             "instances (default 1 = serial)")
    parser.add_argument("--parallel", choices=["process", "thread", "serial"],
                        default="process",
                        help="execution mode for --shards > 1 "
                             "(default: process)")
    parser.add_argument("--transport", choices=["shm", "queue"],
                        default="shm",
                        help="process-mode byte transport: shared-memory "
                             "ring or mp.Queue fallback (default: shm)")
    parser.add_argument("--fastpath", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="decode the capture columnar (numpy) — same "
                             "samples and stats, higher throughput; falls "
                             "back to the object path when unavailable "
                             "(default: off)")
    parser.add_argument("--dump", action="store_true",
                        help="print one line per RTT sample")
    parser.add_argument("--csv", metavar="PATH",
                        help="also stream samples to a CSV file")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="also stream samples to a JSONL file")
    parser.add_argument("--reports", metavar="PATH",
                        help="also stream binary report records (the "
                             "switch-to-collector format)")
    parser.add_argument("--flows", type=int, metavar="N", default=0,
                        help="print per-flow summaries for the N busiest "
                             "flows")
    add_distribution_arguments(parser)
    add_telemetry_arguments(parser)
    return parser


def parse_prefix(text: str):
    network_text, _, length_text = text.partition("/")
    network = ipv4_to_int(network_text)
    length = int(length_text) if length_text else 32
    return prefix_of(network, length), length


def build_leg_filter(args):
    if args.internal:
        network, length = parse_prefix(args.internal)
        legs = (("external", "internal") if args.leg == "both"
                else (args.leg,))
        return make_leg_filter(
            lambda addr: prefix_of(addr, length) == network, legs=legs
        )
    if args.leg != "both":
        raise SystemExit("--leg requires --internal to orient the path")
    return None


def build_options(args) -> MonitorOptions:
    """One options bundle configuring every selected monitor."""
    is_client = None
    if args.internal:
        network, length = parse_prefix(args.internal)

        def is_client(addr: int) -> bool:
            return prefix_of(addr, length) == network

    from ..core.analytics import CollectAllAnalytics

    return MonitorOptions(
        config=DartConfig(
            rt_slots=args.rt_slots,
            pt_slots=args.pt_slots,
            pt_stages=args.stages,
            max_recirculations=args.recirc,
            track_handshake=args.handshake,
        ),
        leg_filter=build_leg_filter(args),
        track_handshake=args.handshake,
        is_client=is_client,
        # The distribution stage wraps a CollectAll inner so the replay
        # summary's per-sample reads (`monitor.samples`) keep working.
        analytics_factory=distribution_factory_from_args(
            args, inner_factory=CollectAllAnalytics
        ),
    )


def build_monitor(name: str, args, options: MonitorOptions):
    """One serial monitor, or a flow-sharded cluster of them."""
    if args.shards > 1:
        from ..cluster import ShardedMonitor
        from ..engine import monitor_factory

        return ShardedMonitor(
            shards=args.shards,
            parallel=args.parallel,
            transport=args.transport,
            monitor_factory=monitor_factory(name, options),
            fastpath=args.fastpath,
        )
    return create(name, options)


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.shards < 1:
        raise SystemExit("--shards must be positive")
    monitors = list(dict.fromkeys(args.monitors or ["dart"]))
    kinds = {get_spec(name).record_kind for name in monitors}
    if len(kinds) > 1:
        raise SystemExit(
            "cannot mix TCP monitors with spinbit in one replay: a capture "
            "decodes as either TCP segments or QUIC datagrams"
        )
    kind = kinds.pop()
    if kind == "quic" and args.shards > 1:
        raise SystemExit("--shards applies to TCP monitors only")
    options = build_options(args)

    from ..export import CsvSink, FlowSummarySink, JsonlSink, ReportFileSink

    extra_sinks = []
    if args.csv:
        extra_sinks.append(CsvSink(args.csv))
    if args.jsonl:
        extra_sinks.append(JsonlSink(args.jsonl))
    if args.reports:
        extra_sinks.append(ReportFileSink(args.reports))
    summaries = FlowSummarySink() if args.flows else None
    if summaries is not None:
        extra_sinks.append(summaries)

    engine = MonitorEngine(telemetry=emitter_from_args(args))
    for index, name in enumerate(monitors):
        engine.add_monitor(
            build_monitor(name, args, options),
            name=name,
            # Export sinks carry one stream: the primary monitor's.
            sinks=extra_sinks if index == 0 else (),
            record_kind=kind,
        )

    fastpath = args.fastpath
    if fastpath:
        from ..net.columnar import HAVE_NUMPY

        reason = None
        if not HAVE_NUMPY:
            reason = "numpy is not installed"
        elif kind == "quic":
            reason = "spinbit decodes QUIC datagrams"
        if reason is not None:
            print(f"dart-replay: --fastpath disabled ({reason}); "
                  "using the object path", file=sys.stderr)
            fastpath = False

    from ..stream import GracefulShutdown

    with GracefulShutdown() as stop:
        # A SIGTERM/SIGINT stops ingest at the next record; the engine
        # then finalizes and flushes sinks normally, so an interrupted
        # replay still exits 0 with complete partial results.
        if fastpath:
            from itertools import islice

            from ..core.pipeline import TRACE_CHUNK
            from ..net.pcapng import read_any_frames

            frames = iter(stop.wrap(read_any_frames(args.pcap)))
            while True:
                chunk = list(islice(frames, TRACE_CHUNK))
                if not chunk:
                    break
                engine.ingest_wire_chunk(chunk, fastpath=True)
            report = engine.finish()
        else:
            if kind == "quic":
                from ..quic import read_quic_capture

                records = read_quic_capture(args.pcap)
            else:
                from ..net.pcapng import read_any_capture

                records = read_any_capture(args.pcap)
            report = engine.run(stop.wrap(records))
    if stop.triggered:
        print("dart-replay: interrupted — finalized and flushed after "
              f"{report.records} records", file=sys.stderr)
    primary = engine[monitors[0]].monitor
    samples = primary.samples

    if args.dump:
        for sample in samples:
            leg = sample.leg or "-"
            print(f"{sample.timestamp_ns / 1e9:.6f} "
                  f"{sample.flow.describe()} rtt_ms={sample.rtt_ms:.3f} "
                  f"leg={leg}{' handshake' if sample.handshake else ''}")
        return 0

    rtts = [s.rtt_ms for s in samples]
    stats = primary.stats
    rows = [
        ["packets replayed", report.records],
        ["replay rate (pkts/s)", f"{report.records_per_second:,.0f}"],
        ["RTT samples", len(rtts)],
    ]
    if args.shards > 1:
        rows.append(["shards", f"{args.shards} ({args.parallel})"])
    if rtts:
        rows += [
            ["median RTT (ms)", f"{percentile(rtts, 50):.3f}"],
            ["p95 RTT (ms)", f"{percentile(rtts, 95):.3f}"],
            ["p99 RTT (ms)", f"{percentile(rtts, 99):.3f}"],
            ["max RTT (ms)", f"{max(rtts):.3f}"],
        ]
    recirc = getattr(stats, "recirculations_per_packet", None)
    if callable(recirc):
        rows.append(["recirculations/pkt", f"{recirc():.4f}"])
    range_collapses = getattr(primary, "range_collapses", None)
    if callable(range_collapses):
        rows.append(["range collapses", range_collapses()])
    elif getattr(primary, "range_tracker", None) is not None:
        rows.append(
            ["range collapses", primary.range_tracker.stats.total_collapses]
        )
    ignored_syn = getattr(stats, "ignored_syn", None)
    if ignored_syn is not None:
        rows.append(["SYNs ignored", ignored_syn])
    distribution = monitor_distribution(primary)
    if distribution is not None:
        rows += distribution_rows(distribution)
    title = "dart-replay" if len(monitors) == 1 else (
        f"dart-replay ({monitors[0]})"
    )
    print(render_table(["quantity", "value"], rows, title=title))
    if len(monitors) > 1:
        comparison = []
        for run in engine.runs:
            run_rtts = [s.rtt_ms for s in run.monitor.samples]
            comparison.append([
                run.name,
                len(run_rtts),
                f"{percentile(run_rtts, 50):.3f}" if run_rtts else "-",
                f"{percentile(run_rtts, 95):.3f}" if run_rtts else "-",
                f"{percentile(run_rtts, 99):.3f}" if run_rtts else "-",
            ])
        print()
        print(render_table(
            ["monitor", "samples", "median (ms)", "p95 (ms)", "p99 (ms)"],
            comparison,
            title="monitor comparison (one trace pass)",
        ))
    if summaries is not None:
        print()
        print(f"busiest {args.flows} flows:")
        for summary in summaries.top_by_samples(args.flows):
            print("  " + summary.describe())
    return 0


if __name__ == "__main__":
    sys.exit(main())
