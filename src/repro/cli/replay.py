"""``dart-replay``: analyze a pcap file with Dart from the command line.

Example::

    dart-replay capture.pcap --internal 10.0.0.0/8 --leg external \\
        --pt-slots 4096 --recirc 2

Prints a summary (sample count, percentiles, overhead counters) or, with
``--dump``, one line per RTT sample.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..analysis import percentile, render_table
from ..core import Dart, DartConfig, make_leg_filter
from ..net.inet import ipv4_to_int, prefix_of
from ..traces import replay_pcap


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dart-replay",
        description="Replay a pcap through Dart and report RTT samples.",
    )
    parser.add_argument("pcap", help="capture file to analyze")
    parser.add_argument(
        "--internal", metavar="PREFIX",
        help="internal network as a.b.c.d/len; enables leg separation",
    )
    parser.add_argument(
        "--leg", choices=["external", "internal", "both"], default="both",
        help="which leg(s) to measure (requires --internal)",
    )
    parser.add_argument("--rt-slots", type=int, default=None,
                        help="Range Tracker slots (default: unlimited)")
    parser.add_argument("--pt-slots", type=int, default=None,
                        help="Packet Tracker slots (default: unlimited)")
    parser.add_argument("--stages", type=int, default=1,
                        help="PT stage count (default 1)")
    parser.add_argument("--recirc", type=int, default=1,
                        help="max recirculations per record (default 1)")
    parser.add_argument("--handshake", action="store_true",
                        help="track SYN/SYN-ACK packets (+SYN mode)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="flow-shard the trace across N parallel Dart "
                             "instances (default 1 = serial)")
    parser.add_argument("--parallel", choices=["process", "thread", "serial"],
                        default="process",
                        help="execution mode for --shards > 1 "
                             "(default: process)")
    parser.add_argument("--dump", action="store_true",
                        help="print one line per RTT sample")
    parser.add_argument("--csv", metavar="PATH",
                        help="also stream samples to a CSV file")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="also stream samples to a JSONL file")
    parser.add_argument("--reports", metavar="PATH",
                        help="also stream binary report records (the "
                             "switch-to-collector format)")
    parser.add_argument("--flows", type=int, metavar="N", default=0,
                        help="print per-flow summaries for the N busiest "
                             "flows")
    return parser


def parse_prefix(text: str):
    network_text, _, length_text = text.partition("/")
    network = ipv4_to_int(network_text)
    length = int(length_text) if length_text else 32
    return prefix_of(network, length), length


def build_leg_filter(args):
    if args.internal:
        network, length = parse_prefix(args.internal)
        legs = (("external", "internal") if args.leg == "both"
                else (args.leg,))
        return make_leg_filter(
            lambda addr: prefix_of(addr, length) == network, legs=legs
        )
    if args.leg != "both":
        raise SystemExit("--leg requires --internal to orient the path")
    return None


def build_dart(args):
    """Build the monitor: a serial Dart, or a ShardedDart for --shards."""
    config = DartConfig(
        rt_slots=args.rt_slots,
        pt_slots=args.pt_slots,
        pt_stages=args.stages,
        max_recirculations=args.recirc,
        track_handshake=args.handshake,
    )
    leg_filter = build_leg_filter(args)
    if getattr(args, "shards", 1) > 1:
        from ..cluster import ShardedDart

        return ShardedDart(config, shards=args.shards,
                           parallel=args.parallel, leg_filter=leg_filter)
    return Dart(config, leg_filter=leg_filter)


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.shards < 1:
        raise SystemExit("--shards must be positive")
    dart = build_dart(args)
    sharded = args.shards > 1

    from ..export import CsvSink, FlowSummarySink, JsonlSink, ReportFileSink

    extra_sinks = []
    if args.csv:
        extra_sinks.append(CsvSink(args.csv))
    if args.jsonl:
        extra_sinks.append(JsonlSink(args.jsonl))
    if args.reports:
        extra_sinks.append(ReportFileSink(args.reports))
    summaries = FlowSummarySink() if args.flows else None
    if summaries is not None:
        extra_sinks.append(summaries)
    if not sharded:
        collector = dart.analytics
        if extra_sinks:
            from ..core import TeeSink

            dart.analytics = TeeSink([collector] + extra_sinks)

    report = replay_pcap(args.pcap, dart)
    if sharded:
        # Workers keep their sinks out of subprocesses; the merged,
        # time-ordered sample stream feeds the export sinks here.
        samples = dart.samples
        for sink in extra_sinks:
            for sample in samples:
                sink.add(sample)
    else:
        samples = collector.samples
    for sink in extra_sinks:
        flush = getattr(sink, "flush", None)
        if flush is not None:
            flush()
        close = getattr(sink, "close", None)
        if close is not None:
            close()

    if args.dump:
        for sample in samples:
            leg = sample.leg or "-"
            print(f"{sample.timestamp_ns / 1e9:.6f} "
                  f"{sample.flow.describe()} rtt_ms={sample.rtt_ms:.3f} "
                  f"leg={leg}{' handshake' if sample.handshake else ''}")
        return 0

    rtts = [s.rtt_ms for s in samples]
    stats = dart.stats
    rows = [
        ["packets replayed", report.packets],
        ["replay rate (pkts/s)", f"{report.packets_per_second:,.0f}"],
        ["RTT samples", len(rtts)],
    ]
    if sharded:
        rows.append(["shards", f"{args.shards} ({args.parallel})"])
    if rtts:
        rows += [
            ["median RTT (ms)", f"{percentile(rtts, 50):.3f}"],
            ["p95 RTT (ms)", f"{percentile(rtts, 95):.3f}"],
            ["p99 RTT (ms)", f"{percentile(rtts, 99):.3f}"],
            ["max RTT (ms)", f"{max(rtts):.3f}"],
        ]
    collapses = (dart.range_collapses() if sharded
                 else dart.range_tracker.stats.total_collapses)
    rows += [
        ["recirculations/pkt", f"{stats.recirculations_per_packet():.4f}"],
        ["range collapses", collapses],
        ["SYNs ignored", stats.ignored_syn],
    ]
    print(render_table(["quantity", "value"], rows, title="dart-replay"))
    if summaries is not None:
        print()
        print(f"busiest {args.flows} flows:")
        for summary in summaries.top_by_samples(args.flows):
            print("  " + summary.describe())
    return 0


if __name__ == "__main__":
    sys.exit(main())
