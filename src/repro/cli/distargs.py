"""Shared ``--hist-*``/``--quantiles`` wiring for the CLI entry points.

``dart-replay``, ``dart-bench``, and ``dart-stream`` all expose the same
distribution-analytics knobs; this module owns the argparse group, the
flag-to-:class:`~repro.core.hist.HistogramSpec` translation, and the
summary-table rows so the three front-ends cannot drift apart.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Tuple

from ..core.analytics import DstPrefixKey
from ..core.hist import (
    DEFAULT_BINS,
    DistributionAnalytics,
    DistributionFactory,
    HistogramSpec,
)

#: Default per-key aggregation: destination /24 prefixes (the paper's
#: rack/subnet granularity); ``--hist-prefix 0`` disables keying.
DEFAULT_HIST_PREFIX = 24


def add_distribution_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the distribution-analytics flag group on ``parser``."""
    group = parser.add_argument_group(
        "distribution analytics",
        "fixed-bin RTT histogram + mergeable quantile sketch "
        "(switch-feasible: O(1) per sample, no per-sample retention)",
    )
    edges = group.add_mutually_exclusive_group()
    edges.add_argument(
        "--hist-bins", type=int, default=None, metavar="N",
        help=f"enable the histogram stage with N log-spaced bins "
             f"(e.g. {DEFAULT_BINS})",
    )
    edges.add_argument(
        "--hist-edges", metavar="MS,MS,...",
        help="enable the histogram stage with explicit bin edges in "
             "milliseconds (e.g. 0.1,1,10,100)",
    )
    group.add_argument(
        "--quantiles", metavar="P,P,...",
        help="sketch-estimated percentiles to report/export "
             "(e.g. 50,95,99; implies the distribution stage)",
    )
    group.add_argument(
        "--hist-prefix", type=int, default=DEFAULT_HIST_PREFIX,
        metavar="LEN",
        help="key per-prefix series by destination /LEN "
             f"(default {DEFAULT_HIST_PREFIX}; 0 = aggregate only)",
    )
    group.add_argument(
        "--sketch-alpha", type=float, default=0.01, metavar="ALPHA",
        help="sketch relative-accuracy guarantee (default 0.01 = 1%%)",
    )


def distribution_enabled(args: argparse.Namespace) -> bool:
    return (
        getattr(args, "hist_bins", None) is not None
        or getattr(args, "hist_edges", None) is not None
        or getattr(args, "quantiles", None) is not None
    )


def _parse_quantiles(text: Optional[str]) -> Optional[Tuple[float, ...]]:
    if text is None:
        return None
    try:
        values = tuple(
            float(part) for part in text.split(",") if part.strip()
        )
    except ValueError:
        raise SystemExit(f"bad --quantiles value: {text!r}") from None
    if not values:
        raise SystemExit("--quantiles needs at least one percentile")
    return values


def distribution_factory_from_args(
    args: argparse.Namespace,
    inner_factory=None,
) -> Optional[DistributionFactory]:
    """Build the picklable factory the engine/cluster hands each shard.

    Returns ``None`` when no distribution flag was given; raises
    ``SystemExit`` on malformed flag values (CLI contract).
    """
    if not distribution_enabled(args):
        return None
    try:
        if args.hist_edges is not None:
            spec = HistogramSpec.from_edges_ms(args.hist_edges)
        else:
            # None means "stage implied by --quantiles": use the default
            # bin count.  An explicit 0 must reject, not coerce.
            bins = (args.hist_bins if args.hist_bins is not None
                    else DEFAULT_BINS)
            spec = HistogramSpec.log_bins(bins)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if not 0 < args.sketch_alpha < 1:
        raise SystemExit("--sketch-alpha must be in (0, 1)")
    if args.hist_prefix < 0 or args.hist_prefix > 32:
        raise SystemExit("--hist-prefix must be in [0, 32]")
    quantiles = _parse_quantiles(args.quantiles)
    kwargs = {} if quantiles is None else {"quantiles": quantiles}
    return DistributionFactory(
        spec=spec,
        alpha=args.sketch_alpha,
        key_fn=(DstPrefixKey(args.hist_prefix) if args.hist_prefix else None),
        inner_factory=inner_factory,
        **kwargs,
    )


def build_distribution(
    args: argparse.Namespace,
    inner=None,
) -> Optional[DistributionAnalytics]:
    """One configured instance (serial paths: ``dart-stream``)."""
    factory = distribution_factory_from_args(args)
    if factory is None:
        return inner
    built = factory()
    if inner is not None:
        # Re-attach the caller's existing analytics (e.g. the stream
        # daemon's MinFilter) as the delegated inner stage.
        built._inner = inner
    return built


def monitor_distribution(monitor) -> Optional[DistributionAnalytics]:
    """Read a monitor's distribution snapshot, serial or sharded.

    ``ShardedDart``/``ShardedMonitor`` expose a merged ``distribution``
    property (reading it finalizes the cluster); serial monitors carry
    the stage on ``monitor.analytics``.
    """
    dist = getattr(type(monitor), "distribution", None)
    if isinstance(dist, property):
        return getattr(monitor, "distribution")
    analytics = getattr(monitor, "analytics", None)
    snapshot = getattr(analytics, "distribution_snapshot", None)
    if callable(snapshot):
        return snapshot()
    return None


def distribution_rows(distribution: DistributionAnalytics) -> List[list]:
    """Summary-table rows for one distribution stage."""
    rows: List[list] = [
        ["histogram bins", distribution.histogram.spec.bins],
        ["histogram samples", distribution.histogram.total.count],
    ]
    if distribution.count:
        for q, rtt_ns in distribution.percentiles().items():
            rows.append(
                [f"sketch p{q:g} RTT (ms)", f"{rtt_ns / 1e6:.3f}"]
            )
        rows.append(
            ["hist mean RTT (ms)",
             f"{distribution.histogram.total.mean_ns() / 1e6:.3f}"],
        )
    return rows
