"""``dart-matrix``: the Dart-vs-oracle accuracy matrix from the CLI.

Sweeps congestion control × loss × reordering × workload, runs Dart and
the tcptrace oracle over each cell's synthetic trace in one engine
pass, prints the accuracy table, and (optionally) writes the
machine-readable JSON report CI archives and gates on.

Examples::

    dart-matrix --quick                       # the 18-cell PR gate
    dart-matrix --output matrix.json          # full matrix + report file
    dart-matrix --workload incast --cc bbr    # one regime, all loss/reorder
    dart-matrix --quick --no-check            # report only, never exit 1
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from ..validate import (
    CC_AXIS,
    FULL_WORKLOADS,
    LOSS_AXIS,
    REORDER_AXIS,
    Thresholds,
    build_matrix,
    build_report,
    filter_matrix,
    quick_matrix,
    render_report,
    run_matrix,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dart-matrix",
        description="Dart-vs-tcptrace-oracle accuracy over a scenario matrix.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="PR-gate matrix: the bulk workload only "
             "(still the full CC x loss x reorder grid)",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="base seed; each cell derives its own from it")
    parser.add_argument("--output", metavar="FILE",
                        help="write the JSON report here ('-' for stdout)")
    parser.add_argument(
        "--workload", action="append", dest="workloads",
        choices=FULL_WORKLOADS, metavar="NAME",
        help=f"restrict to these workloads (repeatable; {FULL_WORKLOADS})",
    )
    parser.add_argument(
        "--cc", action="append", dest="ccs", choices=CC_AXIS, metavar="NAME",
        help=f"restrict to these congestion controls ({CC_AXIS})",
    )
    parser.add_argument(
        "--loss", action="append", dest="losses", type=float, metavar="RATE",
        help=f"restrict to these loss rates ({LOSS_AXIS})",
    )
    parser.add_argument(
        "--reorder", action="append", dest="reorders", type=float,
        metavar="RATE",
        help=f"restrict to these reorder rates ({REORDER_AXIS})",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="report without gating (exit 0 even past thresholds)",
    )
    parser.add_argument(
        "--min-ratio", type=float, metavar="R",
        help="replace the pinned per-regime floors with one flat "
             "sample-ratio floor",
    )
    parser.add_argument(
        "--max-p95-error", type=float, default=2.0, metavar="PCT",
        help="max p95 paired relative RTT error, percent (default 2.0)",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    specs = (quick_matrix(base_seed=args.seed) if args.quick
             else build_matrix(base_seed=args.seed))
    specs = filter_matrix(
        specs,
        workloads=args.workloads,
        ccs=args.ccs,
        losses=args.losses,
        reorders=args.reorders,
    )
    if not specs:
        print("dart-matrix: the filters matched no cells", file=sys.stderr)
        return 2
    if args.min_ratio is not None:
        thresholds = Thresholds.uniform(
            args.min_ratio, max_p95_error_pct=args.max_p95_error
        )
    else:
        thresholds = Thresholds(max_p95_error_pct=args.max_p95_error)

    print(f"running {len(specs)} cells (base seed {args.seed})...",
          file=sys.stderr)

    def progress(spec, result):
        acc = result.accuracy
        print(
            f"  {spec.name:42s} ratio={acc.sample_ratio:5.2f} "
            f"p95err={acc.error_pct.get('p95', float('nan')):5.2f}% "
            f"({result.wall_seconds:.1f}s)",
            file=sys.stderr,
        )

    results = run_matrix(specs, progress=progress)
    report = build_report(results, thresholds=thresholds,
                          base_seed=args.seed)
    print(render_report(report))
    if args.output:
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.output == "-":
            print(payload)
        else:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"report written to {args.output}", file=sys.stderr)
    if report["failures"] and not args.no_check:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
