"""A Dapper-style single-outstanding-sample monitor (paper §8).

Dapper (Ghasemi et al.) tracks **one** data packet per flow at a time:
it records a segment's expected ACK and timestamp, waits for the
matching ACK, and only then arms the next measurement.  The paper's
critique — "it would report too few samples per unit time to be
useful" when RTTs are large — is exactly what the sample-rate ablation
benchmark measures against Dart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..core.flow import FlowKey, ack_target_flow, flow_of
from ..core.samples import RttSample
from ..core.seqspace import seq_le
from ..core.stats import AdditiveCounters
from ..net.packet import PacketRecord


@dataclass(slots=True)
class _Pending:
    eack: int
    timestamp_ns: int


@dataclass(slots=True)
class DapperStats(AdditiveCounters):
    packets_processed: int = 0
    samples: int = 0
    armed: int = 0
    skipped_busy: int = 0


class DapperMonitor:
    """One in-flight RTT measurement per flow."""

    def __init__(self, *, track_handshake: bool = False, leg_filter=None) -> None:
        self._track_handshake = track_handshake
        self._leg_filter = leg_filter
        self._pending: Dict[FlowKey, _Pending] = {}
        self.samples: List[RttSample] = []
        self.stats = DapperStats()

    def drain_samples(self) -> List[RttSample]:
        """Hand over (and forget) the retained samples.

        Cumulative counters in :attr:`stats` are unaffected; only the
        retained list is emptied (the streaming rotation primitive).
        """
        drained = self.samples
        self.samples = []
        return drained

    def process(self, record: PacketRecord) -> List[RttSample]:
        self.stats.packets_processed += 1
        if record.syn and not self._track_handshake:
            return []
        if record.rst:
            return []
        if record.carries_data:
            self._on_data(record)
        out: List[RttSample] = []
        if record.has_ack:
            sample = self._on_ack(record)
            if sample is not None:
                out.append(sample)
        return out

    def process_batch(
        self, records: Iterable[Optional[PacketRecord]]
    ) -> List[RttSample]:
        """Process a batch of packets; ``None`` entries are skipped.

        Part of the :class:`repro.engine.RttMonitor` surface — identical
        to calling :meth:`process` per record.
        """
        process = self.process
        out: List[RttSample] = []
        for record in records:
            if record is not None:
                out.extend(process(record))
        return out

    def process_trace(self, records) -> "DapperMonitor":
        for record in records:
            self.process(record)
        return self

    def finalize(self, at_ns: Optional[int] = None) -> None:
        """End-of-trace hook (no deferred state to flush)."""

    def _on_data(self, record: PacketRecord) -> None:
        if self._leg_filter is not None and self._leg_filter(record) is None:
            return
        flow = flow_of(record)
        if flow in self._pending:
            self.stats.skipped_busy += 1
            return
        self._pending[flow] = _Pending(
            eack=record.eack, timestamp_ns=record.timestamp_ns
        )
        self.stats.armed += 1

    def _on_ack(self, record: PacketRecord) -> Optional[RttSample]:
        flow = ack_target_flow(record)
        pending = self._pending.get(flow)
        if pending is None:
            return None
        # A cumulative ACK at or beyond the armed segment completes the
        # measurement (Dapper does not require an exact match).
        if not seq_le(pending.eack, record.ack):
            return None
        del self._pending[flow]
        sample = RttSample(
            flow=flow,
            rtt_ns=record.timestamp_ns - pending.timestamp_ns,
            timestamp_ns=record.timestamp_ns,
            eack=pending.eack,
        )
        self.samples.append(sample)
        self.stats.samples += 1
        return sample
