"""A from-scratch reimplementation of tcptrace's RTT engine.

tcptrace (Ostermann) is the paper's offline oracle (§6.1, §8): software
with unlimited, fully-associative memory that matches data segments with
the ACKs that acknowledge them.  Differences from Dart the paper calls
out — all reproduced here:

* tcptrace tracks **every** outstanding byte range per flow (a list of
  open segments), so a hole in the sequence space costs it nothing,
  whereas Dart keeps a single measurement range;
* tcptrace applies Karn's algorithm per segment: a retransmitted
  segment's sample is discarded, but *other* in-flight segments keep
  their eligibility (Dart conservatively collapses the whole range);
* tcptrace tracks through 32-bit sequence wraparound (Dart resets);
* tcptrace has a quadrant-accounting flaw (paper §6.1 footnote 3): a
  segment spanning two consecutive quadrants of the sequence space
  yields a spurious extra RTT sample.  ``emulate_quadrant_bug``
  reproduces it (on by default, matching the binary the paper ran).

RTT samples are emitted on exact acknowledgment: an ACK produces one
sample, anchored to the segment whose end equals the ACK number (the
normal case — receivers acknowledge on segment boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.flow import FlowKey, ack_target_flow, flow_of
from ..core.samples import RttSample
from ..core.seqspace import seq_le
from ..core.stats import AdditiveCounters
from ..net.packet import PacketRecord

_QUADRANT_SHIFT = 30  # sequence space divided into four 2**30 quadrants


@dataclass(slots=True)
class _OpenSegment:
    """One unacknowledged data segment."""

    seq: int
    eack: int
    timestamp_ns: int
    retransmitted: bool = False
    handshake: bool = False


@dataclass(slots=True)
class _FlowState:
    segments: Dict[int, _OpenSegment] = field(default_factory=dict)  # by eack
    highest_eack_sent: Optional[int] = None
    highest_ack_seen: Optional[int] = None


@dataclass(slots=True)
class TcpTraceStats(AdditiveCounters):
    packets_processed: int = 0
    data_segments: int = 0
    retransmissions_marked: int = 0
    samples: int = 0
    karn_discards: int = 0
    quadrant_extra_samples: int = 0
    ignored_syn: int = 0


class TcpTrace:
    """The tcptrace-variant RTT monitor.

    Mirrors Dart's interface: ``process(record) -> list[RttSample]``,
    plus a retained ``samples`` list.
    """

    def __init__(
        self,
        *,
        track_handshake: bool = True,
        emulate_quadrant_bug: bool = True,
        leg_filter=None,
    ) -> None:
        self._track_handshake = track_handshake
        self._emulate_quadrant_bug = emulate_quadrant_bug
        self._leg_filter = leg_filter
        self._flows: Dict[FlowKey, _FlowState] = {}
        self.samples: List[RttSample] = []
        self.stats = TcpTraceStats()

    def drain_samples(self) -> List[RttSample]:
        """Hand over (and forget) the retained samples.

        Cumulative counters in :attr:`stats` are unaffected; only the
        retained list is emptied (the streaming rotation primitive).
        """
        drained = self.samples
        self.samples = []
        return drained

    # -- packet entry point ---------------------------------------------------

    def process(self, record: PacketRecord) -> List[RttSample]:
        self.stats.packets_processed += 1
        if record.syn and not self._track_handshake:
            self.stats.ignored_syn += 1
            return []
        if record.rst:
            return []
        out: List[RttSample] = []
        if record.carries_data:
            self._on_data(record)
        if record.has_ack:
            out = self._on_ack(record)
        return out

    def process_batch(
        self, records: Iterable[Optional[PacketRecord]]
    ) -> List[RttSample]:
        """Process a batch of packets; ``None`` entries are skipped.

        Part of the :class:`repro.engine.RttMonitor` surface — identical
        to calling :meth:`process` per record.
        """
        process = self.process
        out: List[RttSample] = []
        for record in records:
            if record is not None:
                out.extend(process(record))
        return out

    def process_trace(self, records) -> "TcpTrace":
        for record in records:
            self.process(record)
        return self

    def finalize(self, at_ns: Optional[int] = None) -> None:
        """End-of-trace hook (no deferred state to flush)."""

    # -- data side ----------------------------------------------------------------

    def _on_data(self, record: PacketRecord) -> None:
        leg = None
        if self._leg_filter is not None:
            leg = self._leg_filter(record)
            if leg is None:
                return
        self.stats.data_segments += 1
        flow = flow_of(record)
        state = self._flows.get(flow)
        if state is None:
            state = _FlowState()
            self._flows[flow] = state
        eack = record.eack
        existing = state.segments.get(eack)
        is_retransmission = False
        if existing is not None:
            is_retransmission = True
        elif state.highest_eack_sent is not None and seq_le(
            eack, state.highest_eack_sent
        ):
            # Sends below the highest byte transmitted are retransmitted
            # (or overlapping) data: Karn's algorithm disqualifies them.
            is_retransmission = True
        if is_retransmission:
            self.stats.retransmissions_marked += 1
            segment = existing or _OpenSegment(
                seq=record.seq, eack=eack, timestamp_ns=record.timestamp_ns
            )
            segment.retransmitted = True
            segment.timestamp_ns = record.timestamp_ns
            state.segments[eack] = segment
            return
        state.segments[eack] = _OpenSegment(
            seq=record.seq,
            eack=eack,
            timestamp_ns=record.timestamp_ns,
            handshake=record.syn,
        )
        if state.highest_eack_sent is None or seq_le(
            state.highest_eack_sent, eack
        ):
            state.highest_eack_sent = eack

    # -- ACK side -----------------------------------------------------------------

    def _on_ack(self, record: PacketRecord) -> List[RttSample]:
        flow = ack_target_flow(record)
        state = self._flows.get(flow)
        if state is None:
            return []
        ack = record.ack
        if state.highest_ack_seen is not None and seq_le(
            ack, state.highest_ack_seen
        ):
            return []  # duplicate or old ACK: acknowledges nothing new
        state.highest_ack_seen = ack

        # Retire every segment the cumulative ACK covers; the sample is
        # anchored to the exactly-matching segment.
        covered = [
            e for e in state.segments if seq_le(e, ack)
        ]
        exact = state.segments.get(ack)
        out: List[RttSample] = []
        if exact is not None:
            if exact.retransmitted:
                self.stats.karn_discards += 1
            else:
                out.append(self._emit(flow, exact, record.timestamp_ns, ack))
                if self._emulate_quadrant_bug and self._spans_quadrants(exact):
                    # The flaw the paper footnotes: a segment crossing a
                    # quadrant boundary is double-counted.
                    out.append(
                        self._emit(flow, exact, record.timestamp_ns, ack)
                    )
                    self.stats.quadrant_extra_samples += 1
        for eack in covered:
            del state.segments[eack]
        return out

    def _emit(
        self, flow: FlowKey, segment: _OpenSegment, now_ns: int, ack: int
    ) -> RttSample:
        sample = RttSample(
            flow=flow,
            rtt_ns=now_ns - segment.timestamp_ns,
            timestamp_ns=now_ns,
            eack=ack,
            handshake=segment.handshake,
        )
        self.samples.append(sample)
        self.stats.samples += 1
        return sample

    @staticmethod
    def _spans_quadrants(segment: _OpenSegment) -> bool:
        start_quadrant = segment.seq >> _QUADRANT_SHIFT
        end_quadrant = ((segment.eack - 1) & 0xFFFFFFFF) >> _QUADRANT_SHIFT
        return start_quadrant != end_quadrant

    # -- introspection ----------------------------------------------------------

    def open_segments(self) -> int:
        """Total outstanding segments across all flows (memory proxy)."""
        return sum(len(s.segments) for s in self._flows.values())

    def flows(self) -> int:
        return len(self._flows)
