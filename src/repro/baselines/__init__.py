"""Baseline monitors the paper compares against.

* :class:`TcpTrace` — the offline software oracle (§6.1), including its
  quadrant double-counting flaw.
* :func:`tcptrace_const` — the paper's name for Dart with unlimited,
  fully-associative memory and no handshake tracking (§6.2 baseline).
* :class:`Strawman` — the §2.1 hash-table-with-timeout design.
* :class:`DapperMonitor` — one in-flight measurement per flow (§8).
"""

from ..core import Dart, DartConfig
from .dapper import DapperMonitor, DapperStats
from .strawman import Strawman, StrawmanStats
from .tcptrace import TcpTrace, TcpTraceStats


def tcptrace_const(*, leg_filter=None, analytics=None) -> Dart:
    """Dart(-SYN) with unlimited fully-associative memory (§6.2).

    The paper treats this configuration as "a variant of tcptrace with
    constant [per-flow] space" and uses it as the baseline for every
    table-configuration experiment.
    """
    config = DartConfig(rt_slots=None, pt_slots=None, track_handshake=False)
    return Dart(config, leg_filter=leg_filter, analytics=analytics)


__all__ = [
    "DapperMonitor",
    "DapperStats",
    "Strawman",
    "StrawmanStats",
    "TcpTrace",
    "TcpTraceStats",
    "tcptrace_const",
]
