"""The strawman data-plane design (paper §2.1; Chen et al. [12]).

A single hash table keyed by ``(flow, expected ACK)`` holding a
timestamp: every data packet inserts, every ACK looks up and deletes.
No range tracking, no recirculation.  Its failure modes are exactly the
paper's §2.2/§2.3 catalogue:

* retransmissions silently *refresh or keep* an entry, so the eventual
  ACK produces an ambiguous (usually wrong) sample;
* reordering-driven cumulative ACKs match and produce inflated samples;
* stranded entries (cumulatively-ACKed or SYN-flood) pin memory until a
  timeout or a colliding overwrite evicts them — both of which bias
  against long RTTs.

Eviction policy knobs reproduce the two options §2.3 considers: a
timeout (``timeout_ns``) and overwrite-on-collision (always on for the
fixed-size table; the new entry wins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.flow import FlowKey, ack_target_flow, flow_of
from ..core.hashing import pack_u32, stage_index
from ..core.samples import RttSample
from ..core.stats import AdditiveCounters
from ..net.packet import PacketRecord


@dataclass(slots=True)
class _Entry:
    signature: int
    flow: FlowKey
    eack: int
    timestamp_ns: int


@dataclass(slots=True)
class StrawmanStats(AdditiveCounters):
    packets_processed: int = 0
    inserts: int = 0
    overwrites: int = 0
    refreshes: int = 0
    timeout_evictions: int = 0
    samples: int = 0
    ignored_syn: int = 0


class Strawman:
    """The §2.1 strawman monitor.

    ``slots=None`` gives an unlimited dict-backed table (isolating the
    correctness problems from the memory ones); an integer gives a
    one-way-associative hash table like the hardware would use.
    """

    def __init__(
        self,
        slots: Optional[int] = None,
        *,
        timeout_ns: Optional[int] = None,
        track_handshake: bool = False,
        leg_filter=None,
    ) -> None:
        self._slots = slots
        self._timeout_ns = timeout_ns
        self._track_handshake = track_handshake
        self._leg_filter = leg_filter
        if slots is None:
            self._table: Dict[Tuple[FlowKey, int], _Entry] = {}
        else:
            self._array: List[Optional[_Entry]] = [None] * slots
        self.samples: List[RttSample] = []
        self.stats = StrawmanStats()

    def drain_samples(self) -> List[RttSample]:
        """Hand over (and forget) the retained samples.

        Cumulative counters in :attr:`stats` are unaffected; only the
        retained list is emptied (the streaming rotation primitive).
        """
        drained = self.samples
        self.samples = []
        return drained

    # -- entry point -----------------------------------------------------------

    def process(self, record: PacketRecord) -> List[RttSample]:
        self.stats.packets_processed += 1
        if record.syn and not self._track_handshake:
            self.stats.ignored_syn += 1
            return []
        if record.rst:
            return []
        if record.carries_data:
            self._on_data(record)
        out: List[RttSample] = []
        if record.has_ack:
            sample = self._on_ack(record)
            if sample is not None:
                out.append(sample)
        return out

    def process_batch(
        self, records: Iterable[Optional[PacketRecord]]
    ) -> List[RttSample]:
        """Process a batch of packets; ``None`` entries are skipped.

        Part of the :class:`repro.engine.RttMonitor` surface — identical
        to calling :meth:`process` per record.
        """
        process = self.process
        out: List[RttSample] = []
        for record in records:
            if record is not None:
                out.extend(process(record))
        return out

    def process_trace(self, records) -> "Strawman":
        for record in records:
            self.process(record)
        return self

    def finalize(self, at_ns: Optional[int] = None) -> None:
        """End-of-trace hook (no deferred state to flush)."""

    # -- table backends -----------------------------------------------------------

    def _index(self, flow: FlowKey, eack: int) -> int:
        return stage_index(pack_u32(flow.signature, eack), 0, self._slots)

    def _insert(self, flow: FlowKey, eack: int, now_ns: int) -> None:
        entry = _Entry(
            signature=flow.signature, flow=flow, eack=eack, timestamp_ns=now_ns
        )
        self.stats.inserts += 1
        if self._slots is None:
            if (flow, eack) in self._table:
                self.stats.refreshes += 1
            self._table[(flow, eack)] = entry
            return
        index = self._index(flow, eack)
        occupant = self._array[index]
        if occupant is not None:
            if occupant.signature == entry.signature and occupant.eack == eack:
                self.stats.refreshes += 1
            else:
                self.stats.overwrites += 1
        self._array[index] = entry

    def _lookup_delete(
        self, flow: FlowKey, ack: int, now_ns: int
    ) -> Optional[_Entry]:
        if self._slots is None:
            entry = self._table.pop((flow, ack), None)
        else:
            index = stage_index(pack_u32(flow.signature, ack), 0, self._slots)
            occupant = self._array[index]
            entry = None
            if (
                occupant is not None
                and occupant.signature == flow.signature
                and occupant.eack == ack
            ):
                entry = occupant
                self._array[index] = None
        if entry is None:
            return None
        if (
            self._timeout_ns is not None
            and now_ns - entry.timestamp_ns > self._timeout_ns
        ):
            self.stats.timeout_evictions += 1
            return None
        return entry

    # -- packet handling -----------------------------------------------------------

    def _on_data(self, record: PacketRecord) -> None:
        if self._leg_filter is not None and self._leg_filter(record) is None:
            return
        self._insert(flow_of(record), record.eack, record.timestamp_ns)

    def _on_ack(self, record: PacketRecord) -> Optional[RttSample]:
        flow = ack_target_flow(record)
        entry = self._lookup_delete(flow, record.ack, record.timestamp_ns)
        if entry is None:
            return None
        sample = RttSample(
            flow=entry.flow,
            rtt_ns=record.timestamp_ns - entry.timestamp_ns,
            timestamp_ns=record.timestamp_ns,
            eack=record.ack,
        )
        self.samples.append(sample)
        self.stats.samples += 1
        return sample

    def occupancy(self) -> int:
        if self._slots is None:
            return len(self._table)
        return sum(1 for e in self._array if e is not None)
