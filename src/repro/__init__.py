"""Reproduction of "Continuous In-Network Round-Trip Time Monitoring"
(Dart, SIGCOMM 2022).

Subpackages:

* :mod:`repro.core` — Dart itself: Range Tracker, Packet Tracker with
  lazy eviction and recirculation, analytics.
* :mod:`repro.net` — packet substrate: header codecs, pcap I/O.
* :mod:`repro.simnet` — event-driven TCP network simulator.
* :mod:`repro.traces` — synthetic campus / attack trace generators.
* :mod:`repro.baselines` — tcptrace reimplementation and the strawman.
* :mod:`repro.detection` — interception-attack change detection.
* :mod:`repro.analysis` — distributions and the paper's §6.2 metrics.
* :mod:`repro.hw` — Tofino resource model (Table 1).
"""

from .core import Dart, DartConfig, FlowKey, RttSample, ideal_config
from .net import PacketRecord

__version__ = "1.0.0"

__all__ = [
    "Dart",
    "DartConfig",
    "FlowKey",
    "PacketRecord",
    "RttSample",
    "ideal_config",
    "__version__",
]
