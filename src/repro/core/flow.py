"""Flow identification: 4-tuples, direction, and compact signatures.

A *flow* here is a unidirectional TCP 4-tuple as seen from the data
sender: the SEQ direction's packets carry the tuple as-is, and the ACK
direction's packets carry it reversed (paper Fig 1/Fig 2).  The Range
Tracker and Packet Tracker are keyed by the SEQ-direction tuple, so an
arriving ACK is matched after reversing its tuple.

Performance notes (the per-packet hot path runs through this module):

* ``FlowKey`` precomputes its hash at construction and caches its key
  bytes, raw CRC, and 4-byte signature lazily — each is computed once
  per flow object instead of once per packet.
* :func:`flow_of` / :func:`ack_target_flow` *intern* keys, so every
  packet of a flow reuses one ``FlowKey`` object.  Table lookups then
  hit the dict fast path (identity before ``__eq__``), and the lazy
  caches above amortise across the whole trace.  Interning is an
  optimisation only: un-interned keys (built directly, or arriving from
  another process) compare and hash identically.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from ..net.inet import int_to_ipv4, int_to_ipv6
from ..net.packet import PacketRecord
from .hashing import _mix32, signature32


@dataclass(frozen=True, slots=True)
class FlowKey:
    """A unidirectional TCP flow 4-tuple."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    ipv6: bool = False
    #: Cached ``hash()`` (eager) and key-byte/CRC/signature values
    #: (lazy).  Excluded from equality/repr; they are pure functions of
    #: the tuple, so pickled copies stay consistent.
    _hash: int = field(init=False, repr=False, compare=False, default=0)
    _bytes: Optional[bytes] = field(init=False, repr=False, compare=False,
                                    default=None)
    _crc: Optional[int] = field(init=False, repr=False, compare=False,
                                default=None)
    _sig: Optional[int] = field(init=False, repr=False, compare=False,
                                default=None)
    _mix0: Optional[int] = field(init=False, repr=False, compare=False,
                                 default=None)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash((self.src_ip, self.dst_ip, self.src_port, self.dst_port,
                  self.ipv6)),
        )

    def __hash__(self) -> int:
        return self._hash

    def reversed(self) -> "FlowKey":
        """The same connection seen from the opposite direction."""
        return intern_flow(self.dst_ip, self.src_ip, self.dst_port,
                           self.src_port, self.ipv6)

    def canonical(self) -> "FlowKey":
        """Direction-independent form (smaller endpoint first).

        Used when counting *connections* rather than unidirectional flows,
        e.g. for the handshake statistics behind Fig 10.
        """
        mine = (self.src_ip, self.src_port)
        theirs = (self.dst_ip, self.dst_port)
        return self if mine <= theirs else self.reversed()

    def key_bytes(self) -> bytes:
        """Raw bytes hashed into table indices and signatures.

        IPv4 uses the paper's 12-byte layout; IPv6 concatenates the full
        16-byte addresses (paper §7 notes the larger key raises collision
        rates, which the simulator therefore reproduces faithfully).
        """
        cached = self._bytes
        if cached is None:
            addr_len = 16 if self.ipv6 else 4
            cached = (
                self.src_ip.to_bytes(addr_len, "big")
                + self.dst_ip.to_bytes(addr_len, "big")
                + self.src_port.to_bytes(2, "big")
                + self.dst_port.to_bytes(2, "big")
            )
            object.__setattr__(self, "_bytes", cached)
        return cached

    @property
    def key_crc(self) -> int:
        """Unsalted ``crc32(key_bytes())`` — the table-index seed.

        Cached so the per-stage index mix
        (:func:`~repro.core.hashing.stage_index_from_crc`) never re-walks
        the key bytes on the hot path.
        """
        crc = self._crc
        if crc is None:
            crc = zlib.crc32(self.key_bytes())
            object.__setattr__(self, "_crc", crc)
        return crc

    @property
    def mix0(self) -> int:
        """Stage-0 avalanche mix of :attr:`key_crc`.

        ``stage_index_from_crc(crc, 0, size)`` is ``_mix32(crc) % size``
        (stage 0's salt is zero), so tables whose index function is the
        stage-0 hash — the Range Tracker, every single-stage layout —
        reduce their per-lookup work to one modulo by caching the mix
        here.  The columnar fast path pre-fills it vectorially.
        """
        mix = self._mix0
        if mix is None:
            mix = _mix32(self.key_crc)
            object.__setattr__(self, "_mix0", mix)
        return mix

    @property
    def signature(self) -> int:
        """The compact 4-byte signature stored in table records."""
        sig = self._sig
        if sig is None:
            sig = signature32(self.key_bytes())
            object.__setattr__(self, "_sig", sig)
        return sig

    _CACHE_SLOTS = ("_bytes", "_crc", "_sig", "_mix0")

    def __getstate__(self):
        # Which caches are filled depends on the decode path (the
        # columnar fast path pre-fills CRC and mix vectorially; the
        # object path fills on first use) — but serialized flows must
        # not carry that history: stream checkpoints are pinned
        # byte-identical across paths.  The caches are pure functions
        # of the 4-tuple and recompute lazily after unpickling.
        state = {s: getattr(self, s) for s in self.__slots__}
        for slot in self._CACHE_SLOTS:
            state[slot] = None
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def describe(self) -> str:
        """Render as ``src:port > dst:port``."""
        fmt = int_to_ipv6 if self.ipv6 else int_to_ipv4
        return (
            f"{fmt(self.src_ip)}:{self.src_port} > "
            f"{fmt(self.dst_ip)}:{self.dst_port}"
        )


@lru_cache(maxsize=1 << 20)
def intern_flow(src_ip: int, dst_ip: int, src_port: int, dst_port: int,
                ipv6: bool = False) -> FlowKey:
    """The canonical ``FlowKey`` object for a 4-tuple.

    Bounded (LRU): an adversarial trace with more live flows than the
    cache holds degrades to plain construction, never unbounded memory.
    """
    return FlowKey(src_ip=src_ip, dst_ip=dst_ip, src_port=src_port,
                   dst_port=dst_port, ipv6=ipv6)


def flow_of(record: PacketRecord) -> FlowKey:
    """The flow 4-tuple of a packet, in its own direction of travel."""
    return intern_flow(record.src_ip, record.dst_ip, record.src_port,
                       record.dst_port, record.ipv6)


def ack_target_flow(record: PacketRecord) -> FlowKey:
    """The SEQ-direction flow an ACK packet acknowledges.

    This is the packet's 4-tuple reversed (paper §2.1: "with the source
    and destination fields of the 4-tuple reversed").
    """
    return intern_flow(record.dst_ip, record.src_ip, record.dst_port,
                       record.src_port, record.ipv6)
