"""Flow identification: 4-tuples, direction, and compact signatures.

A *flow* here is a unidirectional TCP 4-tuple as seen from the data
sender: the SEQ direction's packets carry the tuple as-is, and the ACK
direction's packets carry it reversed (paper Fig 1/Fig 2).  The Range
Tracker and Packet Tracker are keyed by the SEQ-direction tuple, so an
arriving ACK is matched after reversing its tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..net.inet import int_to_ipv4, int_to_ipv6
from ..net.packet import PacketRecord
from .hashing import signature32


@dataclass(frozen=True, slots=True)
class FlowKey:
    """A unidirectional TCP flow 4-tuple."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    ipv6: bool = False

    def reversed(self) -> "FlowKey":
        """The same connection seen from the opposite direction."""
        return FlowKey(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            ipv6=self.ipv6,
        )

    def canonical(self) -> "FlowKey":
        """Direction-independent form (smaller endpoint first).

        Used when counting *connections* rather than unidirectional flows,
        e.g. for the handshake statistics behind Fig 10.
        """
        mine = (self.src_ip, self.src_port)
        theirs = (self.dst_ip, self.dst_port)
        return self if mine <= theirs else self.reversed()

    def key_bytes(self) -> bytes:
        """Raw bytes hashed into table indices and signatures.

        IPv4 uses the paper's 12-byte layout; IPv6 concatenates the full
        16-byte addresses (paper §7 notes the larger key raises collision
        rates, which the simulator therefore reproduces faithfully).
        """
        addr_len = 16 if self.ipv6 else 4
        return (
            self.src_ip.to_bytes(addr_len, "big")
            + self.dst_ip.to_bytes(addr_len, "big")
            + self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
        )

    @property
    def signature(self) -> int:
        """The compact 4-byte signature stored in table records."""
        return _signature_cached(self)

    def describe(self) -> str:
        """Render as ``src:port > dst:port``."""
        fmt = int_to_ipv6 if self.ipv6 else int_to_ipv4
        return (
            f"{fmt(self.src_ip)}:{self.src_port} > "
            f"{fmt(self.dst_ip)}:{self.dst_port}"
        )


@lru_cache(maxsize=1 << 20)
def _signature_cached(key: FlowKey) -> int:
    return signature32(key.key_bytes())


def flow_of(record: PacketRecord) -> FlowKey:
    """The flow 4-tuple of a packet, in its own direction of travel."""
    return FlowKey(
        src_ip=record.src_ip,
        dst_ip=record.dst_ip,
        src_port=record.src_port,
        dst_port=record.dst_port,
        ipv6=record.ipv6,
    )


def ack_target_flow(record: PacketRecord) -> FlowKey:
    """The SEQ-direction flow an ACK packet acknowledges.

    This is the packet's 4-tuple reversed (paper §2.1: "with the source
    and destination fields of the 4-tuple reversed").
    """
    return flow_of(record).reversed()
