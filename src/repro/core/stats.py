"""Shared stats behaviour for monitor counter dataclasses.

Every monitor in this library exposes a ``stats`` dataclass of plain
additive counters.  The sharded cluster (:mod:`repro.cluster`) merges
per-shard stats by summation; :class:`AdditiveCounters` provides that
``merge`` once, so each baseline's stats class stays a bare field list.

:class:`~repro.core.pipeline.DartStats` implements its own ``merge``
(its verdict histograms need per-key addition); everything else inherits
this mixin.
"""

from __future__ import annotations

from dataclasses import fields


class AdditiveCounters:
    """Mixin: fold another stats object in by summing every field.

    ``__slots__`` is empty so ``slots=True`` dataclass subclasses keep
    their per-instance dict-free layout (the PR 2 fast-path convention).
    """

    __slots__ = ()

    def merge(self, other: "AdditiveCounters") -> "AdditiveCounters":
        """Add ``other``'s counters into this object; returns self."""
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into "
                f"{type(self).__name__}"
            )
        for f in fields(self):  # type: ignore[arg-type]
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self
