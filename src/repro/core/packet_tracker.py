"""The Packet Tracker (PT) table — paper §3.2.

The PT stores one record per tracked SEQ packet, keyed by
``(flow signature, expected ACK)``, holding the packet's arrival
timestamp.  A matching ACK deletes the record and yields an RTT sample.

Memory contention is resolved by *lazy eviction with a second chance*:

* Records are only considered for eviction when a new record hash-collides
  with them — no timeouts, no garbage collection.
* An evicted record is *recirculated*: it re-consults the Range Tracker,
  self-destructs if stale, and otherwise re-enters PT insertion, where
  older valid records win contention (no bias against long RTTs).
* *Cycle detection* stops A-evicts-B-evicts-A ping-pong: each record
  remembers the record it last evicted and self-destructs rather than
  evicting it a second time.  A per-record recirculation budget is the
  final backstop.

Multi-stage layout (paper §6.2, Figs 12–13): ``pt_slots`` are divided
across ``stages`` one-way-associative stages with independent hash
functions.  A record visits stages sequentially (hardware memory cannot
be revisited within a pass):

* any pass may claim an **empty** slot at any stage;
* a **fresh** record in a *single-stage* table force-evicts the occupant
  of its only slot (the paper's explicit §3.2 mechanism);
* a fresh record in a *multi-stage* table cannot evict on its first pass
  (at stage *s* the hardware cannot yet know whether a later stage is
  free, so eviction rights are deferred); an unplaced record recirculates;
* recirculation pass *p* may force-evict at stage ``(p - 1) mod k``, so
  allowing more recirculations rotates eviction rights across all stages
  (this is what lets Fig 13 recover the performance Fig 12 loses).

The module only implements table mechanics; the recirculation *loop*
(RT re-validation, budget, analytics purge) lives in
:mod:`repro.core.pipeline`.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .flow import FlowKey
from .hashing import _mix32, pack2_u32, stage_index_from_crc


@dataclass(slots=True)
class PtRecord:
    """One tracked SEQ packet awaiting its ACK."""

    record_id: int
    flow: FlowKey
    signature: int
    eack: int
    timestamp_ns: int
    handshake: bool = False
    leg: Optional[str] = None
    recirc_count: int = 0
    last_evicted_id: Optional[int] = None
    #: Lazily cached ``key_bytes()`` and its CRC — a record is re-hashed
    #: on every insertion pass (recirculation re-enters the stages), so
    #: the packing and CRC costs are paid once.  Pure functions of
    #: (signature, eack); pickled copies stay consistent.
    _key: Optional[bytes] = field(init=False, default=None, repr=False,
                                  compare=False)
    _crc: Optional[int] = field(init=False, default=None, repr=False,
                                compare=False)
    _mix0: Optional[int] = field(init=False, default=None, repr=False,
                                 compare=False)

    def key_bytes(self) -> bytes:
        """Bytes hashed into stage indices."""
        key = self._key
        if key is None:
            key = self._key = pack2_u32(self.signature, self.eack)
        return key

    def key_crc(self) -> int:
        """Unsalted CRC32 of :meth:`key_bytes` — the stage-index seed."""
        crc = self._crc
        if crc is None:
            crc = self._crc = zlib.crc32(self.key_bytes())
        return crc

    def mix0(self) -> int:
        """Stage-0 avalanche mix of :meth:`key_crc` (stage 0's salt is
        zero, so this *is* the stage-0 index before the modulo — see
        ``FlowKey.mix0``).  Cached across recirculation passes; the
        columnar fast path pre-fills it vectorially."""
        mix = self._mix0
        if mix is None:
            mix = self._mix0 = _mix32(self.key_crc())
        return mix

    def matches(self, signature: int, eack: int) -> bool:
        """Constrained-mode match: 4-byte signature plus expected ACK."""
        return self.signature == signature and self.eack == eack

    _CACHE_SLOTS = ("_key", "_crc", "_mix0")

    def __getstate__(self):
        # Whether a cache is filled depends on which decode path ran
        # (the columnar fast path pre-fills vectorially, the object
        # path fills lazily).  Serialized state must not: checkpoints
        # are required to be byte-identical across paths, so the
        # caches — pure derived values — are dropped and recomputed.
        state = {s: getattr(self, s) for s in self.__slots__}
        for slot in self._CACHE_SLOTS:
            state[slot] = None
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            object.__setattr__(self, slot, value)


class InsertStatus(enum.Enum):
    """Outcome of one insertion pass through the PT stages."""

    PLACED = "placed"              # found an empty slot
    PLACED_EVICTING = "evicting"   # force-evicted an occupant
    DUPLICATE = "duplicate"        # same key already present (older kept)
    CYCLE = "cycle"                # would re-evict its own victim
    UNPLACED = "unplaced"          # no slot available this pass


@dataclass(slots=True)
class InsertOutcome:
    status: InsertStatus
    evicted: Optional[PtRecord] = None


@dataclass(slots=True)
class PacketTrackerStats:
    """PT-side counters for the §6.2 metrics."""

    insert_passes: int = 0
    placed_empty: int = 0
    placed_evicting: int = 0
    duplicates: int = 0
    cycle_self_destructs: int = 0
    unplaced: int = 0
    matches: int = 0
    lookup_misses: int = 0


class AssociativePacketTable:
    """Unlimited fully-associative PT backend (§6.1 ideal mode).

    Keys are exact ``(flow, eack)`` pairs — an infinite, collision-free
    memory never needs signatures, eviction, or recirculation.
    """

    def __init__(self) -> None:
        self._records: Dict[Tuple[FlowKey, int], PtRecord] = {}
        self.stats = PacketTrackerStats()

    def __len__(self) -> int:
        return len(self._records)

    def insert(self, record: PtRecord) -> InsertOutcome:
        self.stats.insert_passes += 1
        key = (record.flow, record.eack)
        if key in self._records:
            # A same-key insert can only be a retransmission that slipped
            # past range tracking; the older record is kept (paper: older
            # records are preferred).
            self.stats.duplicates += 1
            return InsertOutcome(InsertStatus.DUPLICATE)
        self._records[key] = record
        self.stats.placed_empty += 1
        return InsertOutcome(InsertStatus.PLACED)

    def match_ack(self, flow: FlowKey, ack: int, *,
                  key_crc: Optional[int] = None,
                  key_mix0: Optional[int] = None) -> Optional[PtRecord]:
        """Find-and-delete the record acknowledged by ``ack``.

        ``key_crc`` and ``key_mix0`` are accepted (and ignored) for
        interface parity with the staged backend.
        """
        record = self._records.pop((flow, ack), None)
        if record is None:
            self.stats.lookup_misses += 1
        else:
            self.stats.matches += 1
        return record

    def discard_flow(self, flow: FlowKey) -> int:
        """Drop all records of one flow (operator/test helper)."""
        keys = [k for k in self._records if k[0] == flow]
        for key in keys:
            del self._records[key]
        return len(keys)

    def occupancy(self) -> int:
        return len(self._records)


class StagedPacketTable:
    """Fixed-size k-stage PT backend with the contention policy above."""

    def __init__(self, total_slots: int, stages: int = 1) -> None:
        if stages < 1:
            raise ValueError("PT needs at least one stage")
        if total_slots < stages:
            raise ValueError("PT needs at least one slot per stage")
        self._stage_count = stages
        self._stage_slots = total_slots // stages
        self._stages: List[List[Optional[PtRecord]]] = [
            [None] * self._stage_slots for _ in range(stages)
        ]
        # Maintained at every None<->record transition so occupancy() is
        # O(1) — telemetry samples it per emission, and a slot scan
        # would dominate the emission cost.
        self._occupied = 0
        self.stats = PacketTrackerStats()

    def __len__(self) -> int:
        return self._stage_count * self._stage_slots

    @property
    def stage_count(self) -> int:
        return self._stage_count

    @property
    def stage_slots(self) -> int:
        return self._stage_slots

    def _force_stage(self, record: PtRecord) -> Optional[int]:
        """Stage at which this pass holds eviction rights (None = none)."""
        if record.recirc_count == 0:
            # A fresh record in a single-stage table knows its only slot is
            # its last chance, so it evicts immediately (paper §3.2).  In a
            # multi-stage table it must first look for empty slots.
            return 0 if self._stage_count == 1 else None
        return (record.recirc_count - 1) % self._stage_count

    def insert(self, record: PtRecord) -> InsertOutcome:
        """One insertion pass; never recirculates by itself."""
        self.stats.insert_passes += 1
        force_stage = self._force_stage(record)
        for stage in range(self._stage_count):
            if stage == 0:
                index = record.mix0() % self._stage_slots
            else:
                index = stage_index_from_crc(record.key_crc(), stage,
                                             self._stage_slots)
            occupant = self._stages[stage][index]
            if occupant is None:
                self._stages[stage][index] = record
                self._occupied += 1
                self.stats.placed_empty += 1
                return InsertOutcome(InsertStatus.PLACED)
            if occupant.matches(record.signature, record.eack):
                self.stats.duplicates += 1
                return InsertOutcome(InsertStatus.DUPLICATE)
            if stage == force_stage:
                if record.last_evicted_id == occupant.record_id:
                    # About to evict the record we already evicted once:
                    # an eviction loop.  Self-destruct instead (paper §3.2).
                    self.stats.cycle_self_destructs += 1
                    return InsertOutcome(InsertStatus.CYCLE)
                self._stages[stage][index] = record
                record.last_evicted_id = occupant.record_id
                self.stats.placed_evicting += 1
                return InsertOutcome(InsertStatus.PLACED_EVICTING, evicted=occupant)
        self.stats.unplaced += 1
        return InsertOutcome(InsertStatus.UNPLACED)

    def match_ack(self, flow: FlowKey, ack: int, *,
                  key_crc: Optional[int] = None,
                  key_mix0: Optional[int] = None) -> Optional[PtRecord]:
        """Find-and-delete the record acknowledged by ``ack``.

        Matching uses the constrained 4-byte signature, so a signature
        collision between distinct flows can (rarely) yield a mismatched
        sample — faithfully reproducing the hardware (paper §4).
        ``key_crc``, when given, must equal
        ``crc32(pack2_u32(flow.signature, ack))``, and ``key_mix0`` its
        stage-0 mix — the columnar fast path passes the vectorised
        values so no key is hashed here.
        """
        signature = flow.signature
        if key_crc is None:
            key_crc = zlib.crc32(pack2_u32(signature, ack))
        if key_mix0 is None:
            key_mix0 = _mix32(key_crc)
        for stage in range(self._stage_count):
            if stage == 0:
                index = key_mix0 % self._stage_slots
            else:
                index = stage_index_from_crc(key_crc, stage,
                                             self._stage_slots)
            occupant = self._stages[stage][index]
            if occupant is not None and occupant.matches(signature, ack):
                self._stages[stage][index] = None
                self._occupied -= 1
                self.stats.matches += 1
                return occupant
        self.stats.lookup_misses += 1
        return None

    def discard_flow(self, flow: FlowKey) -> int:
        """Drop all records whose signature matches ``flow`` (helper)."""
        signature = flow.signature
        dropped = 0
        for stage in self._stages:
            for index, occupant in enumerate(stage):
                if occupant is not None and occupant.signature == signature:
                    stage[index] = None
                    dropped += 1
        self._occupied -= dropped
        return dropped

    def occupancy(self) -> int:
        return self._occupied

    def records(self) -> List[PtRecord]:
        """All live records (introspection for tests and examples)."""
        return [
            slot for stage in self._stages for slot in stage if slot is not None
        ]


def make_packet_table(total_slots: Optional[int], stages: int = 1):
    """Build the PT backend matching a :class:`~repro.core.config.DartConfig`."""
    if total_slots is None:
        return AssociativePacketTable()
    return StagedPacketTable(total_slots, stages)
