"""The analytics module — paper §3.3.

Analytics components consume the RTT sample stream.  Beyond aggregation,
an analytics module can *reduce* data-plane resource usage: its
``worth_recirculating`` hook lets the pipeline drop evicted PT records
that can no longer produce a sample the analytics would care about
(e.g. a sample that cannot beat the current windowed minimum).

Provided components:

* :class:`CollectAllAnalytics` — keep everything (evaluation default).
* :class:`MinFilterAnalytics` — track the minimum RTT per key per window
  (the paper's propagation-delay monitoring example), with windows by
  sample count or by time.
* :class:`PrefixMinAnalytics` — minimum RTT aggregated per destination
  prefix (the paper's /24 aggregation suggestion).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional

from ..net.inet import prefix_of
from .flow import FlowKey
from .samples import RttSample, SampleCollector


def flow_key(sample: RttSample) -> Hashable:
    """The default aggregation key: the sample's SEQ-direction flow.

    A module-level function (not a lambda) so analytics objects pickle —
    checkpointing a streaming run snapshots the whole monitor, analytics
    included.
    """
    return sample.flow


class CollectAllAnalytics:
    """Stores every sample; never purges recirculating records."""

    def __init__(self) -> None:
        self.collector = SampleCollector()

    def add(self, sample: RttSample) -> None:
        self.collector.add(sample)

    def worth_recirculating(self, flow: FlowKey, timestamp_ns: int,
                            now_ns: int) -> bool:
        return True

    @property
    def samples(self) -> List[RttSample]:
        return self.collector.samples

    def drain_samples(self) -> List[RttSample]:
        """Hand over (and forget) every retained sample.

        The streaming runner calls this on its rotation interval so a
        long run's retained list stays bounded; the samples were already
        routed to sinks at emission time, so dropping the retained copy
        loses nothing.
        """
        return self.collector.drain()


@dataclass(frozen=True, slots=True)
class WindowMinimum:
    """One closed window's minimum RTT for a key."""

    key: Hashable
    window_index: int
    min_rtt_ns: int
    sample_count: int
    closed_at_ns: int


class _WindowState:
    __slots__ = ("window_index", "min_rtt_ns", "sample_count",
                 "started_at_ns", "last_sample_ns")

    def __init__(self, window_index: int, started_at_ns: int) -> None:
        self.window_index = window_index
        self.min_rtt_ns: Optional[int] = None
        self.sample_count = 0
        self.started_at_ns = started_at_ns
        self.last_sample_ns = started_at_ns


class MinFilterAnalytics:
    """Windowed minimum-RTT tracking (the paper's min-filtering example).

    Windows can close after a fixed number of samples (paper §5.2 uses 8
    consecutive samples) or after a fixed time span — give exactly one of
    ``window_samples`` / ``window_ns``.

    ``key_fn`` maps each sample to its aggregation key (default: the
    flow 4-tuple).  Closed windows are appended to :attr:`history` and
    handed to ``on_window`` if provided, which is how the interception
    detector (:mod:`repro.detection`) consumes Dart output in real time.

    Long-run memory: by default every closed window is retained forever
    (the batch evaluation mode).  A continuous run bounds that two ways:
    ``retain_windows=N`` caps the per-key index at the N most recent
    closed windows per key, and :meth:`drain_windows` hands the whole
    accumulated history to a caller (the streaming runner ships drained
    windows to an export sink on its rotation interval, so retained
    state stays O(live keys), not O(run length)).  :meth:`expire_idle`
    additionally lets a long-lived run shed open-window state for keys
    that have gone quiet.
    """

    def __init__(
        self,
        *,
        window_samples: Optional[int] = None,
        window_ns: Optional[int] = None,
        key_fn: Optional[Callable[[RttSample], Hashable]] = None,
        on_window: Optional[Callable[[WindowMinimum], None]] = None,
        retain_windows: Optional[int] = None,
    ) -> None:
        if (window_samples is None) == (window_ns is None):
            raise ValueError("give exactly one of window_samples / window_ns")
        if window_samples is not None and window_samples <= 0:
            raise ValueError("window_samples must be positive")
        if window_ns is not None and window_ns <= 0:
            raise ValueError("window_ns must be positive")
        if retain_windows is not None and retain_windows <= 0:
            raise ValueError("retain_windows must be positive")
        self._window_samples = window_samples
        self._window_ns = window_ns
        self._key_fn = key_fn if key_fn is not None else flow_key
        self._on_window = on_window
        self._retain_windows = retain_windows
        self._state: Dict[Hashable, _WindowState] = {}
        self.history: List[WindowMinimum] = []
        self._by_key: Dict[Hashable, deque] = {}
        self.sample_count = 0
        self.windows_closed = 0
        self.windows_evicted = 0

    def add(self, sample: RttSample) -> None:
        self.sample_count += 1
        key = self._key_fn(sample)
        state = self._state.get(key)
        if state is None:
            state = _WindowState(0, sample.timestamp_ns)
            self._state[key] = state
        state.last_sample_ns = sample.timestamp_ns
        if self._window_ns is not None:
            # Close any windows the clock has already passed (time-based
            # windows can close without a sample arriving in them).
            while sample.timestamp_ns - state.started_at_ns >= self._window_ns:
                self._close(key, state, sample.timestamp_ns)
                state.window_index += 1
                state.started_at_ns += self._window_ns
        if state.min_rtt_ns is None or sample.rtt_ns < state.min_rtt_ns:
            state.min_rtt_ns = sample.rtt_ns
        state.sample_count += 1
        if (
            self._window_samples is not None
            and state.sample_count >= self._window_samples
        ):
            self._close(key, state, sample.timestamp_ns)
            state.window_index += 1
            state.started_at_ns = sample.timestamp_ns

    def _close(self, key: Hashable, state: _WindowState, now_ns: int) -> None:
        if state.min_rtt_ns is None:
            # An empty time window carries no information; skip it.
            state.sample_count = 0
            return
        window = WindowMinimum(
            key=key,
            window_index=state.window_index,
            min_rtt_ns=state.min_rtt_ns,
            sample_count=state.sample_count,
            closed_at_ns=now_ns,
        )
        self._record_window(window)
        if self._on_window is not None:
            self._on_window(window)
        state.min_rtt_ns = None
        state.sample_count = 0

    def _record_window(self, window: WindowMinimum) -> None:
        """Append a closed window to the history and the per-key index.

        The only write path into :attr:`history` — the cluster merge
        (:func:`repro.cluster.merge.absorb_window_history`) also funnels
        through it so the index can never go stale.  With
        ``retain_windows`` set the per-key index holds only the most
        recent N windows per key (older ones are evicted and counted).
        """
        self.history.append(window)
        self.windows_closed += 1
        per_key = self._by_key.get(window.key)
        if per_key is None:
            # maxlen=None keeps the historical unbounded behaviour.
            per_key = deque(maxlen=self._retain_windows)
            self._by_key[window.key] = per_key
        if per_key.maxlen is not None and len(per_key) == per_key.maxlen:
            self.windows_evicted += 1
        per_key.append(window)

    def drain_windows(self) -> List[WindowMinimum]:
        """Hand over (and forget) every retained closed window.

        The streaming hand-off: the runner ships drained windows to an
        export sink on its rotation interval, so in-process window state
        stays bounded by the rotation interval rather than growing with
        the run.  Open windows are untouched; :meth:`minima_for` answers
        from the retained set, so it starts empty after a drain.
        """
        drained = self.history
        self.history = []
        self._by_key.clear()
        return drained

    def expire_idle(self, now_ns: int, idle_ns: int) -> int:
        """Close and drop open-window state for keys gone quiet.

        A key whose last sample is at least ``idle_ns`` old has its open
        window closed (recorded like any other) and its state removed,
        so a continuous run's per-key state tracks *live* keys instead
        of every key ever seen.  Returns the number of keys expired.
        """
        if idle_ns <= 0:
            raise ValueError("idle_ns must be positive")
        expired = [
            key
            for key, state in self._state.items()
            if now_ns - state.last_sample_ns >= idle_ns
        ]
        for key in expired:
            state = self._state.pop(key)
            self._close(key, state, now_ns)
        return len(expired)

    def flush(self, now_ns: int) -> None:
        """Close all open windows (end of trace)."""
        for key, state in self._state.items():
            self._close(key, state, now_ns)

    def current_min(self, key: Hashable) -> Optional[int]:
        """Minimum RTT observed so far in the key's open window."""
        state = self._state.get(key)
        return state.min_rtt_ns if state is not None else None

    def minima_for(self, key: Hashable) -> List[WindowMinimum]:
        """Closed-window minima for one key, in window order.

        Answered from a per-key index in O(len(answer)) rather than a
        scan of the whole history (which grows with every key).
        """
        return list(self._by_key.get(key, ()))

    # -- Preemptive discard (paper §3.3) -----------------------------------

    def worth_recirculating(self, flow: FlowKey, timestamp_ns: int,
                            now_ns: int) -> bool:
        """Is an evicted record still able to produce a *useful* sample?

        The best-case sample from a record inserted at ``timestamp_ns``
        is ``now - timestamp``; if that already exceeds the current
        window's minimum for the record's key, recirculating it can only
        waste bandwidth (paper §3.3, "preemptively discard useless
        samples").
        """
        key = self._key_fn(_probe_sample(flow, now_ns))
        current = self.current_min(key)
        if current is None:
            return True
        return now_ns - timestamp_ns < current


def _probe_sample(flow: FlowKey, now_ns: int) -> RttSample:
    """A throwaway sample used only to evaluate ``key_fn`` for a flow."""
    return RttSample(flow=flow, rtt_ns=0, timestamp_ns=now_ns, eack=0)


@dataclass(frozen=True, slots=True)
class DstPrefixKey:
    """Picklable key function: the data receiver's /N prefix.

    A callable dataclass rather than a closure so analytics configured
    with it survive pickling — both the cluster's process boundary and
    the streaming checkpoint snapshot require it.
    """

    prefix_len: int = 24

    def __call__(self, sample: RttSample) -> Hashable:
        return prefix_of(sample.flow.dst_ip, self.prefix_len)


def dst_prefix_key(prefix_len: int = 24) -> Callable[[RttSample], Hashable]:
    """Key function aggregating samples by the data receiver's prefix.

    For external-leg measurement the SEQ-direction flow's destination is
    the remote (Internet) host, so this aggregates per remote /24 — the
    paper's suggested congestion view (§3.1).
    """
    return DstPrefixKey(prefix_len)


class PrefixMinAnalytics(MinFilterAnalytics):
    """Minimum-RTT windows aggregated per destination /N prefix."""

    def __init__(
        self,
        *,
        prefix_len: int = 24,
        window_samples: Optional[int] = None,
        window_ns: Optional[int] = None,
        on_window: Optional[Callable[[WindowMinimum], None]] = None,
    ) -> None:
        super().__init__(
            window_samples=window_samples,
            window_ns=window_ns,
            key_fn=dst_prefix_key(prefix_len),
            on_window=on_window,
        )
        self.prefix_len = prefix_len
