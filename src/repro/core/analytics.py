"""The analytics module — paper §3.3.

Analytics components consume the RTT sample stream.  Beyond aggregation,
an analytics module can *reduce* data-plane resource usage: its
``worth_recirculating`` hook lets the pipeline drop evicted PT records
that can no longer produce a sample the analytics would care about
(e.g. a sample that cannot beat the current windowed minimum).

Provided components:

* :class:`CollectAllAnalytics` — keep everything (evaluation default).
* :class:`MinFilterAnalytics` — track the minimum RTT per key per window
  (the paper's propagation-delay monitoring example), with windows by
  sample count or by time.
* :class:`PrefixMinAnalytics` — minimum RTT aggregated per destination
  prefix (the paper's /24 aggregation suggestion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional

from ..net.inet import prefix_of
from .flow import FlowKey
from .samples import RttSample, SampleCollector


class CollectAllAnalytics:
    """Stores every sample; never purges recirculating records."""

    def __init__(self) -> None:
        self.collector = SampleCollector()

    def add(self, sample: RttSample) -> None:
        self.collector.add(sample)

    def worth_recirculating(self, flow: FlowKey, timestamp_ns: int,
                            now_ns: int) -> bool:
        return True

    @property
    def samples(self) -> List[RttSample]:
        return self.collector.samples


@dataclass(frozen=True, slots=True)
class WindowMinimum:
    """One closed window's minimum RTT for a key."""

    key: Hashable
    window_index: int
    min_rtt_ns: int
    sample_count: int
    closed_at_ns: int


class _WindowState:
    __slots__ = ("window_index", "min_rtt_ns", "sample_count", "started_at_ns")

    def __init__(self, window_index: int, started_at_ns: int) -> None:
        self.window_index = window_index
        self.min_rtt_ns: Optional[int] = None
        self.sample_count = 0
        self.started_at_ns = started_at_ns


class MinFilterAnalytics:
    """Windowed minimum-RTT tracking (the paper's min-filtering example).

    Windows can close after a fixed number of samples (paper §5.2 uses 8
    consecutive samples) or after a fixed time span — give exactly one of
    ``window_samples`` / ``window_ns``.

    ``key_fn`` maps each sample to its aggregation key (default: the
    flow 4-tuple).  Closed windows are appended to :attr:`history` and
    handed to ``on_window`` if provided, which is how the interception
    detector (:mod:`repro.detection`) consumes Dart output in real time.
    """

    def __init__(
        self,
        *,
        window_samples: Optional[int] = None,
        window_ns: Optional[int] = None,
        key_fn: Optional[Callable[[RttSample], Hashable]] = None,
        on_window: Optional[Callable[[WindowMinimum], None]] = None,
    ) -> None:
        if (window_samples is None) == (window_ns is None):
            raise ValueError("give exactly one of window_samples / window_ns")
        if window_samples is not None and window_samples <= 0:
            raise ValueError("window_samples must be positive")
        if window_ns is not None and window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self._window_samples = window_samples
        self._window_ns = window_ns
        self._key_fn = key_fn or (lambda sample: sample.flow)
        self._on_window = on_window
        self._state: Dict[Hashable, _WindowState] = {}
        self.history: List[WindowMinimum] = []
        self._by_key: Dict[Hashable, List[WindowMinimum]] = {}
        self.sample_count = 0

    def add(self, sample: RttSample) -> None:
        self.sample_count += 1
        key = self._key_fn(sample)
        state = self._state.get(key)
        if state is None:
            state = _WindowState(0, sample.timestamp_ns)
            self._state[key] = state
        if self._window_ns is not None:
            # Close any windows the clock has already passed (time-based
            # windows can close without a sample arriving in them).
            while sample.timestamp_ns - state.started_at_ns >= self._window_ns:
                self._close(key, state, sample.timestamp_ns)
                state.window_index += 1
                state.started_at_ns += self._window_ns
        if state.min_rtt_ns is None or sample.rtt_ns < state.min_rtt_ns:
            state.min_rtt_ns = sample.rtt_ns
        state.sample_count += 1
        if (
            self._window_samples is not None
            and state.sample_count >= self._window_samples
        ):
            self._close(key, state, sample.timestamp_ns)
            state.window_index += 1
            state.started_at_ns = sample.timestamp_ns

    def _close(self, key: Hashable, state: _WindowState, now_ns: int) -> None:
        if state.min_rtt_ns is None:
            # An empty time window carries no information; skip it.
            state.sample_count = 0
            return
        window = WindowMinimum(
            key=key,
            window_index=state.window_index,
            min_rtt_ns=state.min_rtt_ns,
            sample_count=state.sample_count,
            closed_at_ns=now_ns,
        )
        self._record_window(window)
        if self._on_window is not None:
            self._on_window(window)
        state.min_rtt_ns = None
        state.sample_count = 0

    def _record_window(self, window: WindowMinimum) -> None:
        """Append a closed window to the history and the per-key index.

        The only write path into :attr:`history` — the cluster merge
        (:func:`repro.cluster.merge.absorb_window_history`) also funnels
        through it so the index can never go stale.
        """
        self.history.append(window)
        self._by_key.setdefault(window.key, []).append(window)

    def flush(self, now_ns: int) -> None:
        """Close all open windows (end of trace)."""
        for key, state in self._state.items():
            self._close(key, state, now_ns)

    def current_min(self, key: Hashable) -> Optional[int]:
        """Minimum RTT observed so far in the key's open window."""
        state = self._state.get(key)
        return state.min_rtt_ns if state is not None else None

    def minima_for(self, key: Hashable) -> List[WindowMinimum]:
        """Closed-window minima for one key, in window order.

        Answered from a per-key index in O(len(answer)) rather than a
        scan of the whole history (which grows with every key).
        """
        return list(self._by_key.get(key, ()))

    # -- Preemptive discard (paper §3.3) -----------------------------------

    def worth_recirculating(self, flow: FlowKey, timestamp_ns: int,
                            now_ns: int) -> bool:
        """Is an evicted record still able to produce a *useful* sample?

        The best-case sample from a record inserted at ``timestamp_ns``
        is ``now - timestamp``; if that already exceeds the current
        window's minimum for the record's key, recirculating it can only
        waste bandwidth (paper §3.3, "preemptively discard useless
        samples").
        """
        key = self._key_fn(_probe_sample(flow, now_ns))
        current = self.current_min(key)
        if current is None:
            return True
        return now_ns - timestamp_ns < current


def _probe_sample(flow: FlowKey, now_ns: int) -> RttSample:
    """A throwaway sample used only to evaluate ``key_fn`` for a flow."""
    return RttSample(flow=flow, rtt_ns=0, timestamp_ns=now_ns, eack=0)


def dst_prefix_key(prefix_len: int = 24) -> Callable[[RttSample], Hashable]:
    """Key function aggregating samples by the data receiver's prefix.

    For external-leg measurement the SEQ-direction flow's destination is
    the remote (Internet) host, so this aggregates per remote /24 — the
    paper's suggested congestion view (§3.1).
    """

    def key_fn(sample: RttSample) -> Hashable:
        return prefix_of(sample.flow.dst_ip, prefix_len)

    return key_fn


class PrefixMinAnalytics(MinFilterAnalytics):
    """Minimum-RTT windows aggregated per destination /N prefix."""

    def __init__(
        self,
        *,
        prefix_len: int = 24,
        window_samples: Optional[int] = None,
        window_ns: Optional[int] = None,
        on_window: Optional[Callable[[WindowMinimum], None]] = None,
    ) -> None:
        super().__init__(
            window_samples=window_samples,
            window_ns=window_ns,
            key_fn=dst_prefix_key(prefix_len),
            on_window=on_window,
        )
        self.prefix_len = prefix_len
