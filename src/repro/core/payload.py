"""TCP payload-size computation, including the paper's lookup-table trick.

Computing ``payload = ip_total_length - 4*ihl - 4*data_offset`` needs two
32-bit subtractions, which costs pipeline stages on the Tofino.  The
paper (§4) instead precomputes the result for the common header shapes —
IHL of 5 words, total length 40–1480 bytes, TCP data offset 5–15 words —
and stores them in a lookup table, saving two stages.

This module models that optimization so that (a) the resource estimator
(:mod:`repro.hw`) can account for the saved stages, and (b) the hit/miss
behaviour on uncommon header shapes is testable.  The Python data path
itself always knows the payload length; the model verifies agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

MIN_TOTAL_LENGTH = 40
MAX_TOTAL_LENGTH = 1480
COMMON_IHL = 5
MIN_DATA_OFFSET = 5
MAX_DATA_OFFSET = 15


def arithmetic_payload_size(total_length: int, ihl: int, data_offset: int) -> int:
    """The naive (stage-expensive on hardware) payload computation."""
    payload = total_length - 4 * ihl - 4 * data_offset
    if payload < 0:
        raise ValueError(
            f"inconsistent lengths: total={total_length} ihl={ihl} "
            f"data_offset={data_offset}"
        )
    return payload


@dataclass
class PayloadTableStats:
    hits: int = 0
    fallbacks: int = 0


class PayloadSizeTable:
    """The precomputed (total_length, data_offset) -> payload table.

    Entries exist for IHL == 5, total length 40..1480, data offset 5..15
    (the paper's chosen ranges).  Anything else falls back to arithmetic
    and is counted, mirroring the note that the optimization "can be
    easily reversed to support any values".
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple[int, int], int] = {}
        for total_length in range(MIN_TOTAL_LENGTH, MAX_TOTAL_LENGTH + 1):
            for data_offset in range(MIN_DATA_OFFSET, MAX_DATA_OFFSET + 1):
                payload = total_length - 4 * COMMON_IHL - 4 * data_offset
                if payload >= 0:
                    self._table[(total_length, data_offset)] = payload
        self.stats = PayloadTableStats()

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, total_length: int, ihl: int, data_offset: int) -> int:
        """Payload size via table hit or arithmetic fallback."""
        if ihl == COMMON_IHL:
            payload = self._table.get((total_length, data_offset))
            if payload is not None:
                self.stats.hits += 1
                return payload
        self.stats.fallbacks += 1
        return arithmetic_payload_size(total_length, ihl, data_offset)

    def covers(self, total_length: int, ihl: int, data_offset: int) -> bool:
        """True when the fast path (no fallback) would be taken."""
        return ihl == COMMON_IHL and (total_length, data_offset) in self._table
