"""The Dart pipeline: classification, RT, PT, recirculation, analytics.

This is the top-level monitor (paper Fig 3).  Each observed packet is
processed first on its SEQ role (if it carries data) and then on its ACK
role (if it carries an acknowledgment), mirroring the hardware's
process-then-recirculate handling of dual-role packets (§5.1).

The recirculation loop implemented here (paper §3.2):

1. A PT insertion that evicts a record — or leaves the inserted record
   unplaced — produces a *candidate* for recirculation.
2. Cycle detection: a candidate about to chase the record that it itself
   evicted earlier self-destructs.
3. The per-record recirculation budget is enforced.
4. With ``analytics_purge`` on, the analytics module may veto the
   recirculation when the record can no longer produce a useful sample
   (§3.3).
5. A surviving candidate re-consults the Range Tracker; stale records
   self-destruct, valid ones re-enter PT insertion.

With ``recirculation_delay_packets == 0`` recirculated records re-enter
immediately (the idealized simulator the paper evaluates with); a
positive delay makes them re-enter after that many subsequent packets,
modelling recirculation latency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, fields
from itertools import islice
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from ..net import tcp as tcp_mod
from ..net.inet import prefix_of
from ..net.packet import PacketRecord
from .analytics import CollectAllAnalytics
from .config import DartConfig
from .flow import FlowKey, ack_target_flow, flow_of, intern_flow
from .packet_tracker import (
    InsertStatus,
    PtRecord,
    make_packet_table,
)
from .range_tracker import AckVerdict, RangeTracker, SeqVerdict
from .samples import RttSample

LegFilter = Callable[[PacketRecord], Optional[str]]
TargetFilter = Callable[[PacketRecord], bool]

EXTERNAL_LEG = "external"
INTERNAL_LEG = "internal"

# Flag masks, hoisted for the hot loop: carries-data is
# "payload > 0 or SYN or FIN" (both flags consume sequence space).
_SYN = tcp_mod.FLAG_SYN
_RST = tcp_mod.FLAG_RST
_ACK = tcp_mod.FLAG_ACK
_SEQ_SPACE_FLAGS = tcp_mod.FLAG_SYN | tcp_mod.FLAG_FIN

#: Records per chunk when :meth:`Dart.process_trace` drains an iterable
#: through the batched fast path.
TRACE_CHUNK = 8192


@dataclass(slots=True)
class DartStats:
    """Pipeline-level counters behind the §6.2 metrics.

    Every field is either a plain additive counter or a verdict→count
    mapping, so two stats objects merge by summation — the property the
    sharded coordinator (:mod:`repro.cluster`) relies on.
    """

    packets_processed: int = 0
    seq_packets: int = 0
    ack_packets: int = 0
    ignored_syn: int = 0
    ignored_rst: int = 0
    filtered_out: int = 0
    tracked_inserts: int = 0
    samples: int = 0
    handshake_samples: int = 0
    evictions: int = 0
    recirculations: int = 0
    stale_self_destructs: int = 0
    cycle_self_destructs: int = 0
    budget_drops: int = 0
    analytics_purges: int = 0
    shadow_discards: int = 0
    shadow_false_discards: int = 0
    shadow_false_keeps: int = 0
    seq_verdicts: Dict[SeqVerdict, int] = field(default_factory=dict)
    ack_verdicts: Dict[AckVerdict, int] = field(default_factory=dict)

    @staticmethod
    def _bump(verdicts: Dict, verdict, count: int = 1) -> None:
        """Count a verdict (the single write path into the verdict dicts)."""
        verdicts[verdict] = verdicts.get(verdict, 0) + count

    def merge(self, other: "DartStats") -> "DartStats":
        """Fold ``other``'s counts into this object; returns self.

        Plain counters add; verdict histograms add per verdict.  Used to
        aggregate per-shard stats into a cluster-wide view.
        """
        for f in fields(self):
            if f.name in ("seq_verdicts", "ack_verdicts"):
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        for verdict, count in other.seq_verdicts.items():
            self._bump(self.seq_verdicts, verdict, count)
        for verdict, count in other.ack_verdicts.items():
            self._bump(self.ack_verdicts, verdict, count)
        return self

    def recirculations_per_packet(self) -> float:
        """The paper's recirculation-overhead metric (Figs 11c/12c/13c)."""
        if self.packets_processed == 0:
            return 0.0
        return self.recirculations / self.packets_processed


class Dart:
    """A Dart monitor instance.

    Args:
        config: table sizing and behaviour knobs (default: ideal mode).
        analytics: sample consumer with optional ``worth_recirculating``;
            defaults to :class:`CollectAllAnalytics`.
        leg_filter: maps a *data* packet to the leg it measures
            ("external"/"internal"), or None to skip tracking it.  When
            omitted, every data packet is tracked (both legs, unlabeled).
        target_filter: operator flow-selection rules (paper §4,
            "specifying target flows"); packets rejected by the filter are
            not processed at all.
    """

    def __init__(
        self,
        config: Optional[DartConfig] = None,
        *,
        analytics=None,
        leg_filter: Optional[LegFilter] = None,
        target_filter: Optional[TargetFilter] = None,
    ) -> None:
        self.config = config or DartConfig()
        self.analytics = analytics if analytics is not None else CollectAllAnalytics()
        self._leg_filter = leg_filter
        self._target_filter = target_filter
        self.range_tracker = RangeTracker(
            self.config.rt_slots,
            overwrite_collapsed=self.config.rt_overwrite_collapsed,
            handle_wraparound=self.config.handle_wraparound,
            timeout_ns=self.config.rt_timeout_ns,
        )
        self.packet_tracker = make_packet_table(
            self.config.pt_slots, self.config.pt_stages
        )
        self.stats = DartStats()
        self._next_record_id = 0
        self._now_ns = 0
        self._recirc_queue: Deque[Tuple[int, PtRecord]] = deque()
        # §7 shadow RT: a lagging copy of the Range Tracker placed after
        # the PT, letting stale evicted records die without recirculating.
        self._shadow_tracker: Optional[RangeTracker] = None
        self._shadow_queue: Deque[Tuple[int, str, FlowKey, int, int]] = deque()
        if self.config.shadow_rt:
            self._shadow_tracker = RangeTracker(
                self.config.rt_slots,
                overwrite_collapsed=self.config.rt_overwrite_collapsed,
                handle_wraparound=self.config.handle_wraparound,
            )

    # -- Packet entry point -------------------------------------------------

    def process(self, record: PacketRecord) -> List[RttSample]:
        """Process one observed packet; returns samples it produced."""
        stats = self.stats
        stats.packets_processed += 1
        self._now_ns = record.timestamp_ns
        if self._recirc_queue:
            self._drain_due_recirculations()
        if self._shadow_tracker is not None:
            self._drain_shadow_updates()

        if self._target_filter is not None and not self._target_filter(record):
            stats.filtered_out += 1
            return []

        flags = record.flags
        track_handshake = self.config.track_handshake
        if flags & _SYN and not track_handshake:
            # -SYN mode ignores SYN and SYN-ACK entirely (robust to SYN
            # floods; no RT/PT state until the handshake completes).
            stats.ignored_syn += 1
            return []

        if flags & _RST:
            stats.ignored_rst += 1
            return []

        samples: List[RttSample] = []
        if record.payload_len or flags & _SEQ_SPACE_FLAGS:
            self._process_data(record)
        if flags & _ACK:
            # A plain ACK matches a tracked data packet; a SYN-ACK
            # acknowledges the client's SYN (+SYN mode only — -SYN
            # returned above).
            if not flags & _SYN or track_handshake:
                sample = self._process_ack(record)
                if sample is not None:
                    samples.append(sample)
        return samples

    def process_batch(self, records: Iterable[Optional[PacketRecord]]
                      ) -> List[RttSample]:
        """Process a batch of packets through the hoisted fast path.

        Semantically identical to calling :meth:`process` per record
        (same stats, samples, analytics windows, table state — the
        equivalence is pinned by tests), but attribute lookups, config
        flag reads, and the empty recirculation/shadow-queue checks are
        hoisted out of the inner loop, and packets with no role (no
        data, no ACK) exit before any tracker is touched.

        ``None`` entries are skipped entirely: the pcap decoder yields
        ``None`` for non-TCP frames, so a decoded capture block can be
        fed as-is.  Returns the samples produced, in order.
        """
        if type(self).process is not Dart.process:
            # A subclass customised per-packet processing (fault
            # injection, instrumentation); the fast path must not skip
            # its hook.
            samples = []
            for record in records:
                if record is not None:
                    samples.extend(self.process(record))
            return samples
        stats = self.stats
        config = self.config
        track_handshake = config.track_handshake
        target_filter = self._target_filter
        shadow = self._shadow_tracker
        recirc_queue = self._recirc_queue
        process_data = self._process_data
        process_ack = self._process_ack
        samples: List[RttSample] = []
        append = samples.append
        for record in records:
            if record is None:  # non-TCP frame, already dropped by decode
                continue
            stats.packets_processed += 1
            self._now_ns = record.timestamp_ns
            if recirc_queue:
                self._drain_due_recirculations()
            if shadow is not None:
                self._drain_shadow_updates()
            if target_filter is not None and not target_filter(record):
                stats.filtered_out += 1
                continue
            flags = record.flags
            if flags & _SYN and not track_handshake:
                stats.ignored_syn += 1
                continue
            if flags & _RST:
                stats.ignored_rst += 1
                continue
            if record.payload_len or flags & _SEQ_SPACE_FLAGS:
                process_data(record)
            if flags & _ACK:
                if not flags & _SYN or track_handshake:
                    sample = process_ack(record)
                    if sample is not None:
                        append(sample)
        return samples

    def process_trace(self, records) -> "Dart":
        """Process an iterable of packets; returns self for chaining.

        Drains the iterable through :meth:`process_batch` in
        ``TRACE_CHUNK``-sized chunks, so trace-level callers get the
        batched fast path without materialising generator inputs.
        """
        iterator = iter(records)
        process_batch = self.process_batch
        while True:
            chunk = list(islice(iterator, TRACE_CHUNK))
            if not chunk:
                return self
            process_batch(chunk)

    def process_columns(self, cols) -> List[RttSample]:
        """Process a decoded columnar batch
        (:class:`~repro.net.columnar.PacketColumns`).

        The classification stage — decode, role masks, expected ACKs,
        flow CRCs and signatures — arrives precomputed as columns; this
        method runs only the scalar mutation stage (``_data_op`` /
        ``_ack_op``) per row, pre-filling each interned ``FlowKey``'s
        lazy hash caches from the vectorised values so the trackers
        never hash a key on this path.  Semantically identical to
        ``process_batch(cols.to_records())`` — same stats, samples,
        analytics windows, and table state, pinned by the equivalence
        suite — and falls back to exactly that call whenever a subclass
        hook or a configured filter needs the per-record view.
        """
        if (type(self).process is not Dart.process
                or type(self)._process_data is not Dart._process_data
                or type(self)._process_ack is not Dart._process_ack
                or self._target_filter is not None
                or self._leg_filter is not None):
            return self.process_batch(cols.to_records())
        n = cols.n
        if n == 0:
            return []
        from ..fastpath import classify
        from ..net.columnar import KIND_RECORD, KIND_SKIP

        kinds = cols.kinds.tolist()
        ts_col = cols.timestamps.tolist()
        src = cols.src_ip.tolist()
        dst = cols.dst_ip.tolist()
        sport = cols.src_port.tolist()
        dport = cols.dst_port.tolist()
        seq_col = cols.seq.tolist()
        ack_col = cols.ack.tolist()
        eack_arr = classify.eack_values(cols)
        eack_col = eack_arr.tolist()
        crc_arr = classify.flow_crcs(cols)
        crc_col = crc_arr.tolist()
        sig_arr = classify.signatures(cols)
        sig_col = sig_arr.tolist()
        mix_col = classify.mix32(crc_arr).tolist()
        rcrc_arr = classify.flow_crcs(cols, reverse=True)
        rcrc_col = rcrc_arr.tolist()
        rsig_arr = classify.signatures(cols, reverse=True)
        rsig_col = rsig_arr.tolist()
        rmix_col = classify.mix32(rcrc_arr).tolist()
        # PT keys, both sides: the insertion key of a data packet and
        # the lookup key of an ACK, each with its stage-0 mix.
        ptcrc_arr = classify.pt_match_crcs(sig_arr, eack_arr)
        ptcrc_col = ptcrc_arr.tolist()
        ptmix_col = classify.mix32(ptcrc_arr).tolist()
        match_arr = classify.pt_match_crcs(rsig_arr, cols.ack)
        match_col = match_arr.tolist()
        mmix_col = classify.mix32(match_arr).tolist()
        # Role bitfield per row: 1=data, 2=ack, 4=syn, 8=rst — the same
        # four tests ``process`` makes, evaluated batch-wide.
        flags_arr = cols.flags
        role = (((cols.payload_len > 0)
                 | ((flags_arr & _SEQ_SPACE_FLAGS) != 0)) * 1
                + ((flags_arr & _ACK) != 0) * 2
                + ((flags_arr & _SYN) != 0) * 4
                + ((flags_arr & _RST) != 0) * 8).tolist()

        stats = self.stats
        track_handshake = self.config.track_handshake
        shadow = self._shadow_tracker
        recirc_queue = self._recirc_queue
        fallback_records = cols.records
        data_op = self._data_op
        ack_op = self._ack_op
        process_data = self._process_data
        process_ack = self._process_ack
        intern = intern_flow
        samples: List[RttSample] = []
        append = samples.append
        set_cache = object.__setattr__
        for i in range(n):
            kind = kinds[i]
            if kind == KIND_SKIP:
                continue
            if kind == KIND_RECORD:
                # Fallback row (IPv6, IP/TCP options): the per-record
                # path, inlined from ``process_batch``.
                record = fallback_records[i]
                stats.packets_processed += 1
                self._now_ns = record.timestamp_ns
                if recirc_queue:
                    self._drain_due_recirculations()
                if shadow is not None:
                    self._drain_shadow_updates()
                flags = record.flags
                if flags & _SYN and not track_handshake:
                    stats.ignored_syn += 1
                    continue
                if flags & _RST:
                    stats.ignored_rst += 1
                    continue
                if record.payload_len or flags & _SEQ_SPACE_FLAGS:
                    process_data(record)
                if flags & _ACK:
                    if not flags & _SYN or track_handshake:
                        sample = process_ack(record)
                        if sample is not None:
                            append(sample)
                continue
            # Vectorised row: classification already done.
            stats.packets_processed += 1
            ts = ts_col[i]
            self._now_ns = ts
            if recirc_queue:
                self._drain_due_recirculations()
            if shadow is not None:
                self._drain_shadow_updates()
            r = role[i]
            if r & 4 and not track_handshake:
                stats.ignored_syn += 1
                continue
            if r & 8:
                stats.ignored_rst += 1
                continue
            if r & 1:
                flow = intern(src[i], dst[i], sport[i], dport[i], False)
                if flow._crc is None:
                    set_cache(flow, "_crc", crc_col[i])
                    set_cache(flow, "_sig", sig_col[i])
                    set_cache(flow, "_mix0", mix_col[i])
                data_op(flow, seq_col[i], eack_col[i], ts,
                        bool(r & 4), None, ptcrc_col[i], ptmix_col[i])
            if r & 2:
                if not r & 4 or track_handshake:
                    flow = intern(dst[i], src[i], dport[i], sport[i],
                                  False)
                    if flow._crc is None:
                        set_cache(flow, "_crc", rcrc_col[i])
                        set_cache(flow, "_sig", rsig_col[i])
                        set_cache(flow, "_mix0", rmix_col[i])
                    sample = ack_op(flow, ack_col[i], ts, match_col[i],
                                    mmix_col[i])
                    if sample is not None:
                        append(sample)
        return samples

    def finalize(self, at_ns: Optional[int] = None) -> None:
        """Signal end-of-trace to the analytics (flush open windows).

        ``at_ns`` overrides the flush timestamp when this instance saw
        only part of a stream whose true end is later — a flow-sharded
        worker flushes at the global trace end so its closed windows
        match what a serial run would have produced.
        """
        flush = getattr(self.analytics, "flush", None)
        if flush is not None:
            now = self._now_ns if at_ns is None else max(at_ns, self._now_ns)
            flush(now)

    # -- SEQ side ------------------------------------------------------------
    #
    # Each side is split into a *classification* stage (which fields
    # matter, which flow tuple, the expected ACK — pure functions of the
    # record, vectorizable batch-wide) and a *mutation* stage
    # (``_data_op``/``_ack_op``: tracker state transitions, inherently
    # scalar).  ``process_columns`` runs the classification as numpy
    # column ops and feeds the same mutation stage row by row.

    def _process_data(self, record: PacketRecord) -> None:
        leg: Optional[str] = None
        if self._leg_filter is not None:
            leg = self._leg_filter(record)
            if leg is None:
                return
        flow = flow_of(record)
        # record.eack, unrolled: computed once here instead of three
        # property-call chains below.
        flags = record.flags
        seq = record.seq
        eack = (seq + record.payload_len + (1 if flags & _SYN else 0)
                + (1 if flags & tcp_mod.FLAG_FIN else 0)) & 0xFFFFFFFF
        self._data_op(flow, seq, eack, record.timestamp_ns,
                      bool(flags & _SYN), leg)

    def _data_op(self, flow: FlowKey, seq: int, eack: int,
                 timestamp_ns: int, handshake: bool,
                 leg: Optional[str],
                 pt_crc: Optional[int] = None,
                 pt_mix: Optional[int] = None) -> None:
        """Scalar mutation stage of the SEQ side: RT verdict, PT insert.

        ``pt_crc``/``pt_mix`` optionally carry the vectorised PT
        insertion-key CRC (``crc32(pack2_u32(signature, eack))``) and
        its stage-0 mix, pre-filling the new record's lazy hash caches.
        """
        stats = self.stats
        stats.seq_packets += 1
        if self._shadow_tracker is not None:
            self._enqueue_shadow_update("data", flow, seq, eack)
        verdict = self.range_tracker.on_data(
            flow, seq, eack, now_ns=timestamp_ns
        )
        verdicts = stats.seq_verdicts
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        if not verdict.trackable:
            return
        pt_record = PtRecord(
            record_id=self._next_record_id,
            flow=flow,
            signature=flow.signature,
            eack=eack,
            timestamp_ns=timestamp_ns,
            handshake=handshake,
            leg=leg,
        )
        if pt_crc is not None:
            pt_record._crc = pt_crc
            pt_record._mix0 = pt_mix
        self._next_record_id += 1
        stats.tracked_inserts += 1
        self._submit(pt_record)

    # -- ACK side ------------------------------------------------------------

    def _process_ack(self, record: PacketRecord) -> Optional[RttSample]:
        return self._ack_op(ack_target_flow(record), record.ack,
                            record.timestamp_ns)

    def _ack_op(self, flow: FlowKey, ack: int, timestamp_ns: int,
                match_crc: Optional[int] = None,
                match_mix: Optional[int] = None) -> Optional[RttSample]:
        """Scalar mutation stage of the ACK side: RT verdict, PT match.

        ``match_crc``/``match_mix`` optionally carry the vectorised PT
        lookup-key CRC (``crc32(pack2_u32(flow.signature, ack))``) and
        its stage-0 mix.
        """
        stats = self.stats
        stats.ack_packets += 1
        if self._shadow_tracker is not None:
            self._enqueue_shadow_update("ack", flow, ack, 0)
        verdict = self.range_tracker.on_ack(flow, ack, now_ns=timestamp_ns)
        verdicts = stats.ack_verdicts
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        if verdict is not AckVerdict.VALID:
            return None
        pt_record = self.packet_tracker.match_ack(flow, ack,
                                                  key_crc=match_crc,
                                                  key_mix0=match_mix)
        if pt_record is None:
            return None
        sample = RttSample(
            flow=pt_record.flow,
            rtt_ns=timestamp_ns - pt_record.timestamp_ns,
            timestamp_ns=timestamp_ns,
            eack=ack,
            handshake=pt_record.handshake,
            leg=pt_record.leg,
        )
        stats.samples += 1
        if sample.handshake:
            stats.handshake_samples += 1
        self.analytics.add(sample)
        return sample

    # -- PT insertion and the recirculation loop -----------------------------

    def _submit(self, pt_record: PtRecord) -> None:
        """Run insertion passes until every displaced record settles."""
        self._insertion_loop([(pt_record, None)])

    def _insertion_loop(
        self, pending: List[Tuple[PtRecord, Optional[int]]]
    ) -> None:
        while pending:
            candidate, evictor_id = pending.pop()
            outcome = self.packet_tracker.insert(candidate)
            if outcome.status is InsertStatus.PLACED:
                continue
            if outcome.status is InsertStatus.DUPLICATE:
                continue
            if outcome.status is InsertStatus.CYCLE:
                self.stats.cycle_self_destructs += 1
                continue
            if outcome.status is InsertStatus.PLACED_EVICTING:
                self.stats.evictions += 1
                follow = self._consider_recirculation(
                    outcome.evicted, evictor_id=candidate.record_id
                )
            else:  # UNPLACED: the candidate itself needs another pass
                follow = self._consider_recirculation(
                    candidate, evictor_id=evictor_id
                )
            if follow is not None:
                pending.append(follow)

    def _consider_recirculation(
        self, candidate: PtRecord, *, evictor_id: Optional[int]
    ) -> Optional[Tuple[PtRecord, Optional[int]]]:
        """Apply the §3.2 safeguards; returns work for an immediate pass.

        Returns ``(record, evictor_id)`` when the record should re-enter
        insertion right away, or None when it self-destructed or was
        queued for delayed re-entry.
        """
        if (
            evictor_id is not None
            and candidate.last_evicted_id is not None
            and candidate.last_evicted_id == evictor_id
        ):
            # Cycle: evicted by the very record it evicted earlier.
            self.stats.cycle_self_destructs += 1
            return None
        if candidate.recirc_count >= self.config.max_recirculations:
            self.stats.budget_drops += 1
            return None
        if self._shadow_tracker is not None:
            # §7: end-of-pipeline staleness check against the RT copy —
            # a stale record dies here without consuming recirculation
            # bandwidth.  The copy lags, so track its mistakes.
            shadow_valid = self._shadow_tracker.revalidate(
                candidate.flow, candidate.eack
            )
            true_valid = self.range_tracker.revalidate(
                candidate.flow, candidate.eack, now_ns=self._now_ns
            )
            if not shadow_valid:
                self.stats.shadow_discards += 1
                if true_valid:
                    self.stats.shadow_false_discards += 1  # lost sample
                return None
            if not true_valid:
                self.stats.shadow_false_keeps += 1  # wasted recirculation
        if self.config.analytics_purge:
            worth = getattr(self.analytics, "worth_recirculating", None)
            if worth is not None and not worth(
                candidate.flow, candidate.timestamp_ns, self._now_ns
            ):
                self.stats.analytics_purges += 1
                return None
        candidate.recirc_count += 1
        self.stats.recirculations += 1
        if self.config.recirculation_delay_packets > 0:
            due = (
                self.stats.packets_processed
                + self.config.recirculation_delay_packets
            )
            self._recirc_queue.append((due, candidate))
            return None
        return self._revalidate(candidate)

    def _revalidate(
        self, candidate: PtRecord
    ) -> Optional[Tuple[PtRecord, Optional[int]]]:
        """RT second-chance check for a recirculated record."""
        if not self.range_tracker.revalidate(
            candidate.flow, candidate.eack, now_ns=self._now_ns
        ):
            self.stats.stale_self_destructs += 1
            return None
        return (candidate, None)

    def _enqueue_shadow_update(self, kind: str, flow: FlowKey, a: int,
                               b: int) -> None:
        if self._shadow_tracker is None:
            return
        due = self.stats.packets_processed + self.config.shadow_rt_lag_packets
        self._shadow_queue.append((due, kind, flow, a, b))

    def _drain_shadow_updates(self) -> None:
        while (self._shadow_queue
               and self._shadow_queue[0][0] <= self.stats.packets_processed):
            _, kind, flow, a, b = self._shadow_queue.popleft()
            if kind == "data":
                self._shadow_tracker.on_data(flow, a, b)
            else:
                self._shadow_tracker.on_ack(flow, a)

    def _drain_due_recirculations(self) -> None:
        """Re-enter recirculated records whose delay has elapsed."""
        while (
            self._recirc_queue
            and self._recirc_queue[0][0] <= self.stats.packets_processed
        ):
            _, candidate = self._recirc_queue.popleft()
            follow = self._revalidate(candidate)
            if follow is not None:
                self._insertion_loop([follow])

    # -- Introspection ---------------------------------------------------------

    @property
    def samples(self) -> List[RttSample]:
        """Samples retained by the analytics (if it keeps any)."""
        return getattr(self.analytics, "samples", [])

    def drain_samples(self) -> List[RttSample]:
        """Hand over (and forget) the samples the analytics retained.

        Counters in :attr:`stats` are cumulative and unaffected, so a
        long-lived run can periodically empty the retained list (the
        streaming rotation) without breaking ``stats`` or the live
        sample stream, which was already routed at emission time.
        Analytics that retain nothing (e.g. a bare
        :class:`MinFilterAnalytics`) drain as empty.
        """
        drain = getattr(self.analytics, "drain_samples", None)
        if callable(drain):
            return drain()
        retained = getattr(self.analytics, "samples", None)
        if isinstance(retained, list):
            drained = list(retained)
            retained.clear()
            return drained
        return []

    def occupancy(self) -> Tuple[int, int]:
        """Current (RT, PT) occupied-slot counts."""
        return self.range_tracker.occupancy(), self.packet_tracker.occupancy()


@dataclass(frozen=True)
class PrefixLegFilter:
    """Picklable leg filter: internal network given as a prefix.

    Same semantics as :func:`make_leg_filter` over an "is the source
    address inside this prefix?" predicate, but a frozen dataclass
    instead of a closure so monitors configured with it can cross the
    cluster's process boundary and be snapshotted into a streaming
    checkpoint (closures don't pickle).
    """

    network: int
    prefix_len: int
    legs: Tuple[str, ...] = (EXTERNAL_LEG, INTERNAL_LEG)

    def __call__(self, record: PacketRecord) -> Optional[str]:
        internal = prefix_of(record.src_ip, self.prefix_len) == self.network
        leg = EXTERNAL_LEG if internal else INTERNAL_LEG
        return leg if leg in self.legs else None


def make_leg_filter(
    is_internal: Callable[[int], bool],
    *,
    legs: Tuple[str, ...] = (EXTERNAL_LEG, INTERNAL_LEG),
) -> LegFilter:
    """Build a leg filter from an "is this address inside?" predicate.

    A data packet leaving the network (internal source) is matched by an
    ACK returning from the Internet — the *external* leg; a data packet
    entering (external source) is matched by the client's ACK — the
    *internal* leg (paper §2.1, Fig 1).
    """

    def leg_filter(record: PacketRecord) -> Optional[str]:
        leg = EXTERNAL_LEG if is_internal(record.src_ip) else INTERNAL_LEG
        return leg if leg in legs else None

    return leg_filter
