"""Modulo-2**32 TCP sequence-number arithmetic.

TCP sequence and acknowledgment numbers live in a 32-bit circular space
(RFC 793, RFC 1982).  Both Dart's Range Tracker and the tcptrace baseline
must compare and advance sequence numbers correctly across the wraparound
point.  This module centralizes that arithmetic so no other module ever
does raw ``<`` / ``>`` comparisons on sequence numbers.

Comparisons use the standard serial-number convention: ``a`` is *before*
``b`` when the forward distance from ``a`` to ``b`` is less than half the
space.  Distances of exactly half the space are treated as "after" so the
relation stays antisymmetric for distinct values.
"""

from __future__ import annotations

SEQ_SPACE = 1 << 32
SEQ_MASK = SEQ_SPACE - 1
_HALF = 1 << 31


def seq_add(a: int, delta: int) -> int:
    """Return ``a + delta`` wrapped into the 32-bit sequence space."""
    return (a + delta) & SEQ_MASK


def seq_sub(a: int, b: int) -> int:
    """Return the forward distance from ``b`` to ``a`` (mod 2**32)."""
    return (a - b) & SEQ_MASK


def seq_lt(a: int, b: int) -> bool:
    """True when ``a`` precedes ``b`` in circular sequence order."""
    if a == b:
        return False
    return seq_sub(b, a) < _HALF


def seq_le(a: int, b: int) -> bool:
    """True when ``a`` precedes or equals ``b`` in circular order."""
    return a == b or seq_lt(a, b)


def seq_gt(a: int, b: int) -> bool:
    """True when ``a`` follows ``b`` in circular sequence order."""
    return seq_lt(b, a)


def seq_ge(a: int, b: int) -> bool:
    """True when ``a`` follows or equals ``b`` in circular order."""
    return a == b or seq_lt(b, a)


def seq_between(lo: int, x: int, hi: int) -> bool:
    """True when ``x`` is inside the half-open circular interval (lo, hi].

    This is the membership test Dart's Range Tracker uses for the
    measurement range: an ACK number ``x`` is valid when
    ``left < x <= right``.
    """
    if lo == hi:
        return False
    return seq_sub(x, lo) <= seq_sub(hi, lo) and x != lo


def seq_clamp(x: int) -> int:
    """Wrap an arbitrary integer into the sequence space."""
    return x & SEQ_MASK


def wraps(seq: int, payload: int) -> bool:
    """True when a segment starting at ``seq`` with ``payload`` bytes
    crosses the 2**32 wraparound point (i.e. its end index wraps)."""
    return seq + payload >= SEQ_SPACE


def seq_max(a: int, b: int) -> int:
    """Return the later of two sequence numbers in circular order."""
    return a if seq_ge(a, b) else b


def seq_min(a: int, b: int) -> int:
    """Return the earlier of two sequence numbers in circular order."""
    return a if seq_le(a, b) else b
