"""RTT sample types and sample sinks.

Every monitor in this library (Dart, tcptrace, the strawman) emits
:class:`RttSample` objects.  A *sample sink* is anything with an
``add(sample)`` method; :class:`SampleCollector` is the standard sink that
retains samples for offline analysis, and the analytics module
(:mod:`repro.core.analytics`) provides streaming sinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from ..net.packet import NS_PER_MS
from .flow import FlowKey


@dataclass(frozen=True, slots=True)
class RttSample:
    """One matched SEQ/ACK round-trip time measurement.

    ``rtt_ns`` is the ACK arrival time minus the SEQ arrival time at the
    vantage point; ``timestamp_ns`` is the ACK arrival (i.e. when the
    sample became known); ``eack`` identifies which byte the sample is
    anchored to within the flow.
    """

    flow: FlowKey
    rtt_ns: int
    timestamp_ns: int
    eack: int
    handshake: bool = False
    leg: Optional[str] = None

    @property
    def rtt_ms(self) -> float:
        """RTT in milliseconds (for reports; internals stay integral)."""
        return self.rtt_ns / NS_PER_MS


class SampleCollector:
    """A sink that stores every sample in arrival order."""

    def __init__(self) -> None:
        self.samples: List[RttSample] = []

    def add(self, sample: RttSample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[RttSample]:
        return iter(self.samples)

    def rtts_ns(self) -> List[int]:
        """All RTT values in nanoseconds, in arrival order."""
        return [s.rtt_ns for s in self.samples]

    def rtts_ms(self) -> List[float]:
        """All RTT values in milliseconds, in arrival order."""
        return [s.rtt_ns / NS_PER_MS for s in self.samples]

    def for_flow(self, flow: FlowKey) -> List[RttSample]:
        """Samples belonging to one SEQ-direction flow."""
        return [s for s in self.samples if s.flow == flow]

    def clear(self) -> None:
        self.samples.clear()

    def drain(self) -> List[RttSample]:
        """Hand over the retained samples and start an empty list.

        The streaming rotation primitive: callers that already routed
        the live sample stream elsewhere use this to empty the retained
        copy without losing the list object they handed out.
        """
        drained = self.samples
        self.samples = []
        return drained


class TeeSink:
    """Fans one sample stream out to several sinks."""

    def __init__(self, sinks: Iterable) -> None:
        self._sinks = list(sinks)

    def add(self, sample: RttSample) -> None:
        for sink in self._sinks:
            sink.add(sample)


class NullSink:
    """Discards samples (useful when only counters matter)."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, sample: RttSample) -> None:
        self.count += 1


class CountingSink:
    """Counts samples and tracks the most recent one."""

    def __init__(self) -> None:
        self.count = 0
        self.last: Optional[RttSample] = None

    def add(self, sample: RttSample) -> None:
        self.count += 1
        self.last = sample
