"""The Range Tracker (RT) table — paper §3.1.

The RT stores, per tracked flow, a single *measurement range*
``[left, right]`` of sequence numbers that can still produce unambiguous
RTT samples:

* ``left`` — the latest byte ACKed by the receiver, or the highest byte
  affected by a retransmission/reordering ambiguity (whichever is later);
* ``right`` — the latest byte transmitted by the sender.

Data packets are only handed to the Packet Tracker when they extend the
range in sequence; retransmissions and duplicate ACKs *collapse* the
range (``left = right``), declaring everything in flight ambiguous.
When the sender skips ahead (a hole in sequence space), only the highest
contiguous byte-range ahead of the hole is kept (constant space,
paper Fig 4d).

Two backends implement the same semantics:

* :class:`AssociativeRangeTable` — unlimited, fully associative (dict),
  used by the §6.1 "Dart without memory constraints" experiments;
* :class:`HashedRangeTable` — a fixed-size one-way-associative register
  array indexed by a hash of the flow key, storing only the 4-byte flow
  signature (paper §4), so distinct flows can collide.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .flow import FlowKey
from .seqspace import seq_between, seq_gt, seq_le, seq_lt, seq_sub


class SeqVerdict(enum.Enum):
    """Outcome of processing a data (SEQ) packet against the RT."""

    TRACK = "track"                    # in-order new data: track in PT
    TRACK_AFTER_HOLE = "track-hole"    # new data ahead of a hole: track
    NEW_FLOW = "new-flow"              # first packet of a flow: track
    RETRANSMISSION = "retransmission"  # eACK inside range: collapse, skip
    OVERLAP = "overlap"                # partial retransmission: collapse, skip
    WRAPAROUND = "wraparound"          # 2**32 wrap: reset left edge, skip
    TABLE_FULL = "table-full"          # no RT slot available: skip
    IGNORED_SYN = "ignored-syn"        # SYN/SYN-ACK in -SYN mode: skip

    @property
    def trackable(self) -> bool:
        """True when the packet should be inserted into the PT."""
        return self in (
            SeqVerdict.TRACK,
            SeqVerdict.TRACK_AFTER_HOLE,
            SeqVerdict.NEW_FLOW,
        )


class AckVerdict(enum.Enum):
    """Outcome of processing an ACK packet against the RT."""

    VALID = "valid"          # left < ack <= right: may match a PT entry
    DUPLICATE = "duplicate"  # ack == left: reordering inferred, collapse
    OLD = "old"              # ack < left: already-ambiguous bytes, ignore
    OPTIMISTIC = "optimistic"  # ack > right: early ACK, ignore
    NO_FLOW = "no-flow"      # flow not tracked


@dataclass(slots=True)
class RangeEntry:
    """One flow's measurement range."""

    signature: int
    left: int
    right: int
    collapses: int = 0
    touched_ns: int = 0

    @property
    def collapsed(self) -> bool:
        """True when the range is empty (nothing trackable in flight)."""
        return self.left == self.right


@dataclass(slots=True)
class RangeTrackerStats:
    """Counters exposed for the evaluation and for congestion telemetry
    (paper §3.1 suggests collapse frequency as a congestion signal)."""

    data_packets: int = 0
    acks: int = 0
    new_flows: int = 0
    retransmission_collapses: int = 0
    duplicate_ack_collapses: int = 0
    overlap_collapses: int = 0
    holes: int = 0
    wraparounds: int = 0
    table_full: int = 0
    flow_overwrites: int = 0
    old_acks_ignored: int = 0
    optimistic_acks_ignored: int = 0
    timeout_expiries: int = 0

    @property
    def total_collapses(self) -> int:
        return (
            self.retransmission_collapses
            + self.duplicate_ack_collapses
            + self.overlap_collapses
        )


class AssociativeRangeTable:
    """Unlimited fully-associative RT backend (dict keyed by flow)."""

    def __init__(self) -> None:
        self._entries: Dict[FlowKey, RangeEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, flow: FlowKey) -> Optional[RangeEntry]:
        return self._entries.get(flow)

    def insert(self, flow: FlowKey, entry: RangeEntry) -> Tuple[bool, bool]:
        """Store ``entry``; returns ``(inserted, overwrote_other_flow)``.

        The associative backend never runs out of room.
        """
        self._entries[flow] = entry
        return True, False

    def delete(self, flow: FlowKey) -> None:
        self._entries.pop(flow, None)

    def purge_expired(self, flow: FlowKey, now_ns: int,
                      timeout_ns: int) -> bool:
        """Drop the flow's entry if it has expired (dict backend: only
        the exact flow can occupy 'its slot')."""
        entry = self._entries.get(flow)
        if entry is not None and now_ns - entry.touched_ns > timeout_ns:
            del self._entries[flow]
            return True
        return False

    def occupancy(self) -> int:
        return len(self._entries)


class HashedRangeTable:
    """Fixed-size one-way-associative RT backend (hash-indexed array).

    A slot stores only the 4-byte flow signature; a lookup whose slot
    holds a different signature is a miss, and an insert into an occupied
    slot succeeds only when the occupant's range has collapsed (paper
    §3.1: collapsed entries "can be safely deleted or overwritten") and
    the policy allows it.
    """

    def __init__(self, slots: int, *, overwrite_collapsed: bool = True) -> None:
        if slots <= 0:
            raise ValueError("RT must have at least one slot")
        self._slots: list = [None] * slots
        self._size = slots
        self._overwrite_collapsed = overwrite_collapsed
        # Maintained at every None<->entry transition so occupancy() is
        # O(1) — telemetry samples it per emission, and a slot scan over
        # 2^18 entries would dominate the emission cost.
        self._occupied = 0

    def __len__(self) -> int:
        return self._size

    def _index(self, flow: FlowKey) -> int:
        # stage 0 with the flow's cached stage-0 mix: identical to
        # stage_index(flow.key_bytes(), 0, size) without re-walking the
        # key bytes — or re-running the avalanche mix — on any lookup.
        return flow.mix0 % self._size

    def lookup(self, flow: FlowKey) -> Optional[RangeEntry]:
        entry = self._slots[self._index(flow)]
        if entry is not None and entry.signature == flow.signature:
            return entry
        return None

    def insert(self, flow: FlowKey, entry: RangeEntry) -> Tuple[bool, bool]:
        """Try to store ``entry``; returns ``(inserted, overwrote)``."""
        index = self._index(flow)
        occupant = self._slots[index]
        if occupant is None or occupant.signature == entry.signature:
            if occupant is None:
                self._occupied += 1
            self._slots[index] = entry
            return True, False
        if self._overwrite_collapsed and occupant.collapsed:
            self._slots[index] = entry
            return True, True
        return False, False

    def delete(self, flow: FlowKey) -> None:
        index = self._index(flow)
        occupant = self._slots[index]
        if occupant is not None and occupant.signature == flow.signature:
            self._slots[index] = None
            self._occupied -= 1

    def purge_expired(self, flow: FlowKey, now_ns: int,
                      timeout_ns: int) -> bool:
        """Drop whatever occupies the flow's slot if it has expired.

        Unlike :meth:`delete`, this ignores the signature: an expired
        entry of *any* flow frees the slot for the newcomer (the whole
        point of the §7 timeout mitigation).
        """
        index = self._index(flow)
        occupant = self._slots[index]
        if occupant is not None and now_ns - occupant.touched_ns > timeout_ns:
            self._slots[index] = None
            self._occupied -= 1
            return True
        return False

    def occupancy(self) -> int:
        return self._occupied


class RangeTracker:
    """The Range Tracker: decides which packets are worth tracking.

    All sequence arithmetic is modulo 2**32.  ``handle_wraparound``
    selects the paper's §4 behaviour (reset the left edge to zero when a
    segment crosses the wrap point, forgoing top-of-space samples).
    """

    def __init__(
        self,
        slots: Optional[int] = None,
        *,
        overwrite_collapsed: bool = True,
        handle_wraparound: bool = True,
        timeout_ns: Optional[int] = None,
    ) -> None:
        if slots is None:
            self._table = AssociativeRangeTable()
        else:
            self._table = HashedRangeTable(
                slots, overwrite_collapsed=overwrite_collapsed
            )
        self._handle_wraparound = handle_wraparound
        # §7 mitigation: a very large timeout reclaims RT entries pinned
        # by attacks that leave data unacknowledged forever.  None (the
        # paper's deployed configuration) disables it.
        self._timeout_ns = timeout_ns
        self.stats = RangeTrackerStats()

    def _live_entry(self, flow: FlowKey, now_ns: int) -> Optional[RangeEntry]:
        """Lookup with timeout semantics: expired entries vanish.

        The purge also fires when the expired occupant belongs to a
        *different* flow sharing the slot, so a dead entry cannot pin a
        slot against newcomers forever (paper §7).
        """
        if self._timeout_ns is not None:
            if self._table.purge_expired(flow, now_ns, self._timeout_ns):
                self.stats.timeout_expiries += 1
        return self._table.lookup(flow)

    # -- SEQ path ---------------------------------------------------------

    def on_data(self, flow: FlowKey, seq: int, eack: int,
                now_ns: int = 0) -> SeqVerdict:
        """Process a data packet; returns whether to track it in the PT.

        ``eack`` is the expected ACK (``seq`` plus consumed sequence
        space); callers guarantee ``eack != seq``.  ``now_ns`` only
        matters when an RT timeout is configured.
        """
        self.stats.data_packets += 1
        entry = self._live_entry(flow, now_ns)

        if entry is None:
            entry = RangeEntry(signature=flow.signature, left=seq,
                               right=eack, touched_ns=now_ns)
            inserted, overwrote = self._table.insert(flow, entry)
            if not inserted:
                self.stats.table_full += 1
                return SeqVerdict.TABLE_FULL
            self.stats.new_flows += 1
            if overwrote:
                self.stats.flow_overwrites += 1
            return SeqVerdict.NEW_FLOW

        entry.touched_ns = now_ns

        if self._handle_wraparound and seq_sub(eack, seq) != eack - seq:
            # The segment crosses the 2**32 boundary (its end wrapped).
            entry.left = 0
            entry.right = eack
            self.stats.wraparounds += 1
            return SeqVerdict.WRAPAROUND

        if seq_le(eack, entry.right):
            # Every byte was transmitted before: a retransmission. Any
            # future ACK for in-flight bytes is ambiguous -> collapse.
            entry.left = entry.right
            entry.collapses += 1
            self.stats.retransmission_collapses += 1
            return SeqVerdict.RETRANSMISSION

        if seq == entry.right:
            # In-order new data: extend the right edge.
            entry.right = eack
            return SeqVerdict.TRACK

        if seq_gt(seq, entry.right):
            # The sender skipped ahead (we missed one or more packets).
            # Keep only the highest contiguous range (paper Fig 4d).
            entry.left = seq
            entry.right = eack
            self.stats.holes += 1
            return SeqVerdict.TRACK_AFTER_HOLE

        # seq < right < eack: the segment partially overlaps bytes already
        # in flight (e.g. a coalesced retransmission).  Everything through
        # eack is ambiguous -> collapse at the new right edge.
        entry.left = eack
        entry.right = eack
        entry.collapses += 1
        self.stats.overlap_collapses += 1
        return SeqVerdict.OVERLAP

    # -- ACK path ---------------------------------------------------------

    def on_ack(self, flow: FlowKey, ack: int, now_ns: int = 0) -> AckVerdict:
        """Process an ACK for the given SEQ-direction flow.

        On a VALID verdict the caller should look up ``(flow, ack)`` in
        the PT *before* this method has advanced the left edge — hence the
        two-phase API: :meth:`on_ack` classifies and updates state, and
        the sample lookup uses the returned verdict.  (The left-edge
        advance does not affect the PT lookup for this same ack number,
        so a single call is safe.)
        """
        self.stats.acks += 1
        entry = self._live_entry(flow, now_ns)
        if entry is None:
            return AckVerdict.NO_FLOW
        entry.touched_ns = now_ns

        if ack == entry.left:
            # Duplicate ACK: explicit marker of loss or reordering.  ACKs
            # have been held up at the receiver, inflating future RTTs ->
            # collapse the whole range.  (A duplicate ACK against an
            # already-collapsed range is a no-op and not counted.)
            if not entry.collapsed:
                entry.left = entry.right
                entry.collapses += 1
                self.stats.duplicate_ack_collapses += 1
            return AckVerdict.DUPLICATE

        if seq_between(entry.left, ack, entry.right):
            entry.left = ack
            return AckVerdict.VALID

        if seq_lt(ack, entry.left):
            self.stats.old_acks_ignored += 1
            return AckVerdict.OLD

        self.stats.optimistic_acks_ignored += 1
        return AckVerdict.OPTIMISTIC

    # -- Recirculation support ---------------------------------------------

    def revalidate(self, flow: FlowKey, eack: int, now_ns: int = 0) -> bool:
        """Second-chance check for an evicted PT record (paper §3.2).

        A record is still worth keeping only if its flow is still tracked
        and its expected ACK lies inside the current measurement range.
        """
        entry = self._live_entry(flow, now_ns)
        if entry is None:
            return False
        return seq_between(entry.left, eack, entry.right)

    # -- Introspection ------------------------------------------------------

    def lookup(self, flow: FlowKey) -> Optional[RangeEntry]:
        """Current measurement range for a flow (None if untracked)."""
        return self._table.lookup(flow)

    def delete(self, flow: FlowKey) -> None:
        """Remove a flow's entry (used by operators and tests)."""
        self._table.delete(flow)

    def occupancy(self) -> int:
        """Number of occupied RT slots."""
        return self._table.occupancy()
