"""Deterministic hash functions modelling the Tofino's hash units.

Dart compresses the 12-byte IPv4 flow 4-tuple into a fixed 4-byte
*signature* (paper §4, "constrained signature wordsize") and indexes its
register tables with independent hash functions — one per table stage.
We model both with salted CRC32 (the Tofino's hash units are CRC-based),
which is deterministic across runs and processes, unlike Python's builtin
``hash``.
"""

from __future__ import annotations

import struct
import zlib

_STAGE_SALTS = (
    0x00000000,
    0x9E3779B9,
    0x85EBCA6B,
    0xC2B2AE35,
    0x27D4EB2F,
    0x165667B1,
    0xD3A2646C,
    0xFD7046C5,
    0xB55A4F09,
    0x2E1B2138,
    0x4CF5AD43,
    0x62A9C1D8,
    0x68E31DA4,
    0xC4CEB9FE,
    0x1B873593,
    0xE6546B64,
)

MAX_STAGES = len(_STAGE_SALTS)


def crc32_hash(data: bytes, salt: int = 0) -> int:
    """Salted CRC32 of ``data``, as an unsigned 32-bit integer."""
    return zlib.crc32(data, salt & 0xFFFFFFFF) & 0xFFFFFFFF


def signature32(data: bytes) -> int:
    """The 4-byte flow signature stored in RT/PT records (paper §4).

    Distinct flows can collide (the paper accepts this, noting collisions
    are rare); tests exercise both the collision-free common case and
    deliberately colliding keys.
    """
    return crc32_hash(data, 0x5A17ECAF)


def _mix32(x: int) -> int:
    """murmur3's 32-bit finalizer: a full-avalanche integer mix."""
    x &= 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & 0xFFFFFFFF
    x ^= x >> 13
    x = (x * 0xC2B2AE35) & 0xFFFFFFFF
    x ^= x >> 16
    return x


def stage_index(key: bytes, stage: int, table_size: int) -> int:
    """Index of ``key`` in the given table stage.

    The Tofino's hash units use *different CRC polynomials*, giving
    genuinely independent functions per stage.  A salted CRC32 is NOT an
    adequate model: CRC is linear, so two keys that collide under one
    salt collide under every salt.  We emulate polynomial diversity by
    xoring a per-stage salt into the CRC and running a full-avalanche
    finalizer, which decorrelates the stages.

    ``table_size`` need not be a power of two, but Dart's configurations
    always use one (register arrays are indexed by hash-bit slices).
    """
    if not 0 <= stage < MAX_STAGES:
        raise ValueError(f"stage {stage} out of range (max {MAX_STAGES})")
    if table_size <= 0:
        raise ValueError("table size must be positive")
    return _mix32(zlib.crc32(key) ^ _STAGE_SALTS[stage]) % table_size


def stage_index_from_crc(key_crc: int, stage: int, table_size: int) -> int:
    """:func:`stage_index` with the unsalted ``crc32(key)`` precomputed.

    The hot per-packet paths look up the same flow key many times; the
    CRC is the expensive part (it walks the key bytes), so the tables
    compute it once — or read it off the flow's cached ``key_crc`` —
    and only the per-stage mix runs per probe.  Always agrees with
    ``stage_index(key, stage, table_size)`` for ``key_crc ==
    zlib.crc32(key)``; stage/size validation is the caller's burden.
    """
    return _mix32(key_crc ^ _STAGE_SALTS[stage]) % table_size


def pack_u32(*values: int) -> bytes:
    """Pack 32-bit values into a hash-input byte string."""
    return struct.pack(f"!{len(values)}I", *(v & 0xFFFFFFFF for v in values))


#: Prebound packer for the PT's two-word ``(signature, eack)`` key — the
#: single hottest ``pack_u32`` call site, worth skipping the format-string
#: dispatch for.
pack2_u32 = struct.Struct("!2I").pack
