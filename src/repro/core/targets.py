"""Operator flow selection — paper §4, "Specifying target flows".

Dart lets the operator install rules from the control plane selecting
which subset of flows to track, without recompiling: source/destination
IP prefixes and port numbers or port ranges.  :class:`TargetFlowTable`
models that rule table; its :meth:`matches` is used as the Dart
pipeline's ``target_filter``.

Rules match a packet in *either* direction of a connection (a rule
written for client->server must also admit the server->client ACKs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.inet import prefix_of
from ..net.packet import PacketRecord


@dataclass(frozen=True)
class TargetRule:
    """One control-plane rule.

    Any field left at None is a wildcard.  Prefixes are
    ``(network_int, prefix_len)`` tuples; port ranges are inclusive
    ``(low, high)`` tuples.
    """

    src_prefix: Optional[Tuple[int, int]] = None
    dst_prefix: Optional[Tuple[int, int]] = None
    src_ports: Optional[Tuple[int, int]] = None
    dst_ports: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        for name in ("src_ports", "dst_ports"):
            ports = getattr(self, name)
            if ports is not None:
                low, high = ports
                if not (0 <= low <= high <= 0xFFFF):
                    raise ValueError(f"bad port range in {name}: {ports}")
        for name in ("src_prefix", "dst_prefix"):
            prefix = getattr(self, name)
            if prefix is not None:
                _, length = prefix
                if not 0 <= length <= 32:
                    raise ValueError(f"bad prefix length in {name}: {length}")

    def _matches_oriented(
        self, src_ip: int, dst_ip: int, src_port: int, dst_port: int
    ) -> bool:
        if self.src_prefix is not None:
            network, length = self.src_prefix
            if prefix_of(src_ip, length) != prefix_of(network, length):
                return False
        if self.dst_prefix is not None:
            network, length = self.dst_prefix
            if prefix_of(dst_ip, length) != prefix_of(network, length):
                return False
        if self.src_ports is not None:
            low, high = self.src_ports
            if not low <= src_port <= high:
                return False
        if self.dst_ports is not None:
            low, high = self.dst_ports
            if not low <= dst_port <= high:
                return False
        return True

    def matches(self, record: PacketRecord) -> bool:
        """True when the packet (in either direction) matches the rule."""
        return self._matches_oriented(
            record.src_ip, record.dst_ip, record.src_port, record.dst_port
        ) or self._matches_oriented(
            record.dst_ip, record.src_ip, record.dst_port, record.src_port
        )


class TargetFlowTable:
    """The installable rule set.  An empty table matches everything
    (monitor-all is the deployment default)."""

    def __init__(self, rules: Optional[List[TargetRule]] = None) -> None:
        self._rules: List[TargetRule] = list(rules or [])

    def add(self, rule: TargetRule) -> None:
        """Install a rule (control-plane operation; no redeploy needed)."""
        self._rules.append(rule)

    def remove(self, rule: TargetRule) -> bool:
        """Uninstall a rule; returns False when it was not installed."""
        try:
            self._rules.remove(rule)
        except ValueError:
            return False
        return True

    def __len__(self) -> int:
        return len(self._rules)

    def matches(self, record: PacketRecord) -> bool:
        if not self._rules:
            return True
        return any(rule.matches(record) for rule in self._rules)
