"""Data-plane-feasible RTT distribution analytics (paper §3.3).

The paper's analytics module is the operator customization point, but
min-filtering alone cannot answer the p50/p95/p99 questions §6 reports —
those are computed offline from retained samples, which is exactly what
a data plane cannot do.  P4TG's histogram-based RTT monitoring shows
fixed-bin histograms *are* switch-feasible: one register array per key,
one bounds-compare + increment per sample.  This module provides that
stage, plus a per-key promotion of the DDSketch-style
:class:`~repro.analysis.sketch.QuantileSketch`, with ``merge()``
semantics matching :class:`~repro.core.pipeline.DartStats`:

* **addition** across cluster shards — flow-consistent sharding puts
  each key's state on exactly one shard, so the shard-merged histogram
  equals a serial run's bin for bin;
* **replacement under (epoch, seq)** across fleet agents — agents ship
  cumulative snapshots, the collector keeps the latest per agent and
  sums across agents.

Nothing here retains samples: per-sample work is O(1) (a bisect into
the bin edges, a sketch bucket increment) and state is O(keys x bins),
which is what :func:`repro.hw.estimate_histogram` costs against the
Tofino model.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..analysis.sketch import QuantileSketch
from ..net.inet import int_to_ipv4
from .analytics import DstPrefixKey, flow_key
from .samples import RttSample

#: Default edge range: 100 microseconds to 10 seconds covers LAN RTTs
#: through badly congested WAN paths; log spacing matches how RTTs
#: spread (and what a TCAM range table would encode).
DEFAULT_MIN_EDGE_NS = 100_000
DEFAULT_MAX_EDGE_NS = 10_000_000_000
DEFAULT_BINS = 32
DEFAULT_QUANTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class HistogramSpec:
    """The bin-edge scheme: finite upper bounds, an implicit +Inf bin.

    ``edges_ns[i]`` is bin ``i``'s inclusive upper bound (Prometheus
    ``le`` semantics); values above the last edge land in the overflow
    bin, so a histogram always has ``len(edges_ns) + 1`` bins.  Frozen
    and hashable: two histograms merge only if their specs are equal,
    the same rule :meth:`QuantileSketch.merge` applies to ``alpha``.
    """

    edges_ns: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.edges_ns:
            raise ValueError("need at least one bin edge")
        if any(e <= 0 for e in self.edges_ns):
            raise ValueError("bin edges must be positive")
        if any(b <= a for a, b in zip(self.edges_ns, self.edges_ns[1:])):
            raise ValueError("bin edges must be strictly increasing")

    @property
    def bins(self) -> int:
        """Total bin count including the +Inf overflow bin."""
        return len(self.edges_ns) + 1

    @classmethod
    def log_bins(
        cls,
        bins: int = DEFAULT_BINS,
        *,
        min_ns: int = DEFAULT_MIN_EDGE_NS,
        max_ns: int = DEFAULT_MAX_EDGE_NS,
    ) -> "HistogramSpec":
        """``bins`` log-spaced finite edges from ``min_ns`` to ``max_ns``."""
        if bins < 1:
            raise ValueError("bins must be positive")
        if not 0 < min_ns < max_ns:
            raise ValueError("need 0 < min_ns < max_ns")
        if bins == 1:
            return cls(edges_ns=(int(max_ns),))
        ratio = (max_ns / min_ns) ** (1 / (bins - 1))
        edges = []
        for i in range(bins):
            edge = int(round(min_ns * ratio ** i))
            if edges and edge <= edges[-1]:
                edge = edges[-1] + 1
            edges.append(edge)
        return cls(edges_ns=tuple(edges))

    @classmethod
    def from_edges_ms(cls, text: str) -> "HistogramSpec":
        """Parse explicit edges from CLI text: ``"1,2,5,10"`` (ms)."""
        try:
            values = [float(part) for part in text.split(",") if part.strip()]
        except ValueError:
            raise ValueError(f"bad --hist-edges value: {text!r}") from None
        if not values:
            raise ValueError("--hist-edges needs at least one edge")
        return cls(edges_ns=tuple(int(round(v * 1e6)) for v in values))


class RttHistogram:
    """One fixed-bin histogram: the per-key register array.

    ``add`` is a bisect into the edges plus three stores — no per-sample
    allocation, no retention.  ``merge`` is element-wise addition over
    an identical spec, so it is associative and commutative with
    :meth:`RttHistogram.__eq__` as the bin-for-bin equality the cluster
    equivalence suite pins.
    """

    __slots__ = ("spec", "counts", "sum_ns", "count", "min_ns", "max_ns")

    def __init__(self, spec: HistogramSpec) -> None:
        self.spec = spec
        self.counts: List[int] = [0] * spec.bins
        self.sum_ns = 0
        self.count = 0
        self.min_ns: Optional[int] = None
        self.max_ns: Optional[int] = None

    def add(self, rtt_ns: int) -> None:
        if rtt_ns < 0:
            raise ValueError("RTT histograms accept non-negative values only")
        self.counts[bisect_left(self.spec.edges_ns, rtt_ns)] += 1
        self.sum_ns += rtt_ns
        self.count += 1
        if self.min_ns is None or rtt_ns < self.min_ns:
            self.min_ns = rtt_ns
        if self.max_ns is None or rtt_ns > self.max_ns:
            self.max_ns = rtt_ns

    def merge(self, other: "RttHistogram") -> None:
        if other.spec != self.spec:
            raise ValueError("cannot merge histograms with different edges")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum_ns += other.sum_ns
        self.count += other.count
        for bound in (other.min_ns, other.max_ns):
            if bound is None:
                continue
            if self.min_ns is None or bound < self.min_ns:
                self.min_ns = bound
            if self.max_ns is None or bound > self.max_ns:
                self.max_ns = bound

    def quantile(self, p: float) -> float:
        """The p-th (0..100) quantile estimate, exact to within its bin.

        Returns the midpoint of the bin holding the quantile's rank,
        clamped to the observed min/max — so the error is bounded by
        the bin's width, which is the accuracy contract the accuracy
        harness asserts.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"quantile out of range: {p}")
        if self.count == 0:
            raise ValueError("quantile of an empty histogram")
        rank = p / 100 * (self.count - 1)
        seen = 0
        edges = self.spec.edges_ns
        for i, c in enumerate(self.counts):
            seen += c
            if seen > rank:
                if i >= len(edges):
                    # Overflow bin: the max is the only bound we have.
                    estimate = float(self.max_ns or edges[-1])
                else:
                    lower = edges[i - 1] if i > 0 else 0
                    estimate = (lower + edges[i]) / 2
                low = float(self.min_ns or 0)
                high = float(self.max_ns or estimate)
                return min(max(estimate, low), high)
        return float(self.max_ns or 0)

    def mean_ns(self) -> float:
        return self.sum_ns / self.count if self.count else 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RttHistogram):
            return NotImplemented
        return (
            self.spec == other.spec
            and self.counts == other.counts
            and self.sum_ns == other.sum_ns
            and self.count == other.count
            and self.min_ns == other.min_ns
            and self.max_ns == other.max_ns
        )

    __hash__ = None  # type: ignore[assignment]

    # -- wire/state (JSON-safe; the fleet codec wraps these) ---------------

    def state_dict(self) -> Dict:
        return {
            "edges_ns": list(self.spec.edges_ns),
            "counts": list(self.counts),
            "sum_ns": self.sum_ns,
            "count": self.count,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "RttHistogram":
        hist = cls(HistogramSpec(edges_ns=tuple(state["edges_ns"])))
        counts = [int(c) for c in state["counts"]]
        if len(counts) != hist.spec.bins:
            raise ValueError("histogram state has the wrong bin count")
        hist.counts = counts
        hist.sum_ns = int(state["sum_ns"])
        hist.count = int(state["count"])
        hist.min_ns = state["min_ns"]
        hist.max_ns = state["max_ns"]
        return hist


def _require_same_key_fn(mine, theirs) -> None:
    if mine != theirs:
        raise ValueError(
            "cannot merge distribution stages keyed differently "
            f"({mine!r} vs {theirs!r})"
        )


class RttHistogramAnalytics:
    """Per-key fixed-bin histograms plus an all-traffic aggregate.

    Satisfies the analytics protocol (``add`` / ``flush`` /
    ``worth_recirculating``) so it can ride a Dart pipeline, an engine
    sample router sink, or a shard worker.  ``key_fn`` must be
    picklable (module function or frozen dataclass) — the state crosses
    the cluster's process boundary and the streaming checkpoint.
    """

    def __init__(
        self,
        spec: Optional[HistogramSpec] = None,
        *,
        key_fn: Optional[Callable[[RttSample], Hashable]] = None,
    ) -> None:
        self.spec = spec if spec is not None else HistogramSpec.log_bins()
        self.key_fn = key_fn if key_fn is not None else flow_key
        self.total = RttHistogram(self.spec)
        self.per_key: Dict[Hashable, RttHistogram] = {}

    def add(self, sample: RttSample) -> None:
        self.total.add(sample.rtt_ns)
        key = self.key_fn(sample)
        hist = self.per_key.get(key)
        if hist is None:
            hist = RttHistogram(self.spec)
            self.per_key[key] = hist
        hist.add(sample.rtt_ns)

    def flush(self, now_ns: int) -> None:
        """Histograms are cumulative; there is nothing to close."""

    def worth_recirculating(self, flow, timestamp_ns: int,
                            now_ns: int) -> bool:
        return True  # every sample shapes the distribution

    def merge(self, other: "RttHistogramAnalytics") -> None:
        if other.spec != self.spec:
            raise ValueError("cannot merge histograms with different edges")
        _require_same_key_fn(self.key_fn, other.key_fn)
        self.total.merge(other.total)
        for key, hist in other.per_key.items():
            mine = self.per_key.get(key)
            if mine is None:
                mine = RttHistogram(self.spec)
                self.per_key[key] = mine
            mine.merge(hist)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RttHistogramAnalytics):
            return NotImplemented
        return (
            self.spec == other.spec
            and self.total == other.total
            and self.per_key == other.per_key
        )

    __hash__ = None  # type: ignore[assignment]


class RttSketchAnalytics:
    """Per-key quantile sketches plus an all-traffic aggregate.

    The promotion of :class:`~repro.analysis.sketch.QuantileSketch` to
    a first-class analytics stage: cumulative (not windowed, unlike
    :class:`~repro.analysis.sketch.QuantileSketchAnalytics`), keyed by
    a picklable ``key_fn``, and mergeable with the same addition /
    replacement algebra as the histogram stage.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.01,
        max_buckets: Optional[int] = 4096,
        key_fn: Optional[Callable[[RttSample], Hashable]] = None,
    ) -> None:
        self.alpha = alpha
        self.max_buckets = max_buckets
        self.key_fn = key_fn if key_fn is not None else flow_key
        self.total = QuantileSketch(alpha=alpha, max_buckets=max_buckets)
        self.per_key: Dict[Hashable, QuantileSketch] = {}

    def add(self, sample: RttSample) -> None:
        self.total.add(sample.rtt_ns)
        key = self.key_fn(sample)
        sketch = self.per_key.get(key)
        if sketch is None:
            sketch = QuantileSketch(alpha=self.alpha,
                                    max_buckets=self.max_buckets)
            self.per_key[key] = sketch
        sketch.add(sample.rtt_ns)

    def flush(self, now_ns: int) -> None:
        """Sketches are cumulative; there is nothing to close."""

    def worth_recirculating(self, flow, timestamp_ns: int,
                            now_ns: int) -> bool:
        return True

    def merge(self, other: "RttSketchAnalytics") -> None:
        _require_same_key_fn(self.key_fn, other.key_fn)
        self.total.merge(other.total)
        for key, sketch in other.per_key.items():
            mine = self.per_key.get(key)
            if mine is None:
                mine = QuantileSketch(alpha=self.alpha,
                                      max_buckets=self.max_buckets)
                self.per_key[key] = mine
            mine.merge(sketch)

    def quantile(self, p: float) -> float:
        return self.total.quantile(p)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RttSketchAnalytics):
            return NotImplemented
        return (
            self.alpha == other.alpha
            and self.total == other.total
            and self.per_key == other.per_key
        )

    __hash__ = None  # type: ignore[assignment]


class _KeyedBuffer:
    """Per-key accumulation register: the data-plane half of the stage.

    One compact object per key holding histogram counts and sketch
    bucket *deltas* since the last flush — the Python analogue of the
    switch's per-key register array, which the control plane reads and
    folds at harvest.  Keeping the hot path to one object (instead of
    an ``RttHistogram`` + ``QuantileSketch`` pair) roughly halves the
    memory touched per sample, which is what the perf baseline's
    hist-overhead gate bounds.
    """

    __slots__ = ("counts", "sum_ns", "count", "min_ns", "max_ns",
                 "buckets")

    def __init__(self, bins: int) -> None:
        self.counts: List[int] = [0] * bins
        self.sum_ns = 0
        self.count = 0
        self.min_ns: Optional[int] = None
        self.max_ns: Optional[int] = None
        self.buckets: Dict[int, int] = {}


class DistributionAnalytics:
    """Histogram + sketch stages behind one analytics front.

    The object the CLIs build, checkpoints pickle, shard harvests ship,
    and the fleet wire encodes.  ``inner`` composes an existing
    analytics module (``CollectAllAnalytics`` to keep retained samples,
    ``MinFilterAnalytics`` to keep windowed minima): ``add`` fans out
    to the stages and the inner module, and unknown attributes
    (``samples``, ``history``, ``drain_windows`` ...) delegate to it,
    so the distribution stage is a strict add-on — everything that
    worked before keeps working.

    Internally ``add`` only touches a per-key :class:`_KeyedBuffer`;
    the ``histogram``/``sketch`` stages (totals and per-key) are
    brought up to date by an exact additive flush on every read,
    merge, snapshot, or pickle.  Flushing is pure integer addition
    with the same bin/bucket index math as the stage-wise ``add``
    paths, so the resulting state is identical to eager fan-out —
    the equivalence the property suite pins.
    """

    def __init__(
        self,
        spec: Optional[HistogramSpec] = None,
        *,
        alpha: float = 0.01,
        max_buckets: Optional[int] = 4096,
        quantiles: Tuple[float, ...] = DEFAULT_QUANTILES,
        key_fn: Optional[Callable[[RttSample], Hashable]] = None,
        inner: Optional[object] = None,
    ) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        for q in quantiles:
            if not 0 <= q <= 100:
                raise ValueError(f"quantile out of range: {q}")
        self.histogram = RttHistogramAnalytics(spec, key_fn=key_fn)
        self.sketch = RttSketchAnalytics(
            alpha=alpha, max_buckets=max_buckets, key_fn=key_fn
        )
        self.quantiles = tuple(float(q) for q in quantiles)
        self._inner = inner
        self._rebind_caches()

    def _rebind_caches(self) -> None:
        """Hot-path shortcuts, rebuilt after ``__init__``/unpickle/
        snapshot: the bin edges, an empty buffer map, and the prefix
        shift when the key function is a :class:`DstPrefixKey` (its
        mask is two shifts we can do inline instead of two function
        calls per sample)."""
        self._edges = self.histogram.spec.edges_ns
        self._log_gamma = self.sketch.total._log_gamma
        self._keyed: Dict[Hashable, _KeyedBuffer] = {}
        # One-entry memo: ACK bursts make consecutive samples share a
        # key ~85% of the time on the campus trace, and the repeated
        # dict probe into a few hundred cold buffers is the single
        # largest cost of the buffered hot path.
        self._last_key: Optional[Hashable] = None
        self._last_buf: Optional[_KeyedBuffer] = None
        key_fn = self.histogram.key_fn
        self._prefix_shift: Optional[int] = None
        if (isinstance(key_fn, DstPrefixKey)
                and 0 <= key_fn.prefix_len <= 32):
            self._prefix_shift = 32 - key_fn.prefix_len

    # -- the analytics protocol --------------------------------------------

    def add(self, sample: RttSample) -> None:
        # The per-sample hot path — what the perf baseline's
        # serial_hist leg gates at <=5% over a plain engine pass.  Only
        # the key's buffer is touched: one dict probe, one bisect, one
        # log, a handful of integer adds.  Totals and the per-key
        # stage objects are derived by _flush() at read time, the way
        # a switch's control plane folds register reads at harvest.
        rtt = sample.rtt_ns
        if rtt <= 0:
            self._add_slow(sample)
            return
        shift = self._prefix_shift
        if shift is not None:
            key = (sample.flow.dst_ip >> shift) << shift
        else:
            key = self.histogram.key_fn(sample)
        if key == self._last_key and self._last_buf is not None:
            buf = self._last_buf
        else:
            buf = self._keyed.get(key)
            if buf is None:
                buf = _KeyedBuffer(self.histogram.spec.bins)
                self._keyed[key] = buf
            self._last_key = key
            self._last_buf = buf
        buf.counts[bisect_left(self._edges, rtt)] += 1
        buf.sum_ns += rtt
        buf.count += 1
        if buf.min_ns is None or rtt < buf.min_ns:
            buf.min_ns = rtt
        if buf.max_ns is None or rtt > buf.max_ns:
            buf.max_ns = rtt
        buckets = buf.buckets
        # The exact expression QuantileSketch.add uses, so a flushed
        # sketch is bucket-identical to one fed sample by sample.
        index = math.ceil(math.log(rtt) / self._log_gamma)
        buckets[index] = buckets.get(index, 0) + 1
        if self._inner is not None:
            self._inner.add(sample)

    def _add_slow(self, sample: RttSample) -> None:
        # Zero/negative RTTs take the stage-wise path so the sketch's
        # zero-bucket semantics and the negative-value error stay
        # defined in exactly one place each.  Stage-wise adds commute
        # with buffered flushes — both are pure addition.
        self.histogram.add(sample)
        self.sketch.add(sample)
        if self._inner is not None:
            self._inner.add(sample)

    def _flush(self) -> None:
        """Fold the per-key buffers into the histogram/sketch stages.

        Exact by construction: buffer state is integer deltas keyed by
        the same bin/bucket indices the stage-wise paths compute, so
        flush order and frequency never change the resulting state —
        which keeps checkpoint bytes deterministic (``__getstate__``
        flushes first) and the shard-merge identity intact.
        """
        if not self._keyed:
            return
        hist = self.histogram
        sketch = self.sketch
        for key, buf in self._keyed.items():
            khist = hist.per_key.get(key)
            if khist is None:
                khist = RttHistogram(hist.spec)
                hist.per_key[key] = khist
            ksketch = sketch.per_key.get(key)
            if ksketch is None:
                ksketch = QuantileSketch(alpha=sketch.alpha,
                                         max_buckets=sketch.max_buckets)
                sketch.per_key[key] = ksketch
            for target in (khist, hist.total):
                counts = target.counts
                for i, c in enumerate(buf.counts):
                    if c:
                        counts[i] += c
                target.sum_ns += buf.sum_ns
                target.count += buf.count
                if buf.min_ns is not None and (target.min_ns is None
                                               or buf.min_ns < target.min_ns):
                    target.min_ns = buf.min_ns
                if buf.max_ns is not None and (target.max_ns is None
                                               or buf.max_ns > target.max_ns):
                    target.max_ns = buf.max_ns
            for starget in (ksketch, sketch.total):
                buckets = starget._buckets
                for index, weight in buf.buckets.items():
                    buckets[index] = buckets.get(index, 0) + weight
                starget.count += buf.count
                if buf.min_ns is not None and (starget._min is None
                                               or buf.min_ns < starget._min):
                    starget._min = buf.min_ns
                if buf.max_ns is not None and (starget._max is None
                                               or buf.max_ns > starget._max):
                    starget._max = buf.max_ns
                while (starget._max_buckets is not None
                       and len(starget._buckets) > starget._max_buckets):
                    starget._collapse_smallest()
        self._keyed = {}
        # The memo points into the cleared map; an add after a flush
        # must not land in an orphaned buffer.
        self._last_key = None
        self._last_buf = None

    # -- pickling (checkpoints, shard harvests) -----------------------------

    def __getstate__(self) -> Dict:
        # Flush first so pickled bytes are independent of read history
        # (the kill/resume suite requires byte-identical checkpoints),
        # and drop the derived caches — __setstate__ rebuilds them.
        self._flush()
        state = dict(self.__dict__)
        for name in ("_edges", "_keyed", "_prefix_shift", "_log_gamma",
                     "_last_key", "_last_buf"):
            state.pop(name, None)
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._rebind_caches()

    def flush(self, now_ns: int) -> None:
        if self._inner is not None:
            flush = getattr(self._inner, "flush", None)
            if callable(flush):
                flush(now_ns)

    def worth_recirculating(self, flow, timestamp_ns: int,
                            now_ns: int) -> bool:
        return True  # the distribution wants every sample

    def __getattr__(self, name: str):
        # Delegate the rest of the analytics surface (samples, history,
        # drain_windows, minima_for ...) to the composed inner module.
        # Leading underscores are never delegated: that keeps pickle's
        # pre-__init__ probes from recursing through a missing _inner.
        if name.startswith("_"):
            raise AttributeError(name)
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    # -- transport ----------------------------------------------------------

    @property
    def inner(self) -> Optional[object]:
        return self._inner

    def distribution_snapshot(self) -> "DistributionAnalytics":
        """The transportable view: stages only, no inner module.

        What shard harvests ship home and fleet deltas encode — the
        inner module's state already travels its own channel (retained
        samples, window history), so shipping it here would double it.
        Shares state with ``self``; callers that outlive the producer
        (the cluster merge) deep-copy before folding.
        """
        self._flush()
        snapshot = DistributionAnalytics.__new__(DistributionAnalytics)
        snapshot.histogram = self.histogram
        snapshot.sketch = self.sketch
        snapshot.quantiles = self.quantiles
        snapshot._inner = None
        snapshot._rebind_caches()
        return snapshot

    # -- merge algebra -------------------------------------------------------

    def merge(self, other: "DistributionAnalytics") -> None:
        """Fold another distribution in (addition — the shard rule).

        Inner modules are deliberately not merged: their state merges
        through the existing sample/window channels.
        """
        if other.quantiles != self.quantiles:
            raise ValueError("cannot merge distributions reporting "
                             "different quantiles")
        self._flush()
        other._flush()
        self.histogram.merge(other.histogram)
        self.sketch.merge(other.sketch)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistributionAnalytics):
            return NotImplemented
        self._flush()
        other._flush()
        return (
            self.quantiles == other.quantiles
            and self.histogram == other.histogram
            and self.sketch.total.count == other.sketch.total.count
        )

    __hash__ = None  # type: ignore[assignment]

    # -- read surface --------------------------------------------------------

    @property
    def count(self) -> int:
        self._flush()
        return self.histogram.total.count

    def percentiles(self) -> Dict[float, float]:
        """Sketch-estimated {quantile: rtt_ns} for the configured set."""
        self._flush()
        if self.sketch.total.count == 0:
            return {}
        return {q: self.sketch.total.quantile(q) for q in self.quantiles}

    def key_label(self, key: Hashable) -> str:
        """Render an aggregation key as a telemetry label value."""
        return describe_key(key, self.histogram.key_fn)


def describe_key(key: Hashable, key_fn: Optional[object] = None) -> str:
    """A stable, human-readable label for an aggregation key.

    Flow keys render via their own ``describe``; bare-int prefix keys
    (what :class:`~repro.core.analytics.DstPrefixKey` emits) render as
    dotted-quad/len when the key function tells us the length.
    """
    describe = getattr(key, "describe", None)
    if callable(describe):
        return describe()
    if isinstance(key, int):
        if isinstance(key_fn, DstPrefixKey):
            return f"{int_to_ipv4(key)}/{key_fn.prefix_len}"
        return int_to_ipv4(key)
    return str(key)


@dataclass(frozen=True)
class DistributionFactory:
    """Picklable zero-arg factory building one DistributionAnalytics.

    The cluster hands each shard worker its own analytics instance by
    calling a factory in the worker context; a shared instance would
    double-count under thread/serial sharding.  Frozen-dataclass
    callables pickle, closures do not — same reasoning as
    :class:`~repro.core.analytics.DstPrefixKey`.
    """

    spec: HistogramSpec = field(
        default_factory=lambda: HistogramSpec.log_bins()
    )
    alpha: float = 0.01
    max_buckets: Optional[int] = 4096
    quantiles: Tuple[float, ...] = DEFAULT_QUANTILES
    key_fn: Optional[object] = None
    inner_factory: Optional[Callable[[], object]] = None

    def __call__(self) -> DistributionAnalytics:
        inner = self.inner_factory() if self.inner_factory is not None else None
        return DistributionAnalytics(
            self.spec,
            alpha=self.alpha,
            max_buckets=self.max_buckets,
            quantiles=self.quantiles,
            key_fn=self.key_fn,
            inner=inner,
        )


def exact_quantile(values, p: float) -> float:
    """Linear-interpolated exact sample quantile (0..100).

    The single source of truth the sketch's accuracy guarantee is
    checked against: ``|sketch.quantile(p) - exact_quantile(vs, p)| <=
    alpha * exact_quantile(vs, p)``.  Shared by the accuracy harness
    and :mod:`repro.export.summaries` so percentile math is not
    reimplemented per call site.
    """
    data = sorted(values)
    if not data:
        raise ValueError("quantile of an empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"quantile out of range: {p}")
    rank = p / 100 * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(data[low])
    frac = rank - low
    return data[low] * (1 - frac) + data[high] * frac
