"""Dart core: the paper's primary contribution.

The public surface:

* :class:`Dart` — the monitor pipeline (Fig 3).
* :class:`DartConfig` — table sizing / behaviour knobs (§6.2 sweeps).
* :class:`RangeTracker` — per-flow measurement ranges (§3.1).
* The Packet Tracker backends — per-packet state with lazy eviction and
  recirculation (§3.2).
* Analytics — min-filtering and prefix aggregation (§3.3).
"""

from .analytics import (
    CollectAllAnalytics,
    MinFilterAnalytics,
    PrefixMinAnalytics,
    WindowMinimum,
    dst_prefix_key,
)
from .config import DartConfig, ideal_config, paper_default_config
from .flow import FlowKey, ack_target_flow, flow_of
from .hist import (
    DistributionAnalytics,
    DistributionFactory,
    HistogramSpec,
    RttHistogram,
    RttHistogramAnalytics,
    RttSketchAnalytics,
    describe_key,
    exact_quantile,
)
from .packet_tracker import (
    AssociativePacketTable,
    InsertStatus,
    PtRecord,
    StagedPacketTable,
)
from .payload import PayloadSizeTable, arithmetic_payload_size
from .pipeline import (
    EXTERNAL_LEG,
    INTERNAL_LEG,
    Dart,
    DartStats,
    make_leg_filter,
)
from .range_tracker import (
    AckVerdict,
    RangeEntry,
    RangeTracker,
    SeqVerdict,
)
from .samples import (
    CountingSink,
    NullSink,
    RttSample,
    SampleCollector,
    TeeSink,
)
from .targets import TargetFlowTable, TargetRule

__all__ = [
    "AckVerdict",
    "AssociativePacketTable",
    "CollectAllAnalytics",
    "CountingSink",
    "Dart",
    "DartConfig",
    "DartStats",
    "DistributionAnalytics",
    "DistributionFactory",
    "EXTERNAL_LEG",
    "FlowKey",
    "HistogramSpec",
    "INTERNAL_LEG",
    "InsertStatus",
    "MinFilterAnalytics",
    "NullSink",
    "PayloadSizeTable",
    "PrefixMinAnalytics",
    "PtRecord",
    "RangeEntry",
    "RangeTracker",
    "RttHistogram",
    "RttHistogramAnalytics",
    "RttSample",
    "RttSketchAnalytics",
    "SampleCollector",
    "SeqVerdict",
    "StagedPacketTable",
    "TargetFlowTable",
    "TargetRule",
    "TeeSink",
    "WindowMinimum",
    "ack_target_flow",
    "arithmetic_payload_size",
    "describe_key",
    "dst_prefix_key",
    "exact_quantile",
    "flow_of",
    "ideal_config",
    "make_leg_filter",
    "paper_default_config",
]
