"""Dart configuration.

One :class:`DartConfig` captures every knob the paper's evaluation sweeps
(§6.2): table sizes and associativity, the recirculation budget, and
whether handshake (SYN/SYN-ACK) packets are tracked.

``rt_slots=None`` / ``pt_slots=None`` selects the *ideal* fully
associative, unlimited-memory mode used in §6.1 — with
``track_handshake=False`` that configuration is exactly the paper's
``tcptrace_const`` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .hashing import MAX_STAGES


@dataclass(frozen=True)
class DartConfig:
    """Configuration for one Dart instance.

    Attributes:
        rt_slots: Range Tracker slot count (power of two), or None for
            an unlimited fully-associative table.
        pt_slots: Packet Tracker total slot count across all stages, or
            None for an unlimited fully-associative table.
        pt_stages: number of one-way-associative PT stages the slots are
            divided across (paper Fig 12; each stage gets
            ``pt_slots // pt_stages`` slots).
        max_recirculations: recirculation budget per tracked record
            (paper Fig 13).
        track_handshake: when True, SYN/SYN-ACK packets are tracked and
            produce handshake RTT samples (the paper's "+SYN" setting);
            when False they are ignored entirely (the "-SYN" setting,
            Dart's deployment default — robust to SYN floods).
        rt_overwrite_collapsed: allow a new flow to claim an RT slot whose
            occupant's measurement range has collapsed (paper §3.1: a
            collapsed entry "can be safely deleted or overwritten").
        analytics_purge: consult the analytics module before recirculating
            an evicted record and drop records that can no longer produce
            a useful sample (paper §3.3).
        handle_wraparound: reset the measurement range's left edge to zero
            on sequence-number wraparound (paper §4); disabling this
            models the naive design for ablation.
        recirculation_delay_packets: number of subsequent packets that are
            processed before a recirculated record re-enters the pipeline
            (0 = immediate, the idealized simulator; >0 models the
            hardware's recirculation latency and the reordering-of-
            recirculated-records hazard of paper §4).
        shadow_rt: enable the §7 approximation that trades memory for
            recirculation bandwidth — a *copy* of the Range Tracker
            placed after the Packet Tracker lets evicted records be
            staleness-checked at the end of the pipeline, so stale
            records self-destruct without consuming a recirculation.
            The copy is approximate: it lags the original by
            ``shadow_rt_lag_packets`` packets (the pipeline cannot keep
            two sequential tables perfectly consistent), so it sometimes
            discards a still-valid record (a lost sample) or passes a
            stale one (a wasted recirculation); both are counted.
        shadow_rt_lag_packets: staleness of the RT copy, in packets.
    """

    rt_slots: Optional[int] = None
    pt_slots: Optional[int] = None
    pt_stages: int = 1
    max_recirculations: int = 1
    track_handshake: bool = False
    rt_overwrite_collapsed: bool = True
    analytics_purge: bool = False
    handle_wraparound: bool = True
    recirculation_delay_packets: int = 0
    shadow_rt: bool = False
    shadow_rt_lag_packets: int = 8
    #: §7 mitigation: a very large RT entry timeout (in ns) reclaims
    #: entries pinned forever by flows that leave data unacknowledged
    #: (e.g. adversarial traffic).  None disables (the paper's default).
    rt_timeout_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rt_slots is not None and self.rt_slots <= 0:
            raise ValueError("rt_slots must be positive or None")
        if self.pt_slots is not None and self.pt_slots <= 0:
            raise ValueError("pt_slots must be positive or None")
        if not 1 <= self.pt_stages <= MAX_STAGES:
            raise ValueError(f"pt_stages must be in [1, {MAX_STAGES}]")
        if self.pt_slots is not None and self.pt_slots < self.pt_stages:
            raise ValueError("pt_slots must be at least pt_stages")
        if self.max_recirculations < 0:
            raise ValueError("max_recirculations must be non-negative")
        if self.recirculation_delay_packets < 0:
            raise ValueError("recirculation_delay_packets must be non-negative")
        if self.shadow_rt_lag_packets < 0:
            raise ValueError("shadow_rt_lag_packets must be non-negative")
        if self.rt_timeout_ns is not None and self.rt_timeout_ns <= 0:
            raise ValueError("rt_timeout_ns must be positive or None")

    @property
    def ideal(self) -> bool:
        """True when both tables are unlimited and fully associative."""
        return self.rt_slots is None and self.pt_slots is None

    @property
    def pt_stage_slots(self) -> Optional[int]:
        """Slots per PT stage, or None in ideal mode."""
        if self.pt_slots is None:
            return None
        return max(1, self.pt_slots // self.pt_stages)


def ideal_config(*, track_handshake: bool = False) -> DartConfig:
    """The §6.1 unlimited-memory configuration (``tcptrace_const`` when
    ``track_handshake`` is False)."""
    return DartConfig(rt_slots=None, pt_slots=None, track_handshake=track_handshake)


def paper_default_config() -> DartConfig:
    """The operating point §6.2 settles on: a large RT, a 2**17-slot
    single-stage PT, and one allowed recirculation."""
    return DartConfig(rt_slots=1 << 20, pt_slots=1 << 17, pt_stages=1,
                      max_recirculations=1)
