"""Columnar batch decoding: raw capture frames → numpy field columns.

The serial engine's per-packet cost is dominated by object decode (one
``EthernetFrame``/``IPv4Packet``/``TcpSegment`` graph per packet) and
per-key hashing.  This module lifts the decode into *one pass over a
contiguous byte buffer*: a batch of raw frames is concatenated, and the
header fields RTT matching needs (timestamp, addresses, ports, seq/ack,
flags, payload length) are gathered into numpy columns with vectorised
offset arithmetic — the same arithmetic :mod:`repro.net.scan` uses for
pre-parse shard keys, applied batch-wide.

Only the unambiguous common case is vectorised: Ethernet or raw-IP
frames carrying an option-free IPv4 header (IHL=5) and an option-free
TCP header (data offset 5).  Everything else keeps byte-identical
semantics by construction:

* frames whose headers *validate* but are not TCP (e.g. QUIC-over-UDP)
  become ``KIND_SKIP`` rows — exactly the frames the object decoder
  maps to ``None``;
* frames with IP options, TCP options, IPv6, or any header that fails
  the vectorised validity checks fall back to the reference
  :func:`~repro.net.packet.from_wire_bytes` decode, run eagerly here —
  so malformed-but-TCP frames raise the very same ``ValueError`` the
  object path raises, and well-formed oddballs become ``KIND_RECORD``
  rows carrying a real :class:`~repro.net.packet.PacketRecord`.

The one observable difference from per-frame decoding is *when* a
malformed frame raises: the columnar decoder validates a whole batch
up front, so a decode error surfaces before earlier frames in the same
batch are processed (the object path would process them first, then
die).  Both paths abort the run; no committed state diverges.

numpy is an optional dependency.  ``HAVE_NUMPY`` gates every caller;
the module itself always imports.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6
from .framing import REC_V4, REC_V6, REC_WIRE, FrameError
from .ipv4 import PROTO_TCP
from .packet import PacketRecord, from_wire_bytes

try:  # pragma: no cover - exercised implicitly by every fastpath test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - CI runs both with and without
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Row kinds.  ``KIND_VEC`` rows live entirely in the columns;
#: ``KIND_SKIP`` rows are non-TCP traffic the monitors ignore (the
#: object decoder's ``None``); ``KIND_RECORD`` rows carry a fallback
#: :class:`PacketRecord` in :attr:`PacketColumns.records`.
KIND_VEC = 0
KIND_SKIP = 1
KIND_RECORD = 2

_ETH_HEADER = 14
_TCP_FLAGS_MASK = 0x01FF

# Frame-walk structs shared with repro.net.framing (same layout; kept
# private there, so re-declared from the documented wire format).
_PREFIX = struct.Struct("!HB")
_V4 = struct.Struct("!HBQIIHHIIBI")
_V6 = struct.Struct("!HBQQQQQHHIIBI")
_WIRE_HEAD = struct.Struct("!HBQB")
_V4_BODY = _V4.size - _PREFIX.size
_V6_BODY = _V6.size - _PREFIX.size

#: Raw wire item: ``(timestamp_ns, linktype_is_ethernet, frame_bytes)``.
WireItem = Tuple[int, bool, bytes]


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise RuntimeError(
            "the columnar fast path requires numpy; install it or use the "
            "object path"
        )


class PacketColumns:
    """One decoded batch as parallel field columns.

    All field arrays are ``int64`` of length :attr:`n` (row *i* of every
    array describes frame *i* of the input batch, in order).  Field
    values are meaningful only at ``KIND_VEC`` rows; other rows hold
    zeros except ``timestamps``, which is filled for every non-skip row
    so chunk end-times can be read without touching fallback records.
    """

    __slots__ = ("n", "kinds", "timestamps", "src_ip", "dst_ip",
                 "src_port", "dst_port", "seq", "ack", "flags",
                 "payload_len", "records", "_records_cache")

    def __init__(self, n, kinds, timestamps, src_ip, dst_ip, src_port,
                 dst_port, seq, ack, flags, payload_len,
                 records: Dict[int, PacketRecord]):
        self.n = n
        self.kinds = kinds
        self.timestamps = timestamps
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.payload_len = payload_len
        self.records = records
        self._records_cache: Optional[List[Optional[PacketRecord]]] = None

    @classmethod
    def allocate(cls, n: int) -> "PacketColumns":
        """Zeroed columns for ``n`` rows, all marked ``KIND_SKIP``."""
        _require_numpy()
        z = [np.zeros(n, dtype=np.int64) for _ in range(9)]
        return cls(n, np.full(n, KIND_SKIP, dtype=np.uint8), *z, {})

    def decoded_count(self) -> int:
        """Rows that decoded to a packet (vectorised or fallback)."""
        return self.n - int((self.kinds == KIND_SKIP).sum())

    def last_timestamp_ns(self) -> Optional[int]:
        """Timestamp of the last decoded row, or None if all skipped."""
        decoded = np.nonzero(self.kinds != KIND_SKIP)[0]
        if decoded.size == 0:
            return None
        return int(self.timestamps[decoded[-1]])

    def to_records(self) -> List[Optional[PacketRecord]]:
        """Positional record list: ``None`` at skip rows, a
        :class:`PacketRecord` elsewhere — exactly what the object
        decoder would have produced for the same batch."""
        cached = self._records_cache
        if cached is None:
            out: List[Optional[PacketRecord]] = [None] * self.n
            ts = self.timestamps.tolist()
            src = self.src_ip.tolist()
            dst = self.dst_ip.tolist()
            sport = self.src_port.tolist()
            dport = self.dst_port.tolist()
            seq = self.seq.tolist()
            ack = self.ack.tolist()
            flags = self.flags.tolist()
            payload = self.payload_len.tolist()
            for i in np.nonzero(self.kinds == KIND_VEC)[0].tolist():
                out[i] = PacketRecord(ts[i], src[i], dst[i], sport[i],
                                      dport[i], seq[i], ack[i], flags[i],
                                      payload[i])
            for i, record in self.records.items():
                out[i] = record
            cached = self._records_cache = out
        return cached

    def compact_records(self) -> List[PacketRecord]:
        """:meth:`to_records` with the skip rows squeezed out."""
        return [r for r in self.to_records() if r is not None]

    @classmethod
    def concat(cls, parts: Sequence["PacketColumns"]) -> "PacketColumns":
        """Concatenate batches row-wise (order preserved).

        Used by streaming sources that accumulate several sub-pulls
        into one runner chunk; fallback-record indices are re-based
        onto the combined row space.
        """
        _require_numpy()
        if not parts:
            return cls.allocate(0)
        if len(parts) == 1:
            return parts[0]
        records: Dict[int, PacketRecord] = {}
        base = 0
        for part in parts:
            for i, record in part.records.items():
                records[base + i] = record
            base += part.n
        return cls(
            base,
            np.concatenate([p.kinds for p in parts]),
            np.concatenate([p.timestamps for p in parts]),
            np.concatenate([p.src_ip for p in parts]),
            np.concatenate([p.dst_ip for p in parts]),
            np.concatenate([p.src_port for p in parts]),
            np.concatenate([p.dst_port for p in parts]),
            np.concatenate([p.seq for p in parts]),
            np.concatenate([p.ack for p in parts]),
            np.concatenate([p.flags for p in parts]),
            np.concatenate([p.payload_len for p in parts]),
            records,
        )


def _scan_v4_tcp(buf, starts, lens, eth):
    """Vectorised mirror of the object decode chain over raw frames.

    ``buf`` is the concatenated frame bytes; ``starts``/``lens`` locate
    each frame, ``eth`` flags Ethernet vs raw-IP link types.  Returns
    ``(kinds, src, dst, sport, dport, seq, ack, flags, payload_len)``
    where ``kinds`` marks each row ``KIND_VEC`` (option-free IPv4 TCP,
    fields valid), ``KIND_SKIP`` (the object decoder returns ``None``
    without raising), or ``KIND_RECORD`` (caller must run the object
    decoder — it may raise or return anything).

    The skip/fallback split is the equivalence argument: a row is only
    classified here when every branch the object path would take is
    decided by the very bytes this function inspects (DESIGN §15).
    """
    n = int(starts.shape[0])
    kinds = np.full(n, KIND_RECORD, dtype=np.uint8)
    zeros = np.zeros(n, dtype=np.int64)
    fields = [zeros.copy() for _ in range(8)]
    if n == 0 or buf.size == 0:
        return (kinds, *fields)
    limit = buf.size - 1

    def u8(idx):
        # Clipped gather: out-of-range offsets only occur on rows the
        # validity masks below already exclude.
        return buf[np.minimum(idx, limit)].astype(np.int64)

    starts = starts.astype(np.int64)
    lens = lens.astype(np.int64)
    raw = ~eth
    # Link layer.  Ethernet frames shorter than the header raise in the
    # object decoder → fallback.  Non-IP ethertypes and raw frames that
    # are empty or carry an unknown version nibble decode to None.
    ethertype = (u8(starts + 12) << 8) | u8(starts + 13)
    eth_ok = eth & (lens >= _ETH_HEADER)
    version_raw = u8(starts) >> 4
    skip = (
        (eth_ok & (ethertype != ETHERTYPE_IPV4)
         & (ethertype != ETHERTYPE_IPV6))
        | (raw & (lens == 0))
        | (raw & (lens > 0) & (version_raw != 4) & (version_raw != 6))
    )
    kinds[skip] = KIND_SKIP
    # IPv4 candidates.  Anything else (IPv6, short Ethernet frames,
    # IPv4-ethertype frames without a version-4 nibble, IP options)
    # stays KIND_RECORD for the object decoder.
    cand = ((eth_ok & (ethertype == ETHERTYPE_IPV4))
            | (raw & (lens > 0) & (version_raw == 4)))
    base = np.where(eth, _ETH_HEADER, 0)
    o = starts + base
    ip_len = lens - base
    total_len = (u8(o + 2) << 8) | u8(o + 3)
    # version==4 and IHL==5 in one byte; total_length within the frame.
    hdr_ok = (cand & (ip_len >= 20) & (u8(o) == 0x45)
              & (total_len >= 20) & (total_len <= ip_len))
    proto = u8(o + 9)
    # A fully valid IPv4 header that is not TCP decodes to None.
    kinds[hdr_ok & (proto != PROTO_TCP)] = KIND_SKIP
    # TCP: need the full option-free header inside the IP payload.
    t = o + 20
    tcp_len = total_len - 20
    doff_flags = (u8(t + 12) << 8) | u8(t + 13)
    vec = (hdr_ok & (proto == PROTO_TCP) & (tcp_len >= 20)
           & ((doff_flags >> 12) == 5))
    kinds[vec] = KIND_VEC

    src = (u8(o + 12) << 24) | (u8(o + 13) << 16) | (u8(o + 14) << 8) | u8(o + 15)
    dst = (u8(o + 16) << 24) | (u8(o + 17) << 16) | (u8(o + 18) << 8) | u8(o + 19)
    sport = (u8(t) << 8) | u8(t + 1)
    dport = (u8(t + 2) << 8) | u8(t + 3)
    seq = (u8(t + 4) << 24) | (u8(t + 5) << 16) | (u8(t + 6) << 8) | u8(t + 7)
    ack = (u8(t + 8) << 24) | (u8(t + 9) << 16) | (u8(t + 10) << 8) | u8(t + 11)
    flags = doff_flags & _TCP_FLAGS_MASK
    payload_len = tcp_len - 20
    out = []
    for arr in (src, dst, sport, dport, seq, ack, flags, payload_len):
        arr[~vec] = 0  # never leak garbage from invalid rows
        out.append(arr)
    return (kinds, *out)


def decode_wire_columns(items: Sequence[WireItem]) -> PacketColumns:
    """Decode a batch of raw captured frames into columns.

    ``items`` is a sequence of ``(timestamp_ns, is_ethernet, frame)``
    triples, e.g. straight off a pcap reader.  Row *i* of the result
    corresponds to ``items[i]``.
    """
    _require_numpy()
    n = len(items)
    if n == 0:
        return PacketColumns.allocate(0)
    frames = [item[2] for item in items]
    lens = np.fromiter((len(f) for f in frames), dtype=np.int64, count=n)
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    buf = np.frombuffer(b"".join(frames), dtype=np.uint8)
    eth = np.fromiter((bool(item[1]) for item in items), dtype=np.bool_,
                      count=n)
    timestamps = np.fromiter((item[0] for item in items), dtype=np.int64,
                             count=n)
    (kinds, src, dst, sport, dport, seq, ack, flags,
     payload_len) = _scan_v4_tcp(buf, starts, lens, eth)
    records: Dict[int, PacketRecord] = {}
    for i in np.nonzero(kinds == KIND_RECORD)[0].tolist():
        ts_i, eth_i, frame = items[i]
        record = from_wire_bytes(frame, ts_i,
                                 linktype_ethernet=bool(eth_i))
        if record is None:
            kinds[i] = KIND_SKIP
        else:
            records[i] = record
    return PacketColumns(n, kinds, timestamps, src, dst, sport, dport,
                         seq, ack, flags, payload_len, records)


def columns_from_framed(payload) -> PacketColumns:
    """Columnar twin of :func:`repro.net.framing.decode_batch`.

    Walks the self-delimiting frame stream once (scalar — the walk is a
    couple of struct reads per frame), then extracts packed ``REC_V4``
    fields and embedded ``REC_WIRE`` frames with the same vectorised
    gathers as :func:`decode_wire_columns`.  Raises :class:`FrameError`
    for exactly the malformed batches ``decode_batch`` rejects.
    """
    _require_numpy()
    view = memoryview(payload)
    end = len(view)
    buf = np.frombuffer(view, dtype=np.uint8)
    v4_pos: List[int] = []
    v4_off: List[int] = []
    v6_pos: List[int] = []
    wire_pos: List[int] = []
    wire_start: List[int] = []
    wire_len: List[int] = []
    wire_eth: List[bool] = []
    wire_ts: List[int] = []
    records: Dict[int, PacketRecord] = {}
    record_ts: List[Tuple[int, int]] = []
    offset = 0
    index = 0
    while offset < end:
        if end - offset < _PREFIX.size:
            raise FrameError("truncated frame prefix")
        length, kind = _PREFIX.unpack_from(view, offset)
        body_end = offset + _PREFIX.size + length - 1
        if length < 1 or body_end > end:
            raise FrameError(
                f"frame length {length} overruns the batch at {offset}"
            )
        if kind == REC_V4:
            if length - 1 != _V4_BODY:
                raise FrameError(f"bad REC_V4 body length {length - 1}")
            v4_pos.append(index)
            v4_off.append(offset)
        elif kind == REC_V6:
            if length - 1 != _V6_BODY:
                raise FrameError(f"bad REC_V6 body length {length - 1}")
            (_, _, ts, src_hi, src_lo, dst_hi, dst_lo, sport, dport, seq,
             ack, flags, payload_len) = _V6.unpack_from(view, offset)
            records[index] = PacketRecord(
                ts, (src_hi << 64) | src_lo, (dst_hi << 64) | dst_lo,
                sport, dport, seq, ack, flags, payload_len, ipv6=True)
            record_ts.append((index, ts))
            v6_pos.append(index)
        elif kind == REC_WIRE:
            head_body = _WIRE_HEAD.size - _PREFIX.size
            if length - 1 < head_body:
                raise FrameError(f"bad REC_WIRE body length {length - 1}")
            _, _, ts, ethernet = _WIRE_HEAD.unpack_from(view, offset)
            wire_pos.append(index)
            wire_start.append(offset + _WIRE_HEAD.size)
            wire_len.append(body_end - offset - _WIRE_HEAD.size)
            wire_eth.append(bool(ethernet))
            wire_ts.append(ts)
        else:
            raise FrameError(f"unknown frame type {kind} at {offset}")
        offset = body_end
        index += 1

    cols = PacketColumns.allocate(index)
    kinds = cols.kinds
    if v4_pos:
        p = np.array(v4_pos, dtype=np.int64)
        o = np.array(v4_off, dtype=np.int64)
        m = buf[o[:, None] + np.arange(_V4.size)].astype(np.int64)
        kinds[p] = KIND_VEC
        cols.timestamps[p] = (
            (m[:, 3] << 56) | (m[:, 4] << 48) | (m[:, 5] << 40)
            | (m[:, 6] << 32) | (m[:, 7] << 24) | (m[:, 8] << 16)
            | (m[:, 9] << 8) | m[:, 10])
        cols.src_ip[p] = ((m[:, 11] << 24) | (m[:, 12] << 16)
                          | (m[:, 13] << 8) | m[:, 14])
        cols.dst_ip[p] = ((m[:, 15] << 24) | (m[:, 16] << 16)
                          | (m[:, 17] << 8) | m[:, 18])
        cols.src_port[p] = (m[:, 19] << 8) | m[:, 20]
        cols.dst_port[p] = (m[:, 21] << 8) | m[:, 22]
        cols.seq[p] = ((m[:, 23] << 24) | (m[:, 24] << 16)
                       | (m[:, 25] << 8) | m[:, 26])
        cols.ack[p] = ((m[:, 27] << 24) | (m[:, 28] << 16)
                       | (m[:, 29] << 8) | m[:, 30])
        cols.flags[p] = m[:, 31]
        cols.payload_len[p] = ((m[:, 32] << 24) | (m[:, 33] << 16)
                               | (m[:, 34] << 8) | m[:, 35])
    if wire_pos:
        p = np.array(wire_pos, dtype=np.int64)
        (kw, src, dst, sport, dport, seq, ack, flags,
         payload_len) = _scan_v4_tcp(
            buf,
            np.array(wire_start, dtype=np.int64),
            np.array(wire_len, dtype=np.int64),
            np.array(wire_eth, dtype=np.bool_),
        )
        kinds[p] = kw
        cols.timestamps[p] = np.array(wire_ts, dtype=np.int64)
        cols.src_ip[p] = src
        cols.dst_ip[p] = dst
        cols.src_port[p] = sport
        cols.dst_port[p] = dport
        cols.seq[p] = seq
        cols.ack[p] = ack
        cols.flags[p] = flags
        cols.payload_len[p] = payload_len
        for j in np.nonzero(kw == KIND_RECORD)[0].tolist():
            i = wire_pos[j]
            frame = bytes(view[wire_start[j]:wire_start[j] + wire_len[j]])
            record = from_wire_bytes(frame, wire_ts[j],
                                     linktype_ethernet=wire_eth[j])
            if record is None:
                kinds[i] = KIND_SKIP
            else:
                records[i] = record
    if v6_pos:
        kinds[np.array(v6_pos, dtype=np.int64)] = KIND_RECORD
    for i, ts in record_ts:
        cols.timestamps[i] = ts
    cols.records = records
    return cols


def records_to_columns(
    records: Iterable[Optional[PacketRecord]],
) -> PacketColumns:
    """Columns from already-parsed records (``None`` entries allowed).

    IPv4 records become vectorised rows; IPv6 records ride along as
    fallback rows; ``None`` becomes a skip row.  Useful when a record
    stream exists but the columnar classify/mutate split is still
    wanted (benchmark harnesses, tests).
    """
    _require_numpy()
    items = list(records)
    n = len(items)
    kinds = [KIND_SKIP] * n
    ts = [0] * n
    src = [0] * n
    dst = [0] * n
    sport = [0] * n
    dport = [0] * n
    seq = [0] * n
    ack = [0] * n
    flags = [0] * n
    payload_len = [0] * n
    fallback: Dict[int, PacketRecord] = {}
    for i, record in enumerate(items):
        if record is None:
            continue
        ts[i] = record.timestamp_ns
        if record.ipv6:
            kinds[i] = KIND_RECORD
            fallback[i] = record
            continue
        kinds[i] = KIND_VEC
        src[i] = record.src_ip
        dst[i] = record.dst_ip
        sport[i] = record.src_port
        dport[i] = record.dst_port
        seq[i] = record.seq
        ack[i] = record.ack
        flags[i] = record.flags
        payload_len[i] = record.payload_len
    return PacketColumns(
        n,
        np.array(kinds, dtype=np.uint8),
        np.array(ts, dtype=np.int64),
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(sport, dtype=np.int64),
        np.array(dport, dtype=np.int64),
        np.array(seq, dtype=np.int64),
        np.array(ack, dtype=np.int64),
        np.array(flags, dtype=np.int64),
        np.array(payload_len, dtype=np.int64),
        fallback,
    )
