"""TCP segment encoding/decoding (RFC 793), including common options.

The codec round-trips the fields Dart cares about (sequence/ack numbers,
flags, payload length) plus enough option support (MSS, window scale,
SACK-permitted, SACK blocks, timestamps) to emit realistic traffic in the
examples and to parse real pcaps.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .checksum import tcp_checksum_v4, tcp_checksum_v6

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20
FLAG_ECE = 0x40
FLAG_CWR = 0x80

MIN_HEADER_LEN = 20
MAX_HEADER_LEN = 60

OPT_END = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_WSCALE = 3
OPT_SACK_PERMITTED = 4
OPT_SACK = 5
OPT_TIMESTAMP = 8


@dataclass
class TcpOptions:
    """Parsed TCP options; any field may be absent (None/empty)."""

    mss: Optional[int] = None
    window_scale: Optional[int] = None
    sack_permitted: bool = False
    sack_blocks: List[Tuple[int, int]] = field(default_factory=list)
    timestamp: Optional[Tuple[int, int]] = None  # (TSval, TSecr)

    def encode(self) -> bytes:
        """Serialize the options, padded with NOPs to a 4-byte multiple."""
        out = bytearray()
        if self.mss is not None:
            out += struct.pack("!BBH", OPT_MSS, 4, self.mss)
        if self.window_scale is not None:
            out += struct.pack("!BBB", OPT_WSCALE, 3, self.window_scale)
        if self.sack_permitted:
            out += struct.pack("!BB", OPT_SACK_PERMITTED, 2)
        if self.timestamp is not None:
            tsval, tsecr = self.timestamp
            out += struct.pack("!BBII", OPT_TIMESTAMP, 10, tsval, tsecr)
        if self.sack_blocks:
            if len(self.sack_blocks) > 4:
                raise ValueError("at most 4 SACK blocks fit in a TCP header")
            length = 2 + 8 * len(self.sack_blocks)
            out += struct.pack("!BB", OPT_SACK, length)
            for left, right in self.sack_blocks:
                out += struct.pack("!II", left, right)
        while len(out) % 4:
            out += bytes([OPT_NOP])
        if len(out) > MAX_HEADER_LEN - MIN_HEADER_LEN:
            raise ValueError("TCP options exceed 40 bytes")
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "TcpOptions":
        """Parse raw option bytes; unknown options are skipped."""
        opts = cls()
        i = 0
        while i < len(data):
            kind = data[i]
            if kind == OPT_END:
                break
            if kind == OPT_NOP:
                i += 1
                continue
            if i + 1 >= len(data):
                raise ValueError("truncated TCP option")
            length = data[i + 1]
            if length < 2 or i + length > len(data):
                raise ValueError(f"bad TCP option length {length}")
            body = data[i + 2 : i + length]
            if kind == OPT_MSS and length == 4:
                (opts.mss,) = struct.unpack("!H", body)
            elif kind == OPT_WSCALE and length == 3:
                opts.window_scale = body[0]
            elif kind == OPT_SACK_PERMITTED and length == 2:
                opts.sack_permitted = True
            elif kind == OPT_TIMESTAMP and length == 10:
                opts.timestamp = struct.unpack("!II", body)
            elif kind == OPT_SACK and (length - 2) % 8 == 0:
                for j in range(0, length - 2, 8):
                    left, right = struct.unpack_from("!II", body, j)
                    opts.sack_blocks.append((left, right))
            i += length
        return opts


@dataclass
class TcpSegment:
    """A TCP segment with an opaque payload."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = FLAG_ACK
    window: int = 65535
    urgent: int = 0
    options: TcpOptions = field(default_factory=TcpOptions)
    payload: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        for name in ("src_port", "dst_port"):
            port = getattr(self, name)
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")
        for name in ("seq", "ack"):
            value = getattr(self, name)
            if not 0 <= value < (1 << 32):
                raise ValueError(f"{name} out of range: {value}")

    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def data_offset(self) -> int:
        """Header length in 32-bit words."""
        return (MIN_HEADER_LEN + len(self.options.encode())) // 4

    @property
    def header_len(self) -> int:
        """Header length in bytes."""
        return self.data_offset * 4

    def encode(
        self,
        *,
        src_addr: Optional[bytes] = None,
        dst_addr: Optional[bytes] = None,
    ) -> bytes:
        """Serialize; computes a real checksum when addresses are given."""
        opt_bytes = self.options.encode()
        offset_flags = ((MIN_HEADER_LEN + len(opt_bytes)) // 4) << 12 | self.flags
        header = struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            0,
            self.urgent,
        ) + opt_bytes
        segment = header + self.payload
        if src_addr is not None and dst_addr is not None:
            if len(src_addr) == 4:
                checksum = tcp_checksum_v4(src_addr, dst_addr, segment)
            else:
                checksum = tcp_checksum_v6(src_addr, dst_addr, segment)
            segment = segment[:16] + struct.pack("!H", checksum) + segment[18:]
        return segment

    @classmethod
    def decode(cls, data: bytes) -> "TcpSegment":
        """Parse a wire-format segment; raises ValueError on truncation."""
        if len(data) < MIN_HEADER_LEN:
            raise ValueError(f"TCP segment too short: {len(data)} bytes")
        (src_port, dst_port, seq, ack, offset_flags, window, _checksum, urgent) = (
            struct.unpack_from("!HHIIHHHH", data, 0)
        )
        header_len = (offset_flags >> 12) * 4
        if header_len < MIN_HEADER_LEN or header_len > len(data):
            raise ValueError(f"bad TCP data offset: {header_len}")
        options = TcpOptions.decode(data[MIN_HEADER_LEN:header_len])
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=offset_flags & 0x01FF,
            window=window,
            urgent=urgent,
            options=options,
            payload=data[header_len:],
        )


def flag_names(flags: int) -> str:
    """Render a flag byte as e.g. ``"SYN|ACK"`` for logs and repr."""
    names = [
        (FLAG_SYN, "SYN"),
        (FLAG_FIN, "FIN"),
        (FLAG_RST, "RST"),
        (FLAG_PSH, "PSH"),
        (FLAG_ACK, "ACK"),
        (FLAG_URG, "URG"),
        (FLAG_ECE, "ECE"),
        (FLAG_CWR, "CWR"),
    ]
    present = [name for bit, name in names if flags & bit]
    return "|".join(present) if present else "NONE"
