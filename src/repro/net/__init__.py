"""Packet substrate: header codecs, checksums, pcap I/O, packet records.

This package provides the byte-level networking substrate the rest of the
library is built on.  The central type is :class:`~repro.net.packet.PacketRecord`,
the codec-independent view of one TCP packet that all monitors consume.
"""

from .ethernet import EthernetFrame
from .framing import (
    BatchEncoder,
    FrameError,
    decode_batch,
    encode_records,
)
from .inet import (
    format_prefix,
    int_to_ipv4,
    int_to_ipv6,
    ipv4_to_int,
    ipv6_to_int,
    prefix_of,
)
from .ipv4 import IPv4Packet
from .ipv6 import IPv6Packet
from .packet import (
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    PacketRecord,
    from_wire_bytes,
    to_wire_bytes,
)
from .pcap import (
    PcapFormatError,
    PcapReader,
    PcapWriter,
    TruncatedCapture,
    append_packets,
    read_frames,
    read_packets,
    write_packets,
)
from .pcapng import read_any_capture, read_pcapng_packets, sniff_format
from .scan import canonical_key_bytes, scan_shard_key
from .tcp import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TcpOptions,
    TcpSegment,
)

__all__ = [
    "BatchEncoder",
    "EthernetFrame",
    "FrameError",
    "IPv4Packet",
    "IPv6Packet",
    "PacketRecord",
    "PcapFormatError",
    "PcapReader",
    "PcapWriter",
    "TruncatedCapture",
    "TcpOptions",
    "TcpSegment",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_RST",
    "FLAG_SYN",
    "NS_PER_MS",
    "NS_PER_SEC",
    "NS_PER_US",
    "append_packets",
    "canonical_key_bytes",
    "decode_batch",
    "encode_records",
    "format_prefix",
    "from_wire_bytes",
    "int_to_ipv4",
    "int_to_ipv6",
    "ipv4_to_int",
    "ipv6_to_int",
    "prefix_of",
    "read_any_capture",
    "read_frames",
    "read_packets",
    "read_pcapng_packets",
    "scan_shard_key",
    "sniff_format",
    "to_wire_bytes",
    "write_packets",
]
