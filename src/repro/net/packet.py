"""The packet record consumed by every monitor in this library.

``PacketRecord`` is the single, codec-independent view of one TCP packet
as seen at the monitoring vantage point: a nanosecond timestamp plus the
handful of header fields RTT matching needs.  Both the synthetic trace
generators (:mod:`repro.traces`) and the pcap decoder
(:func:`from_wire_bytes`) produce this type; Dart, tcptrace, and the
strawman all consume it.

Timestamps are integer nanoseconds throughout the library — the Tofino
reports RTTs at nanosecond granularity (paper §8) and integers keep the
simulation deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from . import tcp as tcp_mod
from .ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6, EthernetFrame
from .inet import int_to_ipv4, int_to_ipv6
from .ipv4 import PROTO_TCP, IPv4Packet
from .ipv6 import IPv6Packet
from .tcp import TcpSegment, flag_names

NS_PER_SEC = 1_000_000_000
NS_PER_MS = 1_000_000
NS_PER_US = 1_000


@dataclass(frozen=True, slots=True)
class PacketRecord:
    """One observed TCP packet.

    ``payload_len`` counts TCP payload bytes only; SYN and FIN flags each
    consume one unit of sequence space, which :attr:`seq_consumed` and
    :attr:`eack` account for.
    """

    timestamp_ns: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload_len: int
    ipv6: bool = False

    @property
    def syn(self) -> bool:
        return bool(self.flags & tcp_mod.FLAG_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & tcp_mod.FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & tcp_mod.FLAG_RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & tcp_mod.FLAG_ACK)

    @property
    def seq_consumed(self) -> int:
        """Sequence space consumed: payload bytes plus SYN/FIN flags."""
        return self.payload_len + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def carries_data(self) -> bool:
        """True when the packet advances the sender's sequence space,
        i.e. it can be the SEQ side of an RTT sample."""
        return self.seq_consumed > 0

    @property
    def eack(self) -> int:
        """The expected ACK number for this packet (paper Fig 2)."""
        return (self.seq + self.seq_consumed) & 0xFFFFFFFF

    def describe(self) -> str:
        """One-line human-readable rendering for logs and examples."""
        fmt = int_to_ipv6 if self.ipv6 else int_to_ipv4
        return (
            f"{self.timestamp_ns / NS_PER_SEC:.6f} "
            f"{fmt(self.src_ip)}:{self.src_port} > "
            f"{fmt(self.dst_ip)}:{self.dst_port} "
            f"[{flag_names(self.flags)}] seq={self.seq} ack={self.ack} "
            f"len={self.payload_len}"
        )


def from_tcp_segment(
    segment: TcpSegment,
    *,
    timestamp_ns: int,
    src_ip: int,
    dst_ip: int,
    ipv6: bool = False,
) -> PacketRecord:
    """Build a record from a decoded TCP segment plus IP-layer context."""
    return PacketRecord(
        timestamp_ns=timestamp_ns,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=segment.src_port,
        dst_port=segment.dst_port,
        seq=segment.seq,
        ack=segment.ack,
        flags=segment.flags,
        payload_len=len(segment.payload),
        ipv6=ipv6,
    )


def from_wire_bytes(
    data: bytes, timestamp_ns: int, *, linktype_ethernet: bool = True
) -> Optional[PacketRecord]:
    """Decode a raw captured frame into a record.

    Returns None for non-TCP traffic (the monitor ignores it), and raises
    ValueError for frames that claim to be TCP but are malformed.
    """
    if linktype_ethernet:
        frame = EthernetFrame.decode(data)
        if frame.ethertype == ETHERTYPE_IPV4:
            ip_bytes = frame.payload
            ipv6 = False
        elif frame.ethertype == ETHERTYPE_IPV6:
            ip_bytes = frame.payload
            ipv6 = True
        else:
            return None
    else:
        if not data:
            return None
        version = data[0] >> 4
        if version == 4:
            ip_bytes, ipv6 = data, False
        elif version == 6:
            ip_bytes, ipv6 = data, True
        else:
            return None

    if ipv6:
        ip6 = IPv6Packet.decode(ip_bytes)
        if ip6.next_header != PROTO_TCP:
            return None
        segment = TcpSegment.decode(ip6.payload)
        return from_tcp_segment(
            segment,
            timestamp_ns=timestamp_ns,
            src_ip=ip6.src,
            dst_ip=ip6.dst,
            ipv6=True,
        )

    ip4 = IPv4Packet.decode(ip_bytes)
    if ip4.proto != PROTO_TCP:
        return None
    segment = TcpSegment.decode(ip4.payload)
    return from_tcp_segment(
        segment,
        timestamp_ns=timestamp_ns,
        src_ip=ip4.src,
        dst_ip=ip4.dst,
    )


def to_wire_bytes(record: PacketRecord, *, payload_byte: bytes = b"\x00") -> bytes:
    """Serialize a record to an Ethernet frame (synthetic payload).

    The inverse of :func:`from_wire_bytes` up to payload contents; used to
    write synthetic traces out as real pcap files.
    """
    segment = TcpSegment(
        src_port=record.src_port,
        dst_port=record.dst_port,
        seq=record.seq,
        ack=record.ack,
        flags=record.flags,
        payload=payload_byte * record.payload_len,
    )
    if record.ipv6:
        ip6 = IPv6Packet(
            src=record.src_ip,
            dst=record.dst_ip,
            next_header=PROTO_TCP,
            payload=segment.encode(
                src_addr=record.src_ip.to_bytes(16, "big"),
                dst_addr=record.dst_ip.to_bytes(16, "big"),
            ),
        )
        frame = EthernetFrame(ethertype=ETHERTYPE_IPV6, payload=ip6.encode())
    else:
        ip4 = IPv4Packet(
            src=record.src_ip,
            dst=record.dst_ip,
            proto=PROTO_TCP,
            payload=segment.encode(
                src_addr=record.src_ip.to_bytes(4, "big"),
                dst_addr=record.dst_ip.to_bytes(4, "big"),
            ),
        )
        frame = EthernetFrame(ethertype=ETHERTYPE_IPV4, payload=ip4.encode())
    return frame.encode()


def sorted_by_time(records: Iterator[PacketRecord]) -> list:
    """Return records sorted by timestamp (stable for equal stamps)."""
    return sorted(records, key=lambda r: r.timestamp_ns)
