"""Classic libpcap file reading and writing, implemented from scratch.

Supports the microsecond (0xA1B2C3D4) and nanosecond (0xA1B23C4D) magic
variants in either byte order, with the two linktypes this library emits:
Ethernet (DLT_EN10MB) and raw IP (DLT_RAW).  This replaces the paper's
tcpreplay/tcpdump tooling: synthetic traces can be written to disk as
real captures and real captures can be replayed into any monitor.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Tuple, Union

from .packet import NS_PER_US, PacketRecord, from_wire_bytes, to_wire_bytes

MAGIC_MICRO = 0xA1B2C3D4
MAGIC_NANO = 0xA1B23C4D

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101

_GLOBAL_HEADER = struct.Struct("IHHiIII")
_RECORD_HEADER = struct.Struct("IIII")

PathLike = Union[str, Path]


class PcapFormatError(ValueError):
    """Raised for malformed pcap files."""


class TruncatedCapture(PcapFormatError):
    """A capture ends mid-record — the file may still be growing.

    Distinct from a *malformed* capture: every byte up to
    ``resume_offset`` parsed cleanly, and the bytes after it look like
    the beginning of a valid record that has not been fully written yet
    (tcpdump flushes record-at-a-time, so an in-flight capture usually
    ends this way).  A tailing reader catches this, waits for the file
    to grow, and retries from ``resume_offset``; an offline reader
    treats it as the fatal parse error it subclasses.

    The raising reader seeks its stream back to ``resume_offset`` (when
    the stream is seekable), so calling ``next()`` again after the file
    has grown re-parses the whole record.
    """

    def __init__(self, message: str, *, resume_offset: int) -> None:
        super().__init__(f"{message} (resume offset {resume_offset})")
        self.resume_offset = resume_offset


@dataclass(frozen=True)
class PcapHeader:
    """Parsed pcap global header."""

    byte_order: str  # '<' or '>'
    nanosecond: bool
    version: Tuple[int, int]
    snaplen: int
    linktype: int


def _parse_global_header(data: bytes) -> PcapHeader:
    if len(data) < _GLOBAL_HEADER.size:
        raise PcapFormatError("pcap file shorter than global header")
    (magic,) = struct.unpack_from("<I", data, 0)
    for order in ("<", ">"):
        (m,) = struct.unpack_from(order + "I", data, 0)
        if m in (MAGIC_MICRO, MAGIC_NANO):
            magic, byte_order = m, order
            break
    else:
        raise PcapFormatError(f"bad pcap magic: {magic:#x}")
    _, major, minor, _tz, _sig, snaplen, linktype = struct.unpack_from(
        byte_order + "IHHiIII", data, 0
    )
    return PcapHeader(
        byte_order=byte_order,
        nanosecond=(magic == MAGIC_NANO),
        version=(major, minor),
        snaplen=snaplen,
        linktype=linktype,
    )


class PcapReader:
    """Iterates ``(timestamp_ns, frame_bytes)`` pairs from a pcap file.

    The reader is fully incremental: it reads one record at a time,
    tracks the byte offset of the next unconsumed record in
    :attr:`resume_offset`, and raises :class:`TruncatedCapture` (after
    seeking back to the record start) when the file ends mid-record —
    so a tailing caller can wait for more bytes and simply call
    ``next()`` again on the same reader.
    """

    GLOBAL_HEADER_BYTES = 24

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        header_bytes = stream.read(self.GLOBAL_HEADER_BYTES)
        if len(header_bytes) < self.GLOBAL_HEADER_BYTES:
            # Could be an in-flight capture whose header write has not
            # landed yet; a tailing caller waits and retries from 0.
            self._rewind(0)
            raise TruncatedCapture("partial pcap global header",
                                   resume_offset=0)
        self.header = _parse_global_header(header_bytes)
        self._rec = struct.Struct(self.header.byte_order + "IIII")
        self._offset = self.GLOBAL_HEADER_BYTES

    @property
    def resume_offset(self) -> int:
        """Byte offset of the first record not yet fully consumed."""
        return self._offset

    def skip_to(self, offset: int) -> None:
        """Position the reader at a previously recorded resume offset."""
        if offset < self.GLOBAL_HEADER_BYTES:
            raise PcapFormatError(
                f"pcap resume offset {offset} is inside the global header"
            )
        self._stream.seek(offset)
        self._offset = offset

    def _rewind(self, offset: int) -> None:
        """Back the stream up so a retry re-reads from a record start."""
        try:
            self._stream.seek(offset)
        except (OSError, ValueError):
            pass  # non-seekable stream; retry is not possible anyway

    def __iter__(self) -> Iterator[Tuple[int, bytes]]:
        return self

    def __next__(self) -> Tuple[int, bytes]:
        start = self._offset
        header = self._stream.read(16)
        if not header:
            raise StopIteration
        if len(header) < 16:
            self._rewind(start)
            raise TruncatedCapture("partial pcap record header",
                                   resume_offset=start)
        ts_sec, ts_frac, incl_len, orig_len = self._rec.unpack(header)
        if incl_len > orig_len and orig_len != 0:
            raise PcapFormatError(
                f"pcap record incl_len {incl_len} exceeds orig_len {orig_len}"
            )
        data = self._stream.read(incl_len)
        if len(data) < incl_len:
            self._rewind(start)
            raise TruncatedCapture("partial pcap record body",
                                   resume_offset=start)
        self._offset = start + 16 + incl_len
        if self.header.nanosecond:
            timestamp_ns = ts_sec * 1_000_000_000 + ts_frac
        else:
            timestamp_ns = ts_sec * 1_000_000_000 + ts_frac * NS_PER_US
        return timestamp_ns, data


class PcapWriter:
    """Writes frames to a nanosecond-resolution pcap file."""

    def __init__(
        self,
        stream: BinaryIO,
        *,
        linktype: int = LINKTYPE_ETHERNET,
        snaplen: int = 262144,
        nanosecond: bool = True,
    ):
        self._stream = stream
        self._nanosecond = nanosecond
        magic = MAGIC_NANO if nanosecond else MAGIC_MICRO
        stream.write(struct.pack("<IHHiIII", magic, 2, 4, 0, 0, snaplen, linktype))

    def write(self, timestamp_ns: int, frame: bytes) -> None:
        """Append one captured frame."""
        sec, rem_ns = divmod(timestamp_ns, 1_000_000_000)
        frac = rem_ns if self._nanosecond else rem_ns // NS_PER_US
        self._stream.write(struct.pack("<IIII", sec, frac, len(frame), len(frame)))
        self._stream.write(frame)


def read_frames(path: PathLike) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(timestamp_ns, frame_bytes)`` from a pcap file on disk."""
    with open(path, "rb") as stream:
        reader = PcapReader(stream)
        yield from reader


def read_packets(path: PathLike) -> Iterator[PacketRecord]:
    """Yield TCP :class:`PacketRecord` objects from a pcap file.

    Non-TCP frames are silently skipped, matching the behaviour of the
    hardware prototype (Dart only inspects TCP traffic).
    """
    with open(path, "rb") as stream:
        reader = PcapReader(stream)
        ethernet = reader.header.linktype == LINKTYPE_ETHERNET
        if not ethernet and reader.header.linktype != LINKTYPE_RAW:
            raise PcapFormatError(
                f"unsupported linktype {reader.header.linktype}"
            )
        for timestamp_ns, frame in reader:
            record = from_wire_bytes(
                frame, timestamp_ns, linktype_ethernet=ethernet
            )
            if record is not None:
                yield record


def write_packets(
    path: PathLike,
    records: Iterable[PacketRecord],
    *,
    nanosecond: bool = True,
) -> int:
    """Write packet records to a pcap file; returns the packet count."""
    count = 0
    with open(path, "wb") as stream:
        writer = PcapWriter(stream, nanosecond=nanosecond)
        for record in records:
            writer.write(record.timestamp_ns, to_wire_bytes(record))
            count += 1
    return count


def append_packets(path: PathLike, records: Iterable[PacketRecord]) -> int:
    """Append packet records to an existing pcap file; returns the count.

    Reads the file's global header first so appended records use the
    capture's existing timestamp resolution and byte order — this is how
    the stream tests and the CI smoke harness grow a "live" capture the
    way a flushing tcpdump would (whole records, one write each).
    """
    with open(path, "rb") as stream:
        header = _parse_global_header(stream.read(24))
    rec = struct.Struct(header.byte_order + "IIII")
    divisor = 1 if header.nanosecond else NS_PER_US
    count = 0
    with open(path, "ab") as stream:
        for record in records:
            frame = to_wire_bytes(record)
            sec, rem_ns = divmod(record.timestamp_ns, 1_000_000_000)
            stream.write(
                rec.pack(sec, rem_ns // divisor, len(frame), len(frame))
            )
            stream.write(frame)
            count += 1
    return count
