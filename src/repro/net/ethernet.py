"""Ethernet II frame encoding/decoding."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100

HEADER_LEN = 14


def parse_mac(text: str) -> bytes:
    """Parse ``aa:bb:cc:dd:ee:ff`` into 6 raw bytes."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {text!r}")
    try:
        raw = bytes(int(p, 16) for p in parts)
    except ValueError as exc:
        raise ValueError(f"malformed MAC address: {text!r}") from exc
    return raw


def format_mac(raw: bytes) -> str:
    """Format 6 raw bytes as ``aa:bb:cc:dd:ee:ff``."""
    if len(raw) != 6:
        raise ValueError("MAC address must be 6 bytes")
    return ":".join(f"{b:02x}" for b in raw)


@dataclass
class EthernetFrame:
    """An Ethernet II frame with an opaque payload."""

    dst: bytes = b"\x00" * 6
    src: bytes = b"\x00" * 6
    ethertype: int = ETHERTYPE_IPV4
    payload: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if len(self.dst) != 6 or len(self.src) != 6:
            raise ValueError("Ethernet addresses must be 6 bytes")
        if not 0 <= self.ethertype <= 0xFFFF:
            raise ValueError(f"ethertype out of range: {self.ethertype}")

    def encode(self) -> bytes:
        """Serialize the frame to wire format."""
        return self.dst + self.src + struct.pack("!H", self.ethertype) + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "EthernetFrame":
        """Parse a wire-format frame; raises ValueError on truncation."""
        if len(data) < HEADER_LEN:
            raise ValueError(f"Ethernet frame too short: {len(data)} bytes")
        (ethertype,) = struct.unpack_from("!H", data, 12)
        return cls(
            dst=data[0:6],
            src=data[6:12],
            ethertype=ethertype,
            payload=data[HEADER_LEN:],
        )
