"""IPv4 header encoding/decoding (RFC 791)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .checksum import internet_checksum, verify_checksum

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

MIN_HEADER_LEN = 20


@dataclass
class IPv4Packet:
    """An IPv4 packet with an opaque payload.

    Addresses are integers (see :mod:`repro.net.inet`).  ``ihl`` is in
    32-bit words; ``options`` must be pre-padded to a multiple of 4 bytes.
    """

    src: int = 0
    dst: int = 0
    proto: int = PROTO_TCP
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    ecn: int = 0
    flags: int = 2  # don't-fragment, the common case
    frag_offset: int = 0
    options: bytes = b""
    payload: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if len(self.options) % 4:
            raise ValueError("IPv4 options must be padded to 4-byte multiple")
        if len(self.options) > 40:
            raise ValueError("IPv4 options exceed 40 bytes")

    @property
    def ihl(self) -> int:
        """Header length in 32-bit words (5 when no options)."""
        return (MIN_HEADER_LEN + len(self.options)) // 4

    @property
    def header_len(self) -> int:
        """Header length in bytes."""
        return MIN_HEADER_LEN + len(self.options)

    @property
    def total_length(self) -> int:
        """Total packet length in bytes (header + payload)."""
        return self.header_len + len(self.payload)

    def encode(self) -> bytes:
        """Serialize with a correct header checksum."""
        ver_ihl = (4 << 4) | self.ihl
        dscp_ecn = (self.dscp << 2) | self.ecn
        flags_frag = (self.flags << 13) | self.frag_offset
        header = struct.pack(
            "!BBHHHBBH4s4s",
            ver_ihl,
            dscp_ecn,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.proto,
            0,
            self.src.to_bytes(4, "big"),
            self.dst.to_bytes(4, "big"),
        ) + self.options
        checksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", checksum) + header[12:]
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, *, verify: bool = False) -> "IPv4Packet":
        """Parse a wire-format IPv4 packet.

        Raises ValueError on truncation, version mismatch, or (when
        ``verify`` is set) a bad header checksum.
        """
        if len(data) < MIN_HEADER_LEN:
            raise ValueError(f"IPv4 packet too short: {len(data)} bytes")
        ver_ihl, dscp_ecn, total_length, ident, flags_frag, ttl, proto = (
            struct.unpack_from("!BBHHHBB", data, 0)
        )
        version = ver_ihl >> 4
        if version != 4:
            raise ValueError(f"not an IPv4 packet (version={version})")
        ihl = ver_ihl & 0x0F
        header_len = ihl * 4
        if header_len < MIN_HEADER_LEN or len(data) < header_len:
            raise ValueError(f"bad IPv4 header length: {header_len}")
        if total_length < header_len or total_length > len(data):
            raise ValueError(f"bad IPv4 total length: {total_length}")
        if verify and not verify_checksum(data[:header_len]):
            raise ValueError("IPv4 header checksum mismatch")
        src = int.from_bytes(data[12:16], "big")
        dst = int.from_bytes(data[16:20], "big")
        return cls(
            src=src,
            dst=dst,
            proto=proto,
            ttl=ttl,
            identification=ident,
            dscp=dscp_ecn >> 2,
            ecn=dscp_ecn & 0x03,
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
            options=data[MIN_HEADER_LEN:header_len],
            payload=data[header_len:total_length],
        )
