"""IP address parsing/formatting helpers.

Addresses are carried through the library as plain integers (fast to hash
and compare in the hot monitoring path); this module converts between
integers, dotted-quad / colon-hex strings, and packed bytes.
"""

from __future__ import annotations

import ipaddress

IPV4_MAX = (1 << 32) - 1
IPV6_MAX = (1 << 128) - 1


def ipv4_to_int(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer."""
    return int(ipaddress.IPv4Address(text))


def int_to_ipv4(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address."""
    if not 0 <= value <= IPV4_MAX:
        raise ValueError(f"IPv4 address out of range: {value}")
    return str(ipaddress.IPv4Address(value))


def ipv6_to_int(text: str) -> int:
    """Parse a colon-hex IPv6 address into an integer."""
    return int(ipaddress.IPv6Address(text))


def int_to_ipv6(value: int) -> str:
    """Format an integer as a colon-hex IPv6 address."""
    if not 0 <= value <= IPV6_MAX:
        raise ValueError(f"IPv6 address out of range: {value}")
    return str(ipaddress.IPv6Address(value))


def ipv4_to_bytes(value: int) -> bytes:
    """Pack an integer IPv4 address into 4 network-order bytes."""
    return value.to_bytes(4, "big")


def bytes_to_ipv4(data: bytes) -> int:
    """Unpack 4 network-order bytes into an integer IPv4 address."""
    if len(data) != 4:
        raise ValueError("IPv4 address must be 4 bytes")
    return int.from_bytes(data, "big")


def ipv6_to_bytes(value: int) -> bytes:
    """Pack an integer IPv6 address into 16 network-order bytes."""
    return value.to_bytes(16, "big")


def bytes_to_ipv6(data: bytes) -> int:
    """Unpack 16 network-order bytes into an integer IPv6 address."""
    if len(data) != 16:
        raise ValueError("IPv6 address must be 16 bytes")
    return int.from_bytes(data, "big")


def prefix_of(addr: int, prefix_len: int, *, bits: int = 32) -> int:
    """Return the network prefix of ``addr`` (e.g. /24 aggregation key).

    Dart's analytics module aggregates RTT samples per prefix; this is the
    key function used for that aggregation.
    """
    if not 0 <= prefix_len <= bits:
        raise ValueError(f"prefix length {prefix_len} out of range for /{bits}")
    shift = bits - prefix_len
    return (addr >> shift) << shift


def in_prefix(addr: int, network: int, prefix_len: int, *, bits: int = 32) -> bool:
    """True when ``addr`` falls inside ``network``/``prefix_len``."""
    return prefix_of(addr, prefix_len, bits=bits) == prefix_of(
        network, prefix_len, bits=bits
    )


def format_prefix(network: int, prefix_len: int) -> str:
    """Human-readable ``a.b.c.d/len`` form of an IPv4 prefix."""
    return f"{int_to_ipv4(prefix_of(network, prefix_len))}/{prefix_len}"
