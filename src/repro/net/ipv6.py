"""IPv6 base header encoding/decoding (RFC 8200).

Dart's discussion section (§7) notes the system extends to IPv6 with a
larger flow signature; the simulator supports IPv6 packets through this
codec and the flow-key abstraction in :mod:`repro.core.flow`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

HEADER_LEN = 40


@dataclass
class IPv6Packet:
    """An IPv6 packet (base header only, no extension-header chain)."""

    src: int = 0
    dst: int = 0
    next_header: int = 6  # TCP
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0
    payload: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.flow_label < (1 << 20):
            raise ValueError(f"flow label out of range: {self.flow_label}")
        if not 0 <= self.traffic_class <= 0xFF:
            raise ValueError(f"traffic class out of range: {self.traffic_class}")

    @property
    def payload_length(self) -> int:
        """Length of everything after the base header."""
        return len(self.payload)

    def encode(self) -> bytes:
        """Serialize to wire format."""
        ver_tc_fl = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        return (
            struct.pack(
                "!IHBB",
                ver_tc_fl,
                self.payload_length,
                self.next_header,
                self.hop_limit,
            )
            + self.src.to_bytes(16, "big")
            + self.dst.to_bytes(16, "big")
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "IPv6Packet":
        """Parse a wire-format IPv6 packet; raises ValueError on errors."""
        if len(data) < HEADER_LEN:
            raise ValueError(f"IPv6 packet too short: {len(data)} bytes")
        ver_tc_fl, payload_length, next_header, hop_limit = struct.unpack_from(
            "!IHBB", data, 0
        )
        version = ver_tc_fl >> 28
        if version != 6:
            raise ValueError(f"not an IPv6 packet (version={version})")
        if len(data) < HEADER_LEN + payload_length:
            raise ValueError("IPv6 payload truncated")
        return cls(
            src=int.from_bytes(data[8:24], "big"),
            dst=int.from_bytes(data[24:40], "big"),
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(ver_tc_fl >> 20) & 0xFF,
            flow_label=ver_tc_fl & 0xFFFFF,
            payload=data[HEADER_LEN : HEADER_LEN + payload_length],
        )
