"""Zero-copy header scanning: shard keys from raw frames, pre-parse.

The cluster coordinator must route every captured frame to its flow
shard, but full decoding (:func:`repro.net.packet.from_wire_bytes`)
builds an Ethernet frame object, an IP packet object, and a TCP segment
object per packet — far too much work for a stage whose only question
is "which shard?".  This module answers that question with pure offset
arithmetic on the raw buffer: no objects, no copies beyond the final
small key, no option parsing.

:func:`scan_shard_key` returns the *canonical* (smaller-endpoint-first)
flow key bytes — byte-for-byte the same value
``flow_of(record).canonical().key_bytes()`` produces after a full
decode, which is the invariant the pre-parse shard hash rests on (and
the one ``tests/net/test_scan.py`` pins with hypothesis).  TCP and UDP
share their port layout in the first four L4 bytes, so the scanner
also covers QUIC datagrams (the spin-bit monitor's input).

Truncated or non-IP frames scan to ``None`` — the scanner never raises.
A frame may scan successfully and still fail the full decode later
(e.g. a TCP header cut off after its ports); such frames fail in the
worker exactly like they would fail a serial run, so scanning never
changes *which* packets error, only where the error surfaces.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from .ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6
from .ethernet import HEADER_LEN as _ETH_LEN
from .ipv4 import MIN_HEADER_LEN as _IP4_MIN
from .ipv4 import PROTO_TCP, PROTO_UDP
from .ipv6 import HEADER_LEN as _IP6_LEN

#: L4 protocols the scanner recognises by default: TCP flows and UDP
#: (QUIC) datagrams both carry ``src_port, dst_port`` in their first 4
#: bytes, so one offset walk covers both record kinds.
SCAN_PROTOCOLS: FrozenSet[int] = frozenset((PROTO_TCP, PROTO_UDP))

#: TCP only — what a TCP-monitor dispatcher passes so non-TCP frames
#: scan to ``None`` exactly where ``from_wire_bytes`` returns ``None``.
TCP_ONLY: FrozenSet[int] = frozenset((PROTO_TCP,))


def canonical_key_bytes(src_ip: int, dst_ip: int, src_port: int,
                        dst_port: int, ipv6: bool = False) -> bytes:
    """Canonical flow-key bytes straight from 4-tuple fields.

    Equals ``FlowKey(...).canonical().key_bytes()`` without building
    either :class:`~repro.core.flow.FlowKey` — the record-path twin of
    :func:`scan_shard_key` for packets that are already parsed.
    """
    if (dst_ip, dst_port) < (src_ip, src_port):
        src_ip, dst_ip = dst_ip, src_ip
        src_port, dst_port = dst_port, src_port
    addr_len = 16 if ipv6 else 4
    return (src_ip.to_bytes(addr_len, "big")
            + dst_ip.to_bytes(addr_len, "big")
            + src_port.to_bytes(2, "big")
            + dst_port.to_bytes(2, "big"))


def scan_shard_key(
    data: bytes,
    *,
    linktype_ethernet: bool = True,
    protocols: FrozenSet[int] = SCAN_PROTOCOLS,
) -> Optional[bytes]:
    """Canonical flow-key bytes of a raw captured frame, or ``None``.

    Reads only the fixed-offset header fields needed to build the key:
    ethertype, IP version/IHL/protocol, addresses, and the first four
    L4 bytes (the ports, identical for TCP and UDP).  Returns ``None``
    for non-IP ethertypes, protocols outside ``protocols``, and any
    frame too short to reach the ports.  Deliberately *no* validation
    beyond that: a malformed frame that would make the full decoder
    raise still scans to the key the decoder's field offsets imply, so
    it lands on — and raises in — the same shard a serial run would
    raise in.
    """
    view = memoryview(data)
    if linktype_ethernet:
        if len(view) < _ETH_LEN:
            return None
        ethertype = (view[12] << 8) | view[13]
        if ethertype != ETHERTYPE_IPV4 and ethertype != ETHERTYPE_IPV6:
            return None
        ip = view[_ETH_LEN:]
    else:
        ip = view

    if not len(ip):
        return None
    version = ip[0] >> 4

    if version == 4:
        if len(ip) < _IP4_MIN:
            return None
        header_len = (ip[0] & 0x0F) * 4
        if header_len < _IP4_MIN or len(ip) < header_len + 4:
            return None
        if ip[9] not in protocols:
            return None
        src = bytes(ip[12:16])
        dst = bytes(ip[16:20])
        sport = bytes(ip[header_len:header_len + 2])
        dport = bytes(ip[header_len + 2:header_len + 4])
    elif version == 6:
        if len(ip) < _IP6_LEN + 4:
            return None
        if ip[6] not in protocols:
            return None
        src = bytes(ip[8:24])
        dst = bytes(ip[24:40])
        sport = bytes(ip[_IP6_LEN:_IP6_LEN + 2])
        dport = bytes(ip[_IP6_LEN + 2:_IP6_LEN + 4])
    else:
        return None

    # Canonical order: smaller (address, port) endpoint first, matching
    # FlowKey.canonical()'s integer comparison (big-endian bytes of
    # equal length compare like the integers they encode).
    if (dst, dport) < (src, sport):
        return dst + src + dport + sport
    return src + dst + sport + dport
