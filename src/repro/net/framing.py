"""Length-prefixed record framing: packet batches as contiguous bytes.

The cluster's process-mode transport moves *bytes*, not Python objects:
the coordinator appends records into one contiguous per-shard buffer
and ships the whole buffer in a single operation, so the per-packet
cross-process cost is a small ``struct.pack`` and a memcpy instead of a
pickled object graph.  This module defines that buffer's layout.

Every record is one *frame*::

    u16 length | u8 type | body (``length - 1`` bytes)

with three body types:

* ``REC_V4`` — a parsed IPv4 :class:`~repro.net.packet.PacketRecord`,
  fixed 33-byte body (timestamp, addresses, ports, seq/ack, flags,
  payload length);
* ``REC_V6`` — the IPv6 twin with full 16-byte addresses (57 bytes);
* ``REC_WIRE`` — an *unparsed* captured frame: u64 timestamp, u8
  linktype flag, then the raw frame bytes.  This is the zero-copy path:
  the coordinator never decodes the packet, the worker does.

The framing is self-delimiting and append-only, so batches concatenate
freely and a decoder needs no out-of-band record count.  ``u16`` length
bounds a frame body at 65534 bytes — far above any real MTU; oversized
wire frames are rejected at encode time rather than truncated silently.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Optional

from .packet import PacketRecord, from_wire_bytes

REC_V4 = 0
REC_WIRE = 1
REC_V6 = 2

#: Frame layout structs.  The prefix (u16 length + u8 type) is folded
#: into the packed-record structs so one ``pack`` call per record emits
#: the complete frame.
_PREFIX = struct.Struct("!HB")
#: ts, src, dst, sport, dport, seq, ack, flags, payload_len
_V4 = struct.Struct("!HBQIIHHIIBI")
#: ts, src_hi, src_lo, dst_hi, dst_lo, sport, dport, seq, ack, flags,
#: payload_len
_V6 = struct.Struct("!HBQQQQQHHIIBI")
_WIRE_HEAD = struct.Struct("!HBQB")

_V4_BODY = _V4.size - _PREFIX.size
_V6_BODY = _V6.size - _PREFIX.size
_U64_MASK = (1 << 64) - 1

#: Largest wire-frame payload a u16 length prefix can carry (the
#: length field covers the type byte and the timestamp/linktype head).
MAX_WIRE_BYTES = 0xFFFF - (_WIRE_HEAD.size - _PREFIX.size) - 1


class FrameError(ValueError):
    """A byte batch is malformed (bad length, unknown type, truncation)."""


class BatchEncoder:
    """Accumulates record frames into one contiguous byte buffer.

    One encoder per shard: the dispatcher appends with
    :meth:`add_record` / :meth:`add_wire` and hands the buffer to the
    transport with :meth:`take` once it is batch-sized.  ``size`` and
    ``count`` are cheap properties the dispatcher polls per append.
    """

    __slots__ = ("_buffer", "count")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.count = 0

    @property
    def size(self) -> int:
        return len(self._buffer)

    def add_record(self, record: PacketRecord) -> None:
        """Append one parsed record as a fixed-size packed frame."""
        if record.ipv6:
            self._buffer += _V6.pack(
                _V6_BODY + 1, REC_V6, record.timestamp_ns & _U64_MASK,
                record.src_ip >> 64, record.src_ip & _U64_MASK,
                record.dst_ip >> 64, record.dst_ip & _U64_MASK,
                record.src_port, record.dst_port, record.seq, record.ack,
                record.flags, record.payload_len,
            )
        else:
            self._buffer += _V4.pack(
                _V4_BODY + 1, REC_V4, record.timestamp_ns & _U64_MASK,
                record.src_ip, record.dst_ip, record.src_port,
                record.dst_port, record.seq, record.ack, record.flags,
                record.payload_len,
            )
        self.count += 1

    def add_wire(self, data: bytes, timestamp_ns: int, *,
                 linktype_ethernet: bool = True) -> None:
        """Append one raw captured frame, unparsed (the zero-copy path)."""
        if len(data) > MAX_WIRE_BYTES:
            raise FrameError(
                f"wire frame of {len(data)} bytes exceeds the framing "
                f"limit ({MAX_WIRE_BYTES})"
            )
        self._buffer += _WIRE_HEAD.pack(
            _WIRE_HEAD.size - _PREFIX.size + len(data) + 1, REC_WIRE,
            timestamp_ns & _U64_MASK, 1 if linktype_ethernet else 0,
        )
        self._buffer += data
        self.count += 1

    def take(self) -> bytes:
        """Return the accumulated batch and reset the encoder."""
        batch = bytes(self._buffer)
        self._buffer.clear()
        self.count = 0
        return batch


def encode_records(records: Iterable[PacketRecord]) -> bytes:
    """One-shot convenience: frame an iterable of records."""
    encoder = BatchEncoder()
    for record in records:
        encoder.add_record(record)
    return encoder.take()


def decode_batch(payload) -> List[Optional[PacketRecord]]:
    """Decode a framed byte batch back into records.

    Accepts ``bytes`` or ``memoryview``.  Packed frames rebuild their
    :class:`PacketRecord` directly; wire frames run the full
    :func:`~repro.net.packet.from_wire_bytes` decode *here*, in the
    worker — the whole point of the byte transport is moving that work
    off the coordinator.  Wire frames decoding to non-TCP yield
    ``None`` entries (``process_batch`` skips them), matching the
    serial reader's behaviour for mixed captures.
    """
    view = memoryview(payload)
    end = len(view)
    records: List[Optional[PacketRecord]] = []
    append = records.append
    offset = 0
    while offset < end:
        if end - offset < _PREFIX.size:
            raise FrameError("truncated frame prefix")
        length, kind = _PREFIX.unpack_from(view, offset)
        body_end = offset + _PREFIX.size + length - 1
        if length < 1 or body_end > end:
            raise FrameError(
                f"frame length {length} overruns the batch at {offset}"
            )
        if kind == REC_V4:
            if length - 1 != _V4_BODY:
                raise FrameError(f"bad REC_V4 body length {length - 1}")
            (_, _, ts, src, dst, sport, dport, seq, ack, flags,
             payload_len) = _V4.unpack_from(view, offset)
            append(PacketRecord(ts, src, dst, sport, dport, seq, ack,
                                flags, payload_len))
        elif kind == REC_V6:
            if length - 1 != _V6_BODY:
                raise FrameError(f"bad REC_V6 body length {length - 1}")
            (_, _, ts, src_hi, src_lo, dst_hi, dst_lo, sport, dport, seq,
             ack, flags, payload_len) = _V6.unpack_from(view, offset)
            append(PacketRecord(ts, (src_hi << 64) | src_lo,
                                (dst_hi << 64) | dst_lo, sport, dport,
                                seq, ack, flags, payload_len, ipv6=True))
        elif kind == REC_WIRE:
            head_body = _WIRE_HEAD.size - _PREFIX.size
            if length - 1 < head_body:
                raise FrameError(f"bad REC_WIRE body length {length - 1}")
            _, _, ts, ethernet = _WIRE_HEAD.unpack_from(view, offset)
            frame = bytes(view[offset + _WIRE_HEAD.size:body_end])
            append(from_wire_bytes(frame, ts,
                                   linktype_ethernet=bool(ethernet)))
        else:
            raise FrameError(f"unknown frame type {kind} at {offset}")
        offset = body_end
    return records
