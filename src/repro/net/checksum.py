"""Internet checksum (RFC 1071) and TCP/IP pseudo-header checksums.

These are the real on-the-wire algorithms so that packets serialized by
:mod:`repro.net` are valid captures (readable by tcpdump/wireshark) and so
that parsed pcaps can be verified.
"""

from __future__ import annotations

import struct


def ones_complement_sum(data: bytes) -> int:
    """Return the 16-bit one's-complement sum of ``data``.

    Odd-length input is padded with a trailing zero byte, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return total & 0xFFFF


def internet_checksum(data: bytes) -> int:
    """Return the Internet checksum (one's complement of the sum)."""
    return (~ones_complement_sum(data)) & 0xFFFF


def pseudo_header_v4(src: bytes, dst: bytes, proto: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used by TCP/UDP checksums."""
    if len(src) != 4 or len(dst) != 4:
        raise ValueError("IPv4 pseudo-header needs 4-byte addresses")
    return src + dst + struct.pack("!BBH", 0, proto, length)


def pseudo_header_v6(src: bytes, dst: bytes, proto: int, length: int) -> bytes:
    """Build the IPv6 pseudo-header used by TCP/UDP checksums."""
    if len(src) != 16 or len(dst) != 16:
        raise ValueError("IPv6 pseudo-header needs 16-byte addresses")
    return src + dst + struct.pack("!IHBB", length, 0, 0, proto)


def tcp_checksum_v4(src: bytes, dst: bytes, segment: bytes) -> int:
    """Compute the TCP checksum for an IPv4 packet.

    ``segment`` is the TCP header (with its checksum field zeroed) plus
    payload.
    """
    pseudo = pseudo_header_v4(src, dst, 6, len(segment))
    return internet_checksum(pseudo + segment)


def tcp_checksum_v6(src: bytes, dst: bytes, segment: bytes) -> int:
    """Compute the TCP checksum for an IPv6 packet."""
    pseudo = pseudo_header_v6(src, dst, 6, len(segment))
    return internet_checksum(pseudo + segment)


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (header including its checksum field) sums to 0."""
    return ones_complement_sum(data) == 0xFFFF
