"""pcapng (next-generation capture) file reading, from scratch.

Modern tcpdump/wireshark default to pcapng, so the offline tooling
accepts it alongside classic pcap.  Supported blocks:

* Section Header Block (0x0A0D0D0A) — byte order, section boundaries;
* Interface Description Block (0x00000001) — linktype and the
  ``if_tsresol`` option (timestamp resolution, default 10^-6);
* Enhanced Packet Block (0x00000006) — timestamped packets;
* Simple Packet Block (0x00000003) — packets without timestamps
  (reported at t=0, in file order);
* all other blocks are skipped.

Only reading is implemented; captures are *written* as classic pcap
(:mod:`repro.net.pcap`), which every tool reads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Optional, Tuple

from .packet import PacketRecord, from_wire_bytes
from .pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    PathLike,
    PcapFormatError,
    TruncatedCapture,
)

BLOCK_SHB = 0x0A0D0D0A
BLOCK_IDB = 0x00000001
BLOCK_SPB = 0x00000003
BLOCK_EPB = 0x00000006

BYTE_ORDER_MAGIC = 0x1A2B3C4D

OPT_ENDOFOPT = 0
OPT_IF_TSRESOL = 9


@dataclass
class _Interface:
    linktype: int
    ticks_per_second: int


def _parse_options(data: bytes, order: str):
    """Yield (code, value) pairs from an options region."""
    i = 0
    while i + 4 <= len(data):
        code, length = struct.unpack_from(order + "HH", data, i)
        i += 4
        if code == OPT_ENDOFOPT:
            return
        value = data[i : i + length]
        yield code, value
        i += (length + 3) & ~3  # options are padded to 32 bits


def _tsresol_to_ticks(value: bytes) -> int:
    """Decode if_tsresol: ticks of the interface clock per second."""
    if not value:
        return 1_000_000
    raw = value[0]
    if raw & 0x80:
        return 1 << (raw & 0x7F)
    return 10 ** raw


class PcapngReader:
    """Iterates ``(timestamp_ns, linktype, frame_bytes)`` tuples.

    Like :class:`~repro.net.pcap.PcapReader`, the reader is fully
    incremental: it consumes one block at a time, tracks the offset of
    the next unconsumed block in :attr:`resume_offset`, and raises
    :class:`~repro.net.pcap.TruncatedCapture` (after seeking back to
    the block start) when the stream ends mid-block, so a tailing
    caller can wait for more bytes and call ``next()`` again.
    """

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        self._order = "<"
        self._interfaces: List[_Interface] = []
        self._offset = 0
        block = self._read_block()
        if block is None:
            # Zero bytes so far: possibly an in-flight capture.
            raise TruncatedCapture("empty pcapng stream", resume_offset=0)
        if block[0] != BLOCK_SHB:
            raise PcapFormatError("not a pcapng file (no section header)")
        self._handle_shb(block[1])

    @property
    def resume_offset(self) -> int:
        """Byte offset of the first block not yet fully consumed."""
        return self._offset

    def skip_to(self, offset: int) -> None:
        """Fast-forward to a previously recorded resume offset.

        pcapng blocks carry section and interface state, so resuming
        must replay the block *structure* (without decoding packets)
        from the start of the file up to the offset.
        """
        while self._offset < offset:
            block = self._read_block()
            if block is None:
                raise PcapFormatError(
                    f"pcapng resume offset {offset} is beyond end of file"
                )
            block_type, body = block
            if block_type == BLOCK_SHB:
                self._handle_shb(body)
            elif block_type == BLOCK_IDB:
                self._handle_idb(body)
        if self._offset != offset:
            raise PcapFormatError(
                f"pcapng resume offset {offset} is not on a block boundary"
            )

    # -- low-level block framing ------------------------------------------------

    def _rewind(self, offset: int) -> None:
        """Back the stream up so a retry re-reads from a block start."""
        try:
            self._stream.seek(offset)
        except (OSError, ValueError):
            pass  # non-seekable stream; retry is not possible anyway

    def _read_block(self) -> Optional[Tuple[int, bytes]]:
        """Consume one whole block; None at a clean end-of-stream."""
        start = self._offset
        header = self._stream.read(8)
        if not header:
            return None
        if len(header) < 8:
            self._rewind(start)
            raise TruncatedCapture("partial pcapng block header",
                                   resume_offset=start)
        block_type = struct.unpack_from(self._order + "I", header, 0)[0]
        consumed = 8
        if block_type == BLOCK_SHB:
            # Byte order may change at a section boundary; peek at the
            # byte-order magic to decide how to read the length.
            magic_bytes = self._stream.read(4)
            if len(magic_bytes) < 4:
                self._rewind(start)
                raise TruncatedCapture("partial section header",
                                       resume_offset=start)
            (magic_le,) = struct.unpack("<I", magic_bytes)
            self._order = "<" if magic_le == BYTE_ORDER_MAGIC else ">"
            consumed += 4
        # total_length covers: type(4) + length(4) + body + trailer(4).
        (total_length,) = struct.unpack(self._order + "I", header[4:8])
        body_length = total_length - consumed - 4
        if body_length < 0:
            raise PcapFormatError(f"bad pcapng block length {total_length}")
        body = self._stream.read(body_length)
        if len(body) < body_length:
            self._rewind(start)
            raise TruncatedCapture("partial pcapng block body",
                                   resume_offset=start)
        trailer = self._stream.read(4)
        if len(trailer) < 4:
            self._rewind(start)
            raise TruncatedCapture("missing pcapng block trailer",
                                   resume_offset=start)
        self._offset = start + total_length
        return block_type, body

    # -- block handlers -----------------------------------------------------------

    def _handle_shb(self, body: bytes) -> None:
        self._interfaces = []  # interfaces are per-section

    def _handle_idb(self, body: bytes) -> None:
        if len(body) < 8:
            raise PcapFormatError("short interface description block")
        (linktype,) = struct.unpack_from(self._order + "H", body, 0)
        ticks = 1_000_000
        for code, value in _parse_options(body[8:], self._order):
            if code == OPT_IF_TSRESOL:
                ticks = _tsresol_to_ticks(value)
        self._interfaces.append(_Interface(linktype, ticks))

    def _interface(self, index: int) -> _Interface:
        if index >= len(self._interfaces):
            raise PcapFormatError(
                f"packet references undeclared interface {index}"
            )
        return self._interfaces[index]

    # -- iteration ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Tuple[int, int, bytes]]:
        return self

    def __next__(self) -> Tuple[int, int, bytes]:
        while True:
            block = self._read_block()
            if block is None:
                raise StopIteration
            block_type, body = block
            if block_type == BLOCK_SHB:
                self._handle_shb(body)
            elif block_type == BLOCK_IDB:
                self._handle_idb(body)
            elif block_type == BLOCK_EPB:
                return self._parse_epb(body)
            elif block_type == BLOCK_SPB:
                return self._parse_spb(body)
            # anything else: skip

    def _parse_epb(self, body: bytes) -> Tuple[int, int, bytes]:
        if len(body) < 20:
            raise PcapFormatError("short enhanced packet block")
        if_index, ts_high, ts_low, captured, _original = struct.unpack_from(
            self._order + "IIIII", body, 0
        )
        interface = self._interface(if_index)
        ticks = (ts_high << 32) | ts_low
        timestamp_ns = ticks * 1_000_000_000 // interface.ticks_per_second
        frame = body[20 : 20 + captured]
        if len(frame) < captured:
            raise PcapFormatError("truncated enhanced packet data")
        return timestamp_ns, interface.linktype, frame

    def _parse_spb(self, body: bytes) -> Tuple[int, int, bytes]:
        if len(body) < 4:
            raise PcapFormatError("short simple packet block")
        if not self._interfaces:
            raise PcapFormatError("simple packet block before any interface")
        (original,) = struct.unpack_from(self._order + "I", body, 0)
        interface = self._interfaces[0]
        # The captured length is bounded by the block body.
        frame = body[4 : 4 + original]
        return 0, interface.linktype, frame


def read_pcapng_packets(path: PathLike) -> Iterator[PacketRecord]:
    """Yield TCP :class:`PacketRecord` objects from a pcapng file."""
    with open(path, "rb") as stream:
        reader = PcapngReader(stream)
        for timestamp_ns, linktype, frame in reader:
            if linktype == LINKTYPE_ETHERNET:
                ethernet = True
            elif linktype == LINKTYPE_RAW:
                ethernet = False
            else:
                continue
            record = from_wire_bytes(frame, timestamp_ns,
                                     linktype_ethernet=ethernet)
            if record is not None:
                yield record


def sniff_format(path: PathLike) -> str:
    """Return ``"pcap"``, ``"pcapng"``, or raise for anything else."""
    with open(path, "rb") as stream:
        magic = stream.read(4)
    if len(magic) < 4:
        raise PcapFormatError("file too short to be a capture")
    (value_le,) = struct.unpack("<I", magic)
    (value_be,) = struct.unpack(">I", magic)
    if value_le == BLOCK_SHB:
        return "pcapng"
    from .pcap import MAGIC_MICRO, MAGIC_NANO

    if value_le in (MAGIC_MICRO, MAGIC_NANO) or value_be in (
        MAGIC_MICRO, MAGIC_NANO
    ):
        return "pcap"
    raise PcapFormatError(f"unrecognized capture magic {magic!r}")


def read_any_capture(path: PathLike) -> Iterator[PacketRecord]:
    """Read TCP packets from either a pcap or a pcapng file."""
    from .pcap import read_packets

    if sniff_format(path) == "pcapng":
        return read_pcapng_packets(path)
    return read_packets(path)


def read_any_frames(
    path: PathLike,
) -> Iterator[Tuple[int, bool, bytes]]:
    """Yield raw ``(timestamp_ns, is_ethernet, frame)`` from either
    capture format — the undecoded twin of :func:`read_any_capture`,
    feeding the columnar fast path.

    Linktype handling matches the record readers exactly: a pcap on an
    unsupported linktype raises, a pcapng frame on an unsupported
    linktype is skipped.
    """
    if sniff_format(path) == "pcapng":
        with open(path, "rb") as stream:
            for timestamp_ns, linktype, frame in PcapngReader(stream):
                if linktype == LINKTYPE_ETHERNET:
                    yield timestamp_ns, True, frame
                elif linktype == LINKTYPE_RAW:
                    yield timestamp_ns, False, frame
        return
    from .pcap import PcapReader

    with open(path, "rb") as stream:
        reader = PcapReader(stream)
        ethernet = reader.header.linktype == LINKTYPE_ETHERNET
        if not ethernet and reader.header.linktype != LINKTYPE_RAW:
            raise PcapFormatError(
                f"unsupported linktype {reader.header.linktype}"
            )
        for timestamp_ns, frame in reader:
            yield timestamp_ns, ethernet, frame
