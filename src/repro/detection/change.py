"""Threshold-based min-RTT change detection (paper §5.2, Fig 8).

The collection server's algorithm: compute the minimum RTT over windows
of N consecutive raw samples (N = 8 in the paper); when the windowed
minimum rises abruptly relative to the established baseline, *suspect*
an attack, and *confirm* it when the rise sustains for one further
window.  A fall back to baseline before confirmation clears the
suspicion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.analytics import MinFilterAnalytics, WindowMinimum
from ..core.samples import RttSample


class DetectionState(enum.Enum):
    LEARNING = "learning"    # establishing the baseline
    NORMAL = "normal"
    SUSPECTED = "suspected"
    CONFIRMED = "confirmed"


@dataclass(frozen=True)
class DetectionEvent:
    """A state transition emitted by the detector."""

    state: DetectionState
    window_index: int
    timestamp_ns: int
    min_rtt_ns: int
    baseline_ns: int


@dataclass
class DetectorConfig:
    window_samples: int = 8        # paper: windows of 8 raw samples
    rise_factor: float = 2.0       # "abrupt" = min RTT at least doubles
    baseline_windows: int = 3      # windows used to establish a baseline


class InterceptionDetector:
    """Consumes RTT samples, emits suspicion/confirmation events.

    Feed it raw samples with :meth:`add` (it windows them internally via
    :class:`MinFilterAnalytics`), or drive :meth:`on_window` directly
    from an existing analytics instance.
    """

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()
        self.state = DetectionState.LEARNING
        self.baseline_ns: Optional[int] = None
        self.events: List[DetectionEvent] = []
        self.windows: List[WindowMinimum] = []
        self._learning: List[int] = []
        self._analytics = MinFilterAnalytics(
            window_samples=self.config.window_samples,
            key_fn=lambda sample: "all",
            on_window=self.on_window,
        )

    # -- inputs ---------------------------------------------------------------

    def add(self, sample: RttSample) -> None:
        """Feed one raw RTT sample."""
        self._analytics.add(sample)

    def add_many(self, samples: Sequence[RttSample]) -> None:
        for sample in samples:
            self.add(sample)

    # -- windowed logic ----------------------------------------------------------

    def on_window(self, window: WindowMinimum) -> None:
        """Process one closed min-RTT window."""
        self.windows.append(window)
        if self.state is DetectionState.LEARNING:
            self._learning.append(window.min_rtt_ns)
            if len(self._learning) >= self.config.baseline_windows:
                self.baseline_ns = min(self._learning)
                self._transition(DetectionState.NORMAL, window)
            return
        assert self.baseline_ns is not None
        elevated = window.min_rtt_ns >= self.baseline_ns * self.config.rise_factor
        if self.state is DetectionState.NORMAL:
            if elevated:
                self._transition(DetectionState.SUSPECTED, window)
        elif self.state is DetectionState.SUSPECTED:
            if elevated:
                self._transition(DetectionState.CONFIRMED, window)
            else:
                self._transition(DetectionState.NORMAL, window)
        # CONFIRMED is terminal for one attack episode; callers may reset().

    def _transition(self, state: DetectionState, window: WindowMinimum) -> None:
        self.state = state
        self.events.append(
            DetectionEvent(
                state=state,
                window_index=len(self.windows) - 1,
                timestamp_ns=window.closed_at_ns,
                min_rtt_ns=window.min_rtt_ns,
                baseline_ns=self.baseline_ns or 0,
            )
        )

    def reset(self) -> None:
        """Re-arm after a confirmed episode (baseline re-learned)."""
        self.state = DetectionState.LEARNING
        self.baseline_ns = None
        self._learning.clear()

    # -- outcomes -----------------------------------------------------------------

    def first_event(self, state: DetectionState) -> Optional[DetectionEvent]:
        for event in self.events:
            if event.state is state:
                return event
        return None

    @property
    def suspected_at_ns(self) -> Optional[int]:
        event = self.first_event(DetectionState.SUSPECTED)
        return event.timestamp_ns if event else None

    @property
    def confirmed_at_ns(self) -> Optional[int]:
        event = self.first_event(DetectionState.CONFIRMED)
        return event.timestamp_ns if event else None


def packets_between(records, start_ns: int, end_ns: int) -> int:
    """Packets observed in [start_ns, end_ns] — the paper's headline
    "attack confirmed within 63 packets" is this count between the
    attack taking effect and confirmation."""
    return sum(1 for r in records if start_ns <= r.timestamp_ns <= end_ns)


def run_over_windows(
    windows: Sequence[WindowMinimum],
    config: Optional[DetectorConfig] = None,
) -> InterceptionDetector:
    """Run a fresh detector over already-closed windows, in close order.

    The fleet collector's entry point: it holds merged windows from many
    vantage points rather than raw samples, so the detector is driven
    through :meth:`InterceptionDetector.on_window` directly.  Windows
    are sorted by ``closed_at_ns`` here — merged histories interleave
    agents' streams, and detection state transitions only make sense in
    close-time order.
    """
    detector = InterceptionDetector(config)
    for window in sorted(windows, key=lambda w: w.closed_at_ns):
        detector.on_window(window)
    return detector
