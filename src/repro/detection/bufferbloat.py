"""Bufferbloat detection from continuous RTT samples (paper §7).

The paper observes campus connections to remote cellular hosts whose
RTTs swing by hundreds of milliseconds — the signature of bufferbloat:
the *minimum* RTT (propagation) stays put while the upper percentiles
inflate as queues fill.  Because Dart samples continuously, an on-path
monitor can detect these episodes in real time.

:class:`BufferbloatDetector` windows the sample stream per key and flags
an episode when the window's p90 exceeds ``inflation_factor`` times the
baseline minimum for ``sustain_windows`` consecutive windows.  (Contrast
with the interception detector: there the *minimum* itself shifts; here
the minimum holds and the spread explodes.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from ..core.samples import RttSample

SEC = 1_000_000_000


@dataclass
class BufferbloatConfig:
    window_ns: int = 1 * SEC
    inflation_factor: float = 4.0
    sustain_windows: int = 2
    min_samples_per_window: int = 5
    #: The distinguishing fingerprint: queueing creates *spread* within
    #: a window (the queue oscillates, so some samples still ride near
    #: the floor while the p90 inflates).  A clean path change or an
    #: interception shifts the whole distribution — p90 and window
    #: minimum move together — and is therefore NOT flagged as bloat.
    spread_factor: float = 2.0


@dataclass(frozen=True)
class BloatEpisode:
    """One detected bufferbloat episode."""

    key: Hashable
    started_at_ns: int
    confirmed_at_ns: int
    baseline_min_ns: int
    peak_p90_ns: int

    @property
    def inflation(self) -> float:
        return self.peak_p90_ns / max(self.baseline_min_ns, 1)


class _KeyState:
    __slots__ = ("window_start_ns", "rtts", "baseline_min_ns",
                 "elevated_windows", "elevated_since_ns", "peak_p90_ns",
                 "in_episode")

    def __init__(self, now_ns: int) -> None:
        self.window_start_ns = now_ns
        self.rtts: List[int] = []
        self.baseline_min_ns: Optional[int] = None
        self.elevated_windows = 0
        self.elevated_since_ns = 0
        self.peak_p90_ns = 0
        self.in_episode = False


class BufferbloatDetector:
    """Streaming per-key bufferbloat detection."""

    def __init__(self, config: Optional[BufferbloatConfig] = None,
                 *, key_fn=None) -> None:
        self.config = config or BufferbloatConfig()
        self._key_fn = key_fn or (lambda sample: sample.flow)
        self._state: Dict[Hashable, _KeyState] = {}
        self.episodes: List[BloatEpisode] = []

    def add(self, sample: RttSample) -> Optional[BloatEpisode]:
        """Feed one sample; returns an episode iff one was confirmed."""
        key = self._key_fn(sample)
        state = self._state.get(key)
        if state is None:
            state = _KeyState(sample.timestamp_ns)
            self._state[key] = state
        episode = None
        while (sample.timestamp_ns - state.window_start_ns
               >= self.config.window_ns):
            episode = self._close_window(key, state) or episode
            state.window_start_ns += self.config.window_ns
        state.rtts.append(sample.rtt_ns)
        return episode

    def _close_window(self, key: Hashable,
                      state: _KeyState) -> Optional[BloatEpisode]:
        rtts = state.rtts
        state.rtts = []
        if len(rtts) < self.config.min_samples_per_window:
            return None
        rtts.sort()
        window_min = rtts[0]
        p90 = rtts[min(len(rtts) - 1, int(0.9 * len(rtts)))]
        if state.baseline_min_ns is None:
            state.baseline_min_ns = window_min
        else:
            state.baseline_min_ns = min(state.baseline_min_ns, window_min)
        threshold = state.baseline_min_ns * self.config.inflation_factor
        spread = p90 >= window_min * self.config.spread_factor
        if p90 >= threshold and spread:
            if state.elevated_windows == 0:
                state.elevated_since_ns = state.window_start_ns
                state.peak_p90_ns = p90
            state.elevated_windows += 1
            state.peak_p90_ns = max(state.peak_p90_ns, p90)
            if (state.elevated_windows == self.config.sustain_windows
                    and not state.in_episode):
                state.in_episode = True
                episode = BloatEpisode(
                    key=key,
                    started_at_ns=state.elevated_since_ns,
                    confirmed_at_ns=(state.window_start_ns
                                     + self.config.window_ns),
                    baseline_min_ns=state.baseline_min_ns,
                    peak_p90_ns=state.peak_p90_ns,
                )
                self.episodes.append(episode)
                return episode
        else:
            state.elevated_windows = 0
            state.in_episode = False
        return None
