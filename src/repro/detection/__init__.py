"""Real-time network-event detection on Dart's sample stream."""

from .bufferbloat import (
    BloatEpisode,
    BufferbloatConfig,
    BufferbloatDetector,
)
from .change import (
    DetectionEvent,
    DetectionState,
    DetectorConfig,
    InterceptionDetector,
    packets_between,
    run_over_windows,
)

__all__ = [
    "BloatEpisode",
    "BufferbloatConfig",
    "BufferbloatDetector",
    "DetectionEvent",
    "DetectionState",
    "DetectorConfig",
    "InterceptionDetector",
    "packets_between",
    "run_over_windows",
]
