"""QUIC capture decoding: pcap/pcapng frames → :class:`QuicPacketRecord`.

An on-path observer of QUIC sees UDP datagrams whose first payload byte
is plaintext (RFC 9000 §17): bit 0x80 distinguishes long-header
(handshake) packets from short-header ones, and — on short headers —
bit 0x20 is the spin bit.  That single byte is all the spin-bit monitor
needs, so decoding stops there; everything past it stays opaque
ciphertext.

Scope mirrors the paper's §7 evaluation: IPv4 only (IPv6 datagrams are
skipped, like non-UDP traffic), and every UDP datagram is treated as
QUIC — a vantage-point filter (port 443, known servers) is the
caller's job, exactly as with tcpdump.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Union

from ..net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from ..net.ipv4 import PROTO_UDP, IPv4Packet
from ..net.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    PathLike,
    PcapFormatError,
    PcapReader,
    PcapWriter,
)
from ..net.pcapng import PcapngReader, sniff_format
from .packet import QuicPacketRecord

_UDP_HEADER = struct.Struct("!HHHH")

#: RFC 9000 §17 first-byte masks (the plaintext bits).
HEADER_FORM_BIT = 0x80  # 1 = long header (no spin bit)
FIXED_BIT = 0x40  # always 1 in QUIC v1
SPIN_BIT = 0x20  # short headers only


def quic_from_wire_bytes(
    data: bytes, timestamp_ns: int, *, linktype_ethernet: bool = True
) -> Optional[QuicPacketRecord]:
    """Decode one captured frame into a QUIC record.

    Returns ``None`` for anything that is not an IPv4 UDP datagram with
    at least one payload byte (the observer ignores it); raises
    :class:`ValueError` for frames that claim to be UDP but are
    malformed.
    """
    if linktype_ethernet:
        frame = EthernetFrame.decode(data)
        if frame.ethertype != ETHERTYPE_IPV4:
            return None
        ip_bytes = frame.payload
    else:
        if not data or (data[0] >> 4) != 4:
            return None
        ip_bytes = data
    ip4 = IPv4Packet.decode(ip_bytes)
    if ip4.proto != PROTO_UDP:
        return None
    datagram = ip4.payload
    if len(datagram) < _UDP_HEADER.size:
        raise ValueError(f"UDP datagram too short: {len(datagram)} bytes")
    src_port, dst_port, udp_len, _checksum = _UDP_HEADER.unpack_from(datagram)
    if udp_len < _UDP_HEADER.size or udp_len > len(datagram):
        raise ValueError(f"bad UDP length: {udp_len}")
    payload = datagram[_UDP_HEADER.size:udp_len]
    if not payload:
        return None  # no QUIC header byte to read
    first = payload[0]
    long_header = bool(first & HEADER_FORM_BIT)
    return QuicPacketRecord(
        timestamp_ns=timestamp_ns,
        src_ip=ip4.src,
        dst_ip=ip4.dst,
        src_port=src_port,
        dst_port=dst_port,
        spin_bit=False if long_header else bool(first & SPIN_BIT),
        long_header=long_header,
        payload_len=len(payload),
    )


def quic_to_wire_bytes(record: QuicPacketRecord) -> bytes:
    """Serialize a record to an Ethernet frame.

    The inverse of :func:`quic_from_wire_bytes` up to payload contents:
    the first byte carries the header form / fixed / spin bits and the
    rest is zero padding out to ``payload_len`` (a real packet's
    ciphertext is irrelevant to the observer).  The UDP checksum is
    zero — "not computed", legal over IPv4.
    """
    first = HEADER_FORM_BIT | FIXED_BIT if record.long_header else (
        FIXED_BIT | (SPIN_BIT if record.spin_bit else 0)
    )
    length = max(record.payload_len, 1)
    payload = bytes([first]) + b"\x00" * (length - 1)
    datagram = _UDP_HEADER.pack(
        record.src_port,
        record.dst_port,
        _UDP_HEADER.size + len(payload),
        0,
    ) + payload
    ip4 = IPv4Packet(
        src=record.src_ip,
        dst=record.dst_ip,
        proto=PROTO_UDP,
        payload=datagram,
    )
    return EthernetFrame(ethertype=ETHERTYPE_IPV4, payload=ip4.encode()).encode()


def read_quic_capture(path: PathLike) -> Iterator[QuicPacketRecord]:
    """Yield QUIC records from a pcap or pcapng file on disk.

    Non-UDP/non-IPv4 frames are skipped, so a mixed TCP+QUIC capture
    decodes to just its QUIC datagrams.
    """
    if sniff_format(path) == "pcapng":
        with open(path, "rb") as stream:
            for timestamp_ns, linktype, frame in PcapngReader(stream):
                if linktype == LINKTYPE_ETHERNET:
                    ethernet = True
                elif linktype == LINKTYPE_RAW:
                    ethernet = False
                else:
                    continue
                record = quic_from_wire_bytes(
                    frame, timestamp_ns, linktype_ethernet=ethernet
                )
                if record is not None:
                    yield record
        return
    with open(path, "rb") as stream:
        reader = PcapReader(stream)
        ethernet = reader.header.linktype == LINKTYPE_ETHERNET
        if not ethernet and reader.header.linktype != LINKTYPE_RAW:
            raise PcapFormatError(
                f"unsupported linktype {reader.header.linktype}"
            )
        for timestamp_ns, frame in reader:
            record = quic_from_wire_bytes(
                frame, timestamp_ns, linktype_ethernet=ethernet
            )
            if record is not None:
                yield record


def write_quic_capture(
    path_or_stream: Union[PathLike, object], records
) -> int:
    """Write records to a nanosecond pcap file; returns the frame count.

    Accepts a path or an open binary stream, mirroring how the TCP
    trace writers work; used by the spin-bit examples and the ingest
    round-trip tests.
    """
    if hasattr(path_or_stream, "write"):
        return _write_stream(path_or_stream, records)
    with open(path_or_stream, "wb") as stream:
        return _write_stream(stream, records)


def _write_stream(stream, records) -> int:
    writer = PcapWriter(stream, linktype=LINKTYPE_ETHERNET)
    count = 0
    for record in records:
        writer.write(record.timestamp_ns, quic_to_wire_bytes(record))
        count += 1
    return count
