"""QUIC spin-bit RTT monitoring (the paper's §7 extension).

QUIC hides the sequence/ACK state Dart matches on; the spin bit is the
only passive RTT signal.  This package provides the observer
(:class:`SpinBitMonitor`), the packet model, and a spin-semantics
traffic simulator for evaluating it against Dart's TCP sample rates.
"""

from .monitor import SpinBitMonitor, SpinBitStats
from .packet import QuicPacketRecord
from .sim import QuicScenarioConfig, QuicTrace, generate_quic_trace
from .wire import (
    quic_from_wire_bytes,
    quic_to_wire_bytes,
    read_quic_capture,
    write_quic_capture,
)

__all__ = [
    "QuicPacketRecord",
    "QuicScenarioConfig",
    "QuicTrace",
    "SpinBitMonitor",
    "SpinBitStats",
    "generate_quic_trace",
    "quic_from_wire_bytes",
    "quic_to_wire_bytes",
    "read_quic_capture",
    "write_quic_capture",
]
