"""A minimal QUIC packet model for spin-bit RTT measurement (paper §7).

QUIC encrypts sequence/acknowledgment state, so Dart's SEQ/ACK matching
cannot apply; the only passive RTT signal QUIC exposes is the *spin
bit* (RFC 9000 §17.4): the client flips the bit once per round trip and
the server reflects it, so an on-path observer sees a square wave whose
period is the RTT.

Only the fields an on-path observer can actually read are modelled: the
5-tuple-ish addressing, the (plaintext) spin bit, and whether the
packet is a long-header (handshake) packet — long-header packets carry
no spin bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.flow import FlowKey


@dataclass(frozen=True, slots=True)
class QuicPacketRecord:
    """One observed QUIC datagram."""

    timestamp_ns: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    spin_bit: bool
    long_header: bool = False
    payload_len: int = 0

    @property
    def flow(self) -> FlowKey:
        return FlowKey(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
        )
