"""Passive spin-bit RTT monitoring (paper §7, "Extending Dart to QUIC").

The observer watches one direction of a connection (client-to-server is
the canonical choice: the client drives the spin) and emits an RTT
sample at every spin-bit *transition* — the elapsed time since the
previous transition is one round trip.

The paper's caveats, all reproduced by this implementation and
measurable in the benchmarks:

* at most one valid sample per RTT (vs Dart's per-packet samples);
* the first transition after observation starts carries no sample
  (no previous edge to measure from);
* loss or reordering of the edge-carrying packet corrupts a sample and
  there is no retransmission/reordering signal to detect it with, so a
  sanity filter (``max_plausible_rtt_ns``) is the only defence;
* long-header (handshake) packets carry no spin bit and are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..core.flow import FlowKey
from ..core.samples import RttSample
from ..core.stats import AdditiveCounters
from .packet import QuicPacketRecord


@dataclass(slots=True)
class SpinBitStats(AdditiveCounters):
    packets_processed: int = 0
    long_header_skipped: int = 0
    wrong_direction_skipped: int = 0
    transitions: int = 0
    samples: int = 0
    implausible_discarded: int = 0


@dataclass(slots=True)
class _SpinState:
    last_spin: bool
    last_edge_ns: Optional[int] = None


class SpinBitMonitor:
    """One-direction spin-bit observer.

    ``is_client`` orients the observer: only packets whose source is the
    client side are inspected (the client's edge-to-edge period is the
    full RTT).  ``max_plausible_rtt_ns`` drops absurd samples caused by
    application silence (spin edges only advance while traffic flows).
    """

    def __init__(
        self,
        *,
        is_client,
        max_plausible_rtt_ns: Optional[int] = 10_000_000_000,
    ) -> None:
        self._is_client = is_client
        self._max_plausible = max_plausible_rtt_ns
        self._flows: Dict[FlowKey, _SpinState] = {}
        self.samples: List[RttSample] = []
        self.stats = SpinBitStats()

    def drain_samples(self) -> List[RttSample]:
        """Hand over (and forget) the retained samples.

        Cumulative counters in :attr:`stats` are unaffected; only the
        retained list is emptied (the streaming rotation primitive).
        """
        drained = self.samples
        self.samples = []
        return drained

    def process(self, record: QuicPacketRecord) -> List[RttSample]:
        self.stats.packets_processed += 1
        if record.long_header:
            self.stats.long_header_skipped += 1
            return []
        if not self._is_client(record.src_ip):
            self.stats.wrong_direction_skipped += 1
            return []
        flow = record.flow
        state = self._flows.get(flow)
        if state is None:
            self._flows[flow] = _SpinState(last_spin=record.spin_bit)
            return []
        if record.spin_bit == state.last_spin:
            return []
        # A spin edge: one full round trip since the previous edge.
        self.stats.transitions += 1
        state.last_spin = record.spin_bit
        previous = state.last_edge_ns
        state.last_edge_ns = record.timestamp_ns
        if previous is None:
            return []
        rtt = record.timestamp_ns - previous
        if self._max_plausible is not None and rtt > self._max_plausible:
            self.stats.implausible_discarded += 1
            return []
        sample = RttSample(
            flow=flow,
            rtt_ns=rtt,
            timestamp_ns=record.timestamp_ns,
            eack=0,
        )
        self.samples.append(sample)
        self.stats.samples += 1
        return [sample]

    def process_batch(
        self, records: Iterable[Optional[QuicPacketRecord]]
    ) -> List[RttSample]:
        """Process a batch of datagrams; ``None`` entries are skipped.

        Part of the :class:`repro.engine.RttMonitor` surface — identical
        to calling :meth:`process` per record, so callers drive QUIC and
        TCP monitors through one loop.
        """
        process = self.process
        out: List[RttSample] = []
        for record in records:
            if record is not None:
                out.extend(process(record))
        return out

    def process_trace(self, records) -> "SpinBitMonitor":
        for record in records:
            self.process(record)
        return self

    def finalize(self, at_ns: Optional[int] = None) -> None:
        """End-of-trace hook (spin state needs no flushing).

        Exists so callers never special-case the QUIC monitor: its
        surface matches the TCP monitors' (`stats`, `samples`,
        ``process_batch``, ``finalize``).
        """
