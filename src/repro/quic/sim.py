"""QUIC spin-bit traffic simulation.

Implements the RFC 9000 spin semantics over the same event-driven
substrate as the TCP simulator:

* the **client**, when sending, sets the spin bit to the *opposite* of
  the last spin value it received from the server;
* the **server**, when sending, *reflects* the last spin value it
  received from the client.

Both endpoints send application datagrams at a configurable rate
(QUIC's spin only advances while traffic flows), through delay/loss
links, past a monitor tap that records
:class:`~repro.quic.packet.QuicPacketRecord` observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..net.inet import ipv4_to_int
from ..simnet.engine import EventLoop
from ..simnet.rng import SimRandom
from .packet import QuicPacketRecord

MS = 1_000_000
SEC = 1_000_000_000

DelaySpec = Union[int, Callable[[int], int]]


@dataclass
class QuicScenarioConfig:
    """One spin-bit measurement scenario."""

    client_ip: int = ipv4_to_int("10.1.9.9")
    server_ip: int = ipv4_to_int("151.101.1.57")
    client_port: int = 50_443
    server_port: int = 443
    #: One-way path delay (int ns, or a callable of virtual time for
    #: time-varying paths).
    one_way_delay_ns: DelaySpec = 12 * MS
    jitter_fraction: float = 0.03
    loss_rate: float = 0.0
    send_interval_ns: int = 4 * MS
    duration_ns: int = 20 * SEC
    handshake_packets: int = 2
    seed: int = 1


@dataclass
class QuicTrace:
    """Observed packets plus scenario ground truth."""

    records: List[QuicPacketRecord]
    config: QuicScenarioConfig

    @property
    def packets(self) -> int:
        return len(self.records)


class _SpinEndpoint:
    """One side of the spin-bit exchange."""

    def __init__(self, *, is_client: bool) -> None:
        self.is_client = is_client
        self.received_spin = False
        self.seen_any = False

    def next_spin(self) -> bool:
        if self.is_client:
            # Flip relative to the server's last reflected value.
            return (not self.received_spin) if self.seen_any else True
        return self.received_spin

    def on_receive(self, spin: bool) -> None:
        self.received_spin = spin
        self.seen_any = True


def generate_quic_trace(config: Optional[QuicScenarioConfig] = None) -> QuicTrace:
    """Simulate one spin-bit session; deterministic per config."""
    config = config or QuicScenarioConfig()
    loop = EventLoop()
    rng = SimRandom(config.seed)
    records: List[QuicPacketRecord] = []

    client = _SpinEndpoint(is_client=True)
    server = _SpinEndpoint(is_client=False)

    def one_way(now_ns: int) -> int:
        base = config.one_way_delay_ns
        delay = base(now_ns) if callable(base) else base
        return rng.jittered_ns(delay, config.jitter_fraction)

    def observe(sender_is_client: bool, spin: bool,
                long_header: bool) -> None:
        src, dst = (
            (config.client_ip, config.server_ip)
            if sender_is_client
            else (config.server_ip, config.client_ip)
        )
        sport, dport = (
            (config.client_port, config.server_port)
            if sender_is_client
            else (config.server_port, config.client_port)
        )
        records.append(QuicPacketRecord(
            timestamp_ns=loop.now_ns, src_ip=src, dst_ip=dst,
            src_port=sport, dst_port=dport, spin_bit=spin,
            long_header=long_header, payload_len=1200,
        ))

    def send(sender: _SpinEndpoint, receiver: _SpinEndpoint,
             long_header: bool = False) -> None:
        spin = sender.next_spin() if not long_header else False
        # The monitor sits one internal hop from the client; for spin
        # measurement only the observation order matters, so the tap
        # records at send time and the path delay applies downstream.
        observe(sender.is_client, spin, long_header)
        if rng.chance(config.loss_rate):
            return
        loop.schedule(one_way(loop.now_ns), receiver.on_receive, spin)

    def client_tick() -> None:
        if loop.now_ns >= config.duration_ns:
            return
        send(client, server)
        loop.schedule(config.send_interval_ns, client_tick)

    def server_tick() -> None:
        if loop.now_ns >= config.duration_ns:
            return
        send(server, client)
        loop.schedule(config.send_interval_ns, server_tick)

    # Handshake: long-header packets with no spin bit.
    for i in range(config.handshake_packets):
        loop.schedule_at(i * MS, send, client, server, True)
        loop.schedule_at(i * MS + 1, send, server, client, True)
    loop.schedule_at(config.handshake_packets * MS, client_tick)
    loop.schedule_at(config.handshake_packets * MS + config.send_interval_ns // 2,
                     server_tick)
    loop.run()

    return QuicTrace(records=records, config=config)
