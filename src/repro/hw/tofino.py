"""Capacity models of the Tofino 1 and Tofino 2 pipelines.

Capacities are per-pipeline totals in the units the resource estimator
uses.  They follow the publicly documented shapes of the two chips
(12 vs 20 MAU stages, SRAM/TCAM blocks per stage, hash distribution
units, logical table IDs, match-input crossbar bytes); absolute values
are calibrated so that the estimator's output for the paper's deployed
configuration reproduces Table 1 (see DESIGN.md §2 on substitutions —
this is a model of a compiler report, not a compiler).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TofinoModel:
    """One target's per-pipeline resource capacities."""

    name: str
    stages: int
    #: SRAM: blocks of 128 rows x 128 bits.
    sram_blocks: int
    #: TCAM: blocks of 512 rows x 44 bits.
    tcam_blocks: int
    #: Hash distribution / exact-match hash units.
    hash_units: int
    #: Logical table IDs across all stages.
    logical_tables: int
    #: Match-input crossbar bytes across all stages.
    crossbar_bytes: int

    @property
    def sram_bits(self) -> int:
        return self.sram_blocks * 128 * 128

    @property
    def tcam_bits(self) -> int:
        return self.tcam_blocks * 512 * 44


#: Tofino 1: 12 MAU stages per pipeline, 80 SRAM + 24 TCAM blocks per
#: stage, 16 logical tables and 8 hash units per stage, 128 crossbar
#: bytes per stage.
TOFINO1 = TofinoModel(
    name="Tofino 1",
    stages=12,
    sram_blocks=12 * 80,
    tcam_blocks=12 * 24,
    hash_units=12 * 8,
    logical_tables=12 * 16,
    crossbar_bytes=12 * 128,
)

#: Tofino 2: 20 MAU stages per pipeline with denser, more flexibly
#: banked memories (the SRAM figure is calibrated; see module docstring).
TOFINO2 = TofinoModel(
    name="Tofino 2",
    stages=20,
    sram_blocks=20 * 512,
    tcam_blocks=20 * 24,
    hash_units=20 * 8,
    logical_tables=20 * 16,
    crossbar_bytes=20 * 128,
)

TARGETS = {"tofino1": TOFINO1, "tofino2": TOFINO2}
