"""Tofino resource model (Table 1)."""

from .estimate import (
    HIST_COUNTER_BITS,
    HW_HIST_KEYS,
    PAPER_TABLE1,
    Component,
    ResourceUsage,
    dart_components,
    estimate_histogram,
    estimate_resources,
    histogram_component,
)
from .tofino import TARGETS, TOFINO1, TOFINO2, TofinoModel

__all__ = [
    "Component",
    "HIST_COUNTER_BITS",
    "HW_HIST_KEYS",
    "PAPER_TABLE1",
    "ResourceUsage",
    "TARGETS",
    "TOFINO1",
    "TOFINO2",
    "TofinoModel",
    "dart_components",
    "estimate_histogram",
    "estimate_resources",
    "histogram_component",
]
