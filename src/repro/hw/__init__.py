"""Tofino resource model (Table 1)."""

from .estimate import (
    PAPER_TABLE1,
    Component,
    ResourceUsage,
    dart_components,
    estimate_resources,
)
from .tofino import TARGETS, TOFINO1, TOFINO2, TofinoModel

__all__ = [
    "Component",
    "PAPER_TABLE1",
    "ResourceUsage",
    "TARGETS",
    "TOFINO1",
    "TOFINO2",
    "TofinoModel",
    "dart_components",
    "estimate_resources",
]
