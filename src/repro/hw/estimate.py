"""Structural resource estimation for the Dart P4 program (Table 1).

The paper reports compiler resource usage for two prototypes:

* **Tofino 1** — spans ingress *and* egress (the campus-testbed build):
  the RT/PT live in ingress; egress carries the recirculation custom
  header, a mirrored range-check, and report generation.  Splitting the
  program doubles bookkeeping tables, which is why its logical-table and
  SRAM shares are the higher of the two.
* **Tofino 2** — ingress-only: more hash-heavy (every table stage gets
  its own hash unit on the wider T2 hash path) but dramatically lighter
  on SRAM relative to the T2 pipeline's larger memories.

We reproduce Table 1 as a *model*: each prototype is described as a list
of structural components (register tables, the payload lookup table, the
target-flow TCAM, bridging/recirculation machinery), each with its SRAM/
TCAM/hash/logical-table/crossbar cost derived from the paper's §4
description; capacities come from :mod:`repro.hw.tofino`.  The model is
calibrated (component sizes the paper does not state are chosen so the
deployed configuration lands on Table 1) — EXPERIMENTS.md records
model-vs-paper numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.config import DartConfig
from .tofino import TARGETS, TofinoModel

#: Bits per Range Tracker record: 32b signature + 32b left + 32b right.
RT_RECORD_BITS = 96
#: Bits per Packet Tracker record: 32b signature + 32b eACK + 32b
#: timestamp (+ valid bit folded into the signature word).
PT_RECORD_BITS = 96

#: The hardware prototypes' deployed table sizes (per-stage register
#: arrays are capacity-limited, so the on-switch tables are smaller than
#: the simulator's 2**17 operating point).
HW_RT_SLOTS = 1 << 13
HW_PT_SLOTS = 1 << 13

#: Histogram stage (repro.core.hist): bits per bin counter register.
#: 32-bit saturating counters survive line rate between collector
#: harvests; the collector's per-emission copy resets nothing, so the
#: counters are cumulative like the rest of the data-plane state.
HIST_COUNTER_BITS = 32
#: Per-key running-sum register (ns sums need the wide pair).
HIST_SUM_BITS = 64
#: Tracked keys in the deployed per-prefix configuration (/24s behind
#: a campus border see ~1k active prefixes; the table is hash-indexed
#: like the RT/PT, so overflow degrades to the aggregate histogram).
HW_HIST_KEYS = 1 << 10


@dataclass(frozen=True)
class Component:
    """One structural piece of the P4 program."""

    name: str
    sram_bits: int = 0
    tcam_bits: int = 0
    hash_units: int = 0
    logical_tables: int = 0
    crossbar_bytes: int = 0


@dataclass(frozen=True)
class ResourceUsage:
    """Aggregate usage against one target's capacity."""

    resource: str
    used: float
    capacity: float

    @property
    def percent(self) -> float:
        return 100.0 * self.used / self.capacity


def _register_table(
    name: str, slots: int, record_bits: int, component_tables: int
) -> Component:
    """A register structure spread across N sequential component tables
    (paper §4: RT and PT each span 3 stages because memory cannot be
    revisited within a pass)."""
    return Component(
        name=name,
        sram_bits=slots * record_bits,
        hash_units=component_tables,
        logical_tables=component_tables,
        crossbar_bytes=component_tables * 8,
    )


def _payload_lookup_table() -> Component:
    """The §4 payload-size optimization: the full cross product of IP
    total lengths (40..1480) and TCP data offsets (5..15), held in TCAM.
    """
    entries = 1441 * 11
    key_bits = 16 + 4  # total length + data offset
    return Component(
        name="payload-size lookup",
        tcam_bits=entries * key_bits,
        logical_tables=1,
        crossbar_bytes=4,
    )


def _target_flow_table(entries: int = 128) -> Component:
    """Operator flow-selection rules (§4): prefix + port-range TCAM."""
    key_bits = 32 + 32 + 16 + 16
    return Component(
        name="target-flow rules",
        tcam_bits=entries * key_bits,
        logical_tables=1,
        hash_units=0,
        crossbar_bytes=12,
    )


def _classification(
    logical_tables: int, crossbar_bytes: int, hash_units: int = 0
) -> Component:
    return Component(
        name="parse/classify/flags",
        logical_tables=logical_tables,
        crossbar_bytes=crossbar_bytes,
        hash_units=hash_units,
        sram_bits=logical_tables * 4 * 1024,  # action/indirection memory
    )


def histogram_component(
    bins: int,
    *,
    keys: int = HW_HIST_KEYS,
    counter_bits: int = HIST_COUNTER_BITS,
) -> Component:
    """The fixed-bin RTT histogram stage (repro.core.hist) as hardware.

    Structure mirrors the software stage exactly: a range-match table
    maps the computed RTT to a bin index (one TCAM-free logical table —
    log-spaced edges compile to a ternary range ladder held in SRAM
    action memory), then one register array of ``bins`` counters per
    tracked key plus the aggregate row, and a sum/count register pair
    per key for the ``_sum``/``_count`` series.  Cost is dominated by
    ``bins x keys x counter_bits`` of SRAM; one hash unit indexes the
    key row (same hash path the RT already computes, but budgeted
    separately so the what-if stays conservative).
    """
    if bins < 1:
        raise ValueError("bins must be positive")
    if keys < 0:
        raise ValueError("keys must be non-negative")
    rows = keys + 1  # per-key rows + the key="" aggregate row
    bin_bits = bins * rows * counter_bits
    sum_count_bits = rows * (HIST_SUM_BITS + counter_bits)
    return Component(
        name=f"rtt histogram ({bins} bins x {keys} keys)",
        sram_bits=bin_bits + sum_count_bits,
        # bin-index range ladder + counter update + sum/count update.
        logical_tables=3,
        hash_units=1,
        crossbar_bytes=8,
    )


def estimate_histogram(
    target: str,
    *,
    bins: int,
    keys: int = HW_HIST_KEYS,
    counter_bits: int = HIST_COUNTER_BITS,
) -> Dict[str, ResourceUsage]:
    """Incremental cost of the histogram stage against one target.

    The DESIGN §16 cost table is generated from this: usage is the
    stage alone (not Dart plus the stage), answering "what does turning
    the histogram on add?".
    """
    model: TofinoModel = TARGETS[target]
    component = histogram_component(
        bins, keys=keys, counter_bits=counter_bits
    )
    totals = {
        "TCAM": (component.tcam_bits, model.tcam_bits),
        "SRAM": (component.sram_bits, model.sram_bits),
        "Hash Units": (component.hash_units, model.hash_units),
        "Logical Tables": (component.logical_tables, model.logical_tables),
        "Input Crossbars": (component.crossbar_bytes, model.crossbar_bytes),
    }
    return {
        name: ResourceUsage(resource=name, used=used, capacity=capacity)
        for name, (used, capacity) in totals.items()
    }


def dart_components(
    target: str,
    *,
    rt_slots: int = HW_RT_SLOTS,
    pt_slots: int = HW_PT_SLOTS,
) -> List[Component]:
    """The structural component list for one prototype variant."""
    if target == "tofino1":
        return [
            _classification(logical_tables=14, crossbar_bytes=48,
                            hash_units=2),
            _register_table("range tracker (ingress)", rt_slots,
                            RT_RECORD_BITS, 3),
            _register_table("packet tracker (ingress)", pt_slots,
                            PT_RECORD_BITS, 3),
            # Ingress/egress split: bridge header handling, a mirrored
            # half-size range check for dual-leg processing, and report
            # generation in egress.
            Component(
                name="egress bridge + recirc header",
                sram_bits=rt_slots * RT_RECORD_BITS // 2,
                logical_tables=48,
                hash_units=5,
                crossbar_bytes=76,
            ),
            Component(
                name="analytics (min-filter registers)",
                sram_bits=(1 << 11) * 64,
                logical_tables=12,
                hash_units=3,
                crossbar_bytes=20,
            ),
            _payload_lookup_table(),
            _target_flow_table(),
            Component(name="counters/telemetry",
                      sram_bits=64 * 1024, logical_tables=10,
                      crossbar_bytes=28),
        ]
    if target == "tofino2":
        return [
            _classification(logical_tables=24, crossbar_bytes=64,
                            hash_units=0),
            # Ingress-only: every component table gets its own pair of
            # hash units on the wider T2 hash path, and the deeper
            # pipeline splits actions over more logical tables.
            Component(
                name="range tracker (3 stages, dual hash)",
                sram_bits=rt_slots * RT_RECORD_BITS,
                hash_units=18,
                logical_tables=18,
                crossbar_bytes=32,
            ),
            Component(
                name="packet tracker (3 stages, dual hash)",
                sram_bits=pt_slots * PT_RECORD_BITS,
                hash_units=24,
                logical_tables=18,
                crossbar_bytes=32,
            ),
            Component(
                name="recirculation control",
                sram_bits=256 * 1024,
                logical_tables=18,
                hash_units=9,
                crossbar_bytes=40,
            ),
            Component(
                name="analytics (min-filter registers)",
                sram_bits=(1 << 12) * 64,
                logical_tables=16,
                hash_units=6,
                crossbar_bytes=32,
            ),
            _payload_lookup_table(),
            _target_flow_table(),
            Component(name="counters/telemetry",
                      sram_bits=256 * 1024, logical_tables=22,
                      crossbar_bytes=42),
        ]
    raise ValueError(f"unknown target {target!r} (tofino1/tofino2)")


def estimate_resources(
    target: str,
    *,
    config: Optional[DartConfig] = None,
    rt_slots: Optional[int] = None,
    pt_slots: Optional[int] = None,
) -> Dict[str, ResourceUsage]:
    """Resource usage of the Dart program on one target.

    Table sizes default to the hardware prototype's; pass a
    :class:`DartConfig` (or explicit slot counts) to cost alternative
    deployments — the what-if analysis an operator would run before
    resizing the tables.
    """
    model: TofinoModel = TARGETS[target]
    if config is not None:
        rt_slots = rt_slots or config.rt_slots or HW_RT_SLOTS
        pt_slots = pt_slots or config.pt_slots or HW_PT_SLOTS
    components = dart_components(
        target,
        rt_slots=rt_slots or HW_RT_SLOTS,
        pt_slots=pt_slots or HW_PT_SLOTS,
    )
    totals = {
        "TCAM": (sum(c.tcam_bits for c in components), model.tcam_bits),
        "SRAM": (sum(c.sram_bits for c in components), model.sram_bits),
        "Hash Units": (
            sum(c.hash_units for c in components), model.hash_units
        ),
        "Logical Tables": (
            sum(c.logical_tables for c in components), model.logical_tables
        ),
        "Input Crossbars": (
            sum(c.crossbar_bytes for c in components), model.crossbar_bytes
        ),
    }
    return {
        name: ResourceUsage(resource=name, used=used, capacity=capacity)
        for name, (used, capacity) in totals.items()
    }


#: The numbers the paper reports (Table 1), for bench comparison.
PAPER_TABLE1 = {
    "tofino1": {
        "TCAM": 4.9,
        "SRAM": 13.9,
        "Hash Units": 16.7,
        "Logical Tables": 47.9,
        "Input Crossbars": 15.4,
    },
    "tofino2": {
        "TCAM": 2.9,
        "SRAM": 1.4,
        "Hash Units": 35.8,
        "Logical Tables": 36.9,
        "Input Crossbars": 10.1,
    },
}
