"""Exporter formats: Prometheus text exposition and JSON lines."""

import json

from repro.obs import (
    TELEMETRY_SCHEMA,
    MetricsRegistry,
    parse_prometheus,
    to_json,
    to_prometheus,
)


def populated_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    c = r.counter("dart_test_packets_total", "Packets seen",
                  ("monitor", "shard"))
    c.set_cumulative(("dart", "0"), 100)
    c.set_cumulative(("dart", "1"), 50)
    g = r.gauge("dart_test_occupancy", "Occupied slots", ("monitor",))
    g.set(("dart",), 7)
    h = r.histogram("dart_test_seconds", "Chunk wall time", ("monitor",),
                    buckets=(0.1, 1.0))
    h.observe(0.05, ("dart",))
    h.observe(0.5, ("dart",))
    h.observe(2.0, ("dart",))
    return r


class TestPrometheusText:
    def test_help_type_and_samples(self):
        text = to_prometheus(populated_registry().snapshot())
        assert "# HELP dart_test_packets_total Packets seen" in text
        assert "# TYPE dart_test_packets_total counter" in text
        assert 'dart_test_packets_total{monitor="dart",shard="0"} 100' in text
        assert "# TYPE dart_test_occupancy gauge" in text
        assert text.endswith("\n")

    def test_histogram_expansion_is_cumulative(self):
        text = to_prometheus(populated_registry().snapshot())
        assert 'dart_test_seconds_bucket{monitor="dart",le="0.1"} 1' in text
        assert 'dart_test_seconds_bucket{monitor="dart",le="1"} 2' in text
        assert 'dart_test_seconds_bucket{monitor="dart",le="+Inf"} 3' in text
        assert 'dart_test_seconds_sum{monitor="dart"} 2.55' in text
        assert 'dart_test_seconds_count{monitor="dart"} 3' in text

    def test_metric_names_sorted(self):
        text = to_prometheus(populated_registry().snapshot())
        positions = [text.index(name) for name in (
            "# TYPE dart_test_occupancy",
            "# TYPE dart_test_packets_total",
            "# TYPE dart_test_seconds",
        )]
        assert positions == sorted(positions)

    def test_label_value_escaping(self):
        r = MetricsRegistry()
        r.counter("t_total", label_names=("path",)).inc(
            ('with "quotes"\nand\\slash',)
        )
        text = to_prometheus(r.snapshot())
        assert r'with \"quotes\"\nand\\slash' in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == ""


class TestPrometheusRoundTrip:
    def test_values_survive(self):
        original = populated_registry().snapshot()
        back = parse_prometheus(to_prometheus(original))
        assert back.value("dart_test_packets_total", ("dart", "0")) == 100
        assert back.value("dart_test_packets_total", ("dart", "1")) == 50
        assert back.value("dart_test_occupancy", ("dart",)) == 7

    def test_histogram_decumulates(self):
        original = populated_registry().snapshot()
        back = parse_prometheus(to_prometheus(original))
        metric = back.get("dart_test_seconds")
        assert metric.kind == "histogram"
        assert metric.buckets == (0.1, 1.0)
        assert metric.bucket_counts[("dart",)] == (1, 1, 1)
        assert metric.sums[("dart",)] == 2.55
        assert metric.counts[("dart",)] == 3

    def test_help_and_escaped_labels_survive(self):
        original = populated_registry().snapshot()
        back = parse_prometheus(to_prometheus(original))
        assert back.get("dart_test_packets_total").help == "Packets seen"
        r = MetricsRegistry()
        nasty = 'with "quotes"\nand\\slash'
        r.counter("t_total", label_names=("path",)).inc((nasty,), 3)
        back = parse_prometheus(to_prometheus(r.snapshot()))
        assert back.value("t_total", (nasty,)) == 3


class TestJson:
    def test_schema_and_shape_stable(self):
        snapshot = populated_registry().snapshot(sequence=4)
        payload = json.loads(to_json(snapshot, timestamp_unix_ns=12345))
        assert payload["schema"] == TELEMETRY_SCHEMA
        assert payload["sequence"] == 4
        assert payload["timestamp_unix_ns"] == 12345
        by_name = {m["name"]: m for m in payload["metrics"]}
        counter = by_name["dart_test_packets_total"]
        assert counter["kind"] == "counter"
        assert counter["labels"] == ["monitor", "shard"]
        assert {"labels": ["dart", "0"], "value": 100} in counter["series"]

    def test_histogram_series_carry_bounds(self):
        payload = json.loads(to_json(populated_registry().snapshot()))
        hist = [m for m in payload["metrics"]
                if m["name"] == "dart_test_seconds"][0]
        assert hist["buckets"] == [0.1, 1.0]
        series = hist["series"][0]
        assert series["bucket_counts"] == [1, 1, 1]
        assert series["sum"] == 2.55
        assert series["count"] == 3

    def test_one_line_per_emission(self):
        text = to_json(populated_registry().snapshot())
        assert "\n" not in text
        assert json.loads(text)  # valid JSON

    def test_timestamp_optional(self):
        payload = json.loads(to_json(populated_registry().snapshot()))
        assert "timestamp_unix_ns" not in payload
