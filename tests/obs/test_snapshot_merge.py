"""Snapshot merge algebra: associative, commutative, absorb-equivalent.

Merging follows the repo's AdditiveCounters convention (everything adds
per labelset), which the cluster depends on: shard snapshots may arrive
in any order and any grouping, and the cluster-wide view must not
change.  The hypothesis tests pin exactly that, over integer-valued
operations so float addition cannot blur equality.
"""

import pytest
from hypothesis import given, strategies as st

from repro.obs import MetricsRegistry, merge_snapshots

LABELS = ("x", "y", "z")

#: One telemetry "event": which metric kind it touches, which labelset,
#: and the integer amount/observation.
op_strategy = st.tuples(
    st.sampled_from(["counter", "gauge", "histogram"]),
    st.sampled_from(LABELS),
    st.integers(min_value=0, max_value=8),
)
ops_strategy = st.lists(op_strategy, max_size=24)


def build_snapshot(ops, sequence=0):
    """Replay ops against a fresh registry; every run has equal shapes."""
    registry = MetricsRegistry()
    counter = registry.counter("t_events_total", "events", ("k",))
    gauge = registry.gauge("t_depth", "depth", ("k",))
    histogram = registry.histogram("t_cost", "cost", ("k",),
                                   buckets=(1.0, 3.0, 6.0))
    for kind, label, amount in ops:
        if kind == "counter":
            counter.inc((label,), amount)
        elif kind == "gauge":
            gauge.inc((label,), amount)
        else:
            histogram.observe(amount, (label,))
    return registry.snapshot(sequence=sequence)


class TestMergeAlgebra:
    @given(a=ops_strategy, b=ops_strategy)
    def test_commutative(self, a, b):
        ab = merge_snapshots([build_snapshot(a), build_snapshot(b)])
        ba = merge_snapshots([build_snapshot(b), build_snapshot(a)])
        assert ab == ba

    @given(a=ops_strategy, b=ops_strategy, c=ops_strategy)
    def test_associative(self, a, b, c):
        left = merge_snapshots([
            merge_snapshots([build_snapshot(a), build_snapshot(b)]),
            build_snapshot(c),
        ])
        right = merge_snapshots([
            build_snapshot(a),
            merge_snapshots([build_snapshot(b), build_snapshot(c)]),
        ])
        assert left == right

    @given(a=ops_strategy, b=ops_strategy)
    def test_merge_equals_concatenated_history(self, a, b):
        # Merging two shards' snapshots == one shard seeing both streams.
        merged = merge_snapshots([build_snapshot(a), build_snapshot(b)])
        combined = build_snapshot(list(a) + list(b))
        assert merged == combined

    @given(ops=ops_strategy)
    def test_identity(self, ops):
        snapshot = build_snapshot(ops)
        assert merge_snapshots([snapshot]) == build_snapshot(ops)

    @given(a=ops_strategy, b=ops_strategy)
    def test_absorb_matches_merge(self, a, b):
        # Coordinator path: absorbing worker snapshots into a live
        # registry must equal merging the snapshots directly.
        registry = MetricsRegistry()
        registry.absorb(build_snapshot(a))
        registry.absorb(build_snapshot(b))
        assert registry.snapshot() == merge_snapshots(
            [build_snapshot(a), build_snapshot(b)]
        )


class TestMergeValidation:
    def test_sequence_takes_max(self):
        merged = merge_snapshots([
            build_snapshot([], sequence=3),
            build_snapshot([], sequence=7),
        ])
        assert merged.sequence == 7

    def test_kind_mismatch_rejected(self):
        a = build_snapshot([])
        b = build_snapshot([])
        b.metrics["t_depth"].kind = "counter"
        with pytest.raises(ValueError, match="incompatible shapes"):
            a.merge(b)

    def test_bucket_mismatch_rejected(self):
        a = build_snapshot([("histogram", "x", 1)])
        b = build_snapshot([("histogram", "x", 1)])
        b.metrics["t_cost"].buckets = (9.0,)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b)

    def test_name_mismatch_rejected(self):
        a = build_snapshot([])
        with pytest.raises(ValueError, match="cannot merge"):
            a.metrics["t_depth"].merge(a.metrics["t_events_total"])
