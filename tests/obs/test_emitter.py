"""TelemetryEmitter: interval clocking, output modes, CLI glue."""

import argparse
import io
import json

import pytest

from repro.obs import (
    TelemetryEmitter,
    add_telemetry_arguments,
    emitter_from_args,
    parse_prometheus,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestInterval:
    def test_not_due_before_interval(self):
        clock = FakeClock()
        buf = io.StringIO()
        emitter = TelemetryEmitter("json", interval_s=1.0, stream=buf,
                                   clock=clock)
        assert not emitter.due()
        assert emitter.maybe_emit() is None
        assert buf.getvalue() == ""

    def test_emits_when_interval_elapses(self):
        clock = FakeClock()
        buf = io.StringIO()
        emitter = TelemetryEmitter("json", interval_s=1.0, stream=buf,
                                   clock=clock)
        clock.now = 1.0
        assert emitter.maybe_emit() is not None
        assert emitter.emissions == 1
        # Interval re-arms from the emission time.
        assert not emitter.due()
        clock.now = 1.5
        assert emitter.maybe_emit() is None
        clock.now = 2.0
        assert emitter.maybe_emit() is not None
        assert emitter.emissions == 2

    def test_collectors_run_per_emission(self):
        clock = FakeClock()
        emitter = TelemetryEmitter("json", interval_s=1.0,
                                   stream=io.StringIO(), clock=clock)
        calls = []
        emitter.add_collector(lambda registry: calls.append(registry))
        clock.now = 1.0
        emitter.maybe_emit()
        assert calls == [emitter.registry]

    def test_close_always_emits_final_state(self):
        clock = FakeClock()
        buf = io.StringIO()
        emitter = TelemetryEmitter("json", interval_s=100.0, stream=buf,
                                   clock=clock)
        emitter.registry.counter("t_total").inc(())
        emitter.close()
        emitter.close()  # idempotent
        lines = buf.getvalue().splitlines()
        assert len(lines) == 1
        assert emitter.emissions == 1

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError, match="must be positive"):
            TelemetryEmitter("json", interval_s=0.0)
        with pytest.raises(ValueError, match="'json' or 'prom'"):
            TelemetryEmitter("off")
        with pytest.raises(ValueError, match="not both"):
            TelemetryEmitter("json", stream=io.StringIO(), path="x")


class TestOutputs:
    def test_json_lines_accumulate(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        clock = FakeClock()
        emitter = TelemetryEmitter("json", interval_s=1.0, path=str(path),
                                   clock=clock)
        emitter.registry.counter("t_total").inc(())
        emitter.emit()
        emitter.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert [line["sequence"] for line in lines] == [1, 2]

    def test_prom_path_rewrites_atomically(self, tmp_path):
        path = tmp_path / "telemetry.prom"
        emitter = TelemetryEmitter("prom", interval_s=1.0, path=str(path),
                                   clock=FakeClock())
        counter = emitter.registry.counter("t_total")
        counter.inc(())
        emitter.emit()
        counter.inc(())
        emitter.close()
        # One complete exposition only -- the final one.
        text = path.read_text()
        assert text.count("# TYPE t_total counter") == 1
        assert parse_prometheus(text).value("t_total") == 2

    def test_prom_stream_banner_carries_sequence(self):
        buf = io.StringIO()
        emitter = TelemetryEmitter("prom", interval_s=1.0, stream=buf,
                                   clock=FakeClock())
        emitter.emit()
        emitter.emit()
        banners = [line for line in buf.getvalue().splitlines()
                   if line.startswith("# dart-telemetry emission=")]
        assert len(banners) == 2
        assert "emission=1" in banners[0]
        assert "emission=2" in banners[1]


class TestCliGlue:
    def parse(self, argv):
        parser = argparse.ArgumentParser()
        add_telemetry_arguments(parser)
        return parser.parse_args(argv)

    def test_off_builds_no_emitter(self):
        assert emitter_from_args(self.parse([])) is None
        assert emitter_from_args(self.parse(["--telemetry", "off"])) is None

    def test_modes_and_interval(self, tmp_path):
        path = tmp_path / "out.jsonl"
        args = self.parse(["--telemetry", "json",
                           "--telemetry-interval", "0.5",
                           "--telemetry-out", str(path)])
        emitter = emitter_from_args(args)
        assert emitter.mode == "json"
        assert emitter.interval_s == 0.5
        emitter.close()
        assert path.exists()

    def test_bad_interval_exits(self):
        args = self.parse(["--telemetry", "json",
                           "--telemetry-interval", "0"])
        with pytest.raises(SystemExit):
            emitter_from_args(args)

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            self.parse(["--telemetry", "csv"])


class TestMissingParentDirectories:
    """``--telemetry-out`` into a not-yet-created run directory works.

    Regression: the emitter used to fail with FileNotFoundError at
    construction (json) or first emission (prom) when the output path's
    parent directory did not exist.
    """

    def test_json_creates_parents(self, tmp_path):
        path = tmp_path / "runs" / "2026-08-07" / "telemetry.jsonl"
        emitter = TelemetryEmitter("json", interval_s=1.0, path=str(path))
        emitter.close()
        assert path.exists()
        assert json.loads(path.read_text().splitlines()[0])["sequence"] == 1

    def test_prom_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "telemetry.prom"
        emitter = TelemetryEmitter("prom", interval_s=1.0, path=str(path))
        emitter.registry.counter("t_total", "t").inc((), 2)
        emitter.close()
        assert parse_prometheus(path.read_text()).value("t_total") == 2
