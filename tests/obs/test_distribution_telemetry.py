"""Telemetry for the distribution stage: collector and exposition.

``collect_distribution`` samples a :class:`DistributionAnalytics` into
the registry once per emission — `dart_rtt_hist` as a native
Prometheus histogram (seconds) and `dart_rtt_p<q>` sketch gauges —
with the all-traffic aggregate under ``key=""`` plus a bounded number
of busiest per-key series.
"""

from repro.core.analytics import DstPrefixKey
from repro.core.flow import FlowKey
from repro.core.hist import DistributionAnalytics, HistogramSpec
from repro.core.samples import RttSample
from repro.obs.collect import collect_distribution
from repro.obs.exporters import to_prometheus
from repro.obs.metrics import MetricsRegistry

MS = 1_000_000


def _sample(dst_ip, rtt_ns, i=0):
    flow = FlowKey(src_ip=0x0A000001, dst_ip=dst_ip,
                   src_port=10, dst_port=443)
    return RttSample(flow=flow, rtt_ns=rtt_ns, timestamp_ns=i, eack=0)


def _distribution(keys=3, samples_per_key=5):
    dist = DistributionAnalytics(
        HistogramSpec(edges_ns=(1 * MS, 10 * MS, 100 * MS)),
        key_fn=DstPrefixKey(24),
        quantiles=(50.0, 99.0),
    )
    for k in range(keys):
        for i in range(samples_per_key):
            dist.add(_sample(0x10000000 + (k << 8) + 5,
                             (k * 10 + i + 1) * MS, i))
    return dist


def test_empty_distribution_emits_nothing():
    registry = MetricsRegistry()
    dist = DistributionAnalytics(HistogramSpec(edges_ns=(MS,)))
    collect_distribution(registry, dist, "dart")
    assert "dart_rtt_hist" not in to_prometheus(registry.snapshot())


def test_exposition_carries_buckets_and_quantiles():
    registry = MetricsRegistry()
    collect_distribution(registry, _distribution(), "dart")
    text = to_prometheus(registry.snapshot())
    assert 'dart_rtt_hist_bucket{' in text
    assert 'le="+Inf"' in text
    assert "dart_rtt_hist_sum{" in text
    assert "dart_rtt_hist_count{" in text
    assert "dart_rtt_p50{" in text
    assert "dart_rtt_p99{" in text
    # The all-traffic aggregate and the per-prefix series both render.
    assert 'key=""' in text
    assert 'key="16.0.0.0/24"' in text


def test_aggregate_count_matches_samples():
    registry = MetricsRegistry()
    dist = _distribution(keys=2, samples_per_key=4)
    collect_distribution(registry, dist, "dart")
    text = to_prometheus(registry.snapshot())
    for line in text.splitlines():
        if line.startswith("dart_rtt_hist_count") and 'key=""' in line:
            assert float(line.rsplit(" ", 1)[1]) == 8.0
            break
    else:
        raise AssertionError("aggregate _count series missing")


def test_top_keys_bounds_scrape_size():
    registry = MetricsRegistry()
    collect_distribution(registry, _distribution(keys=6), "dart",
                         top_keys=2)
    text = to_prometheus(registry.snapshot())
    count_series = [line for line in text.splitlines()
                    if line.startswith("dart_rtt_hist_count")]
    # aggregate + 2 busiest keys
    assert len(count_series) == 3


def test_collect_flushes_buffered_state():
    # The collector must see samples added since the last read — the
    # buffered hot path only folds into the stages on flush.
    registry = MetricsRegistry()
    dist = _distribution(keys=1, samples_per_key=3)
    _ = dist.count
    dist.add(_sample(0x10000005, 50 * MS))
    collect_distribution(registry, dist, "dart")
    text = to_prometheus(registry.snapshot())
    for line in text.splitlines():
        if line.startswith("dart_rtt_hist_count") and 'key=""' in line:
            assert float(line.rsplit(" ", 1)[1]) == 4.0
            return
    raise AssertionError("aggregate _count series missing")
