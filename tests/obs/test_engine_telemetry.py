"""Engine telemetry: metrics content, and the telemetry-off fast path."""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import MonitorEngine, MonitorOptions, create
from repro.obs import TelemetryEmitter
from repro.traces import CampusTraceConfig, generate_campus_trace


@pytest.fixture(scope="module")
def tcp_records():
    trace = generate_campus_trace(CampusTraceConfig(connections=40, seed=11))
    return trace.records


def run_with_telemetry(records, *, chunk_size=256, interval_s=1e9):
    """One engine pass with a JSON emitter; returns (monitor, emissions)."""
    buf = io.StringIO()
    emitter = TelemetryEmitter("json", interval_s=interval_s, stream=buf)
    monitor = create("dart", MonitorOptions())
    engine = MonitorEngine(chunk_size=chunk_size, telemetry=emitter)
    engine.add_monitor(monitor, name="dart")
    engine.run(records)
    emissions = [json.loads(line) for line in buf.getvalue().splitlines()]
    return monitor, emissions


def series_value(emission, name, labels):
    for metric in emission["metrics"]:
        if metric["name"] == name:
            for series in metric["series"]:
                if series["labels"] == list(labels):
                    return series.get("value", series)
    raise AssertionError(f"{name}{labels} not in emission")


class TestEngineTelemetry:
    def test_final_emission_reflects_full_trace(self, tcp_records):
        monitor, emissions = run_with_telemetry(tcp_records)
        # Huge interval: only the close() emission fires.
        assert len(emissions) == 1
        final = emissions[0]
        assert series_value(
            final, "dart_engine_records_total", ("dart",)
        ) == len(tcp_records)
        assert series_value(
            final, "dart_engine_samples_routed_total", ("dart",)
        ) == len(monitor.samples)
        # The Dart monitor's own cumulative stats were collected too,
        # under the (monitor, shard) labelset with shard="".
        names = {m["name"] for m in final["metrics"]}
        assert "dart_monitor_rt_occupancy" in names
        assert "dart_monitor_pt_occupancy" in names
        assert "dart_monitor_rt_collapses_total" in names

    def test_chunk_histogram_counts_chunks(self, tcp_records):
        chunk_size = 64
        _, emissions = run_with_telemetry(tcp_records, chunk_size=chunk_size)
        expected_chunks = -(-len(tcp_records) // chunk_size)
        hist = [m for m in emissions[0]["metrics"]
                if m["name"] == "dart_engine_chunk_seconds"][0]
        series = [s for s in hist["series"] if s["labels"] == ["dart"]][0]
        assert series["count"] == expected_chunks

    def test_periodic_emission_mid_trace(self, tcp_records):
        # Tiny interval: every chunk boundary is past due, so the trace
        # pass emits per chunk plus the final close().
        chunk_size = 64
        _, emissions = run_with_telemetry(
            tcp_records, chunk_size=chunk_size, interval_s=1e-9
        )
        expected_chunks = -(-len(tcp_records) // chunk_size)
        assert len(emissions) == expected_chunks + 1
        records_seen = [
            series_value(e, "dart_engine_records_total", ("dart",))
            for e in emissions
        ]
        assert records_seen == sorted(records_seen)
        assert records_seen[-1] == len(tcp_records)


class TestTelemetryOffFastPath:
    def test_engine_keeps_no_telemetry_state(self):
        engine = MonitorEngine()
        assert engine._telemetry is None
        assert engine._chunk_seconds is None

    def test_obs_never_imported_when_off(self):
        # The whole obs package must stay out of the process when
        # telemetry is off: the engine hot loop may only pay a single
        # ``is None`` test per chunk.
        script = (
            "import sys\n"
            "from repro.engine import MonitorEngine, MonitorOptions, create\n"
            "from repro.traces import CampusTraceConfig, "
            "generate_campus_trace\n"
            "records = generate_campus_trace("
            "CampusTraceConfig(connections=10, seed=3)).records\n"
            "engine = MonitorEngine()\n"
            "engine.add_monitor(create('dart', MonitorOptions()), "
            "name='dart')\n"
            "engine.run(records)\n"
            "assert not any(m.startswith('repro.obs') for m in "
            "sys.modules), 'repro.obs imported on the telemetry-off path'\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == 0, result.stderr
