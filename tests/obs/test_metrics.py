"""Metric primitives: dict-backed values, label discipline, registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates_per_labelset(self):
        c = Counter("t_total", label_names=("monitor",))
        c.inc(("dart",))
        c.inc(("dart",), 4)
        c.inc(("tcptrace",), 2)
        assert c.value(("dart",)) == 5
        assert c.value(("tcptrace",)) == 2
        assert c.value(("absent",)) == 0

    def test_negative_increment_rejected(self):
        c = Counter("t_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc((), -1)

    def test_set_cumulative_overwrites(self):
        c = Counter("t_total", label_names=("monitor",))
        c.set_cumulative(("dart",), 100)
        c.set_cumulative(("dart",), 250)
        assert c.value(("dart",)) == 250

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("has space")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok_total", label_names=("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("t_occupancy", label_names=("shard",))
        g.set(("0",), 10)
        g.inc(("0",), 5)
        g.dec(("0",), 3)
        assert g.value(("0",)) == 12

    def test_gauge_may_go_negative(self):
        g = Gauge("t")
        g.dec((), 7)
        assert g.value(()) == -7


class TestHistogram:
    def test_observe_places_into_buckets(self):
        h = Histogram("t_seconds", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)  # +Inf bucket
        assert h.bucket_counts[()] == [1, 1, 1, 1]
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)

    def test_boundary_lands_in_its_bucket(self):
        # Prometheus buckets are le= (inclusive upper bounds).
        h = Histogram("t_seconds", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts[()] == [1, 0, 0]

    def test_buckets_sorted_and_unique(self):
        h = Histogram("t_seconds", buckets=(5.0, 1.0, 2.5))
        assert h.buckets == (1.0, 2.5, 5.0)
        with pytest.raises(ValueError, match="duplicate"):
            Histogram("t_seconds", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("t_seconds", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        r = MetricsRegistry()
        a = r.counter("t_total", "help", ("monitor",))
        b = r.counter("t_total", "ignored", ("monitor",))
        assert a is b
        assert len(r) == 1

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("t")
        with pytest.raises(ValueError, match="already registered as a"):
            r.gauge("t")

    def test_label_shape_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("t_total", label_names=("monitor",))
        with pytest.raises(ValueError, match="already registered with"):
            r.counter("t_total", label_names=("monitor", "shard"))

    def test_wrong_labelset_width_raises_on_use(self):
        c = Counter("t_total", label_names=("monitor", "shard"))
        c._check_labels(("dart", "0"))
        with pytest.raises(ValueError, match="expected 2 label"):
            c._check_labels(("dart",))

    def test_iteration_and_get(self):
        r = MetricsRegistry()
        r.counter("a_total")
        r.gauge("b")
        assert {m.name for m in r} == {"a_total", "b"}
        assert r.get("a_total").kind == "counter"
        assert r.get("missing") is None
