"""Snapshot wire round-trip: to_wire/from_wire is lossless.

The fleet protocol ships telemetry snapshots across process and host
boundaries as JSON (never pickle); these property tests pin that the
wire form reconstructs an *equal* snapshot after a real JSON encode /
decode cycle — the same discipline the exporter suite applies to
``parse_prometheus``.
"""

import json

import pytest
from hypothesis import given, strategies as st

from repro.obs import SNAPSHOT_WIRE_SCHEMA, Snapshot, merge_snapshots

from .test_snapshot_merge import build_snapshot, ops_strategy


def wire_cycle(snapshot):
    """Encode to JSON text and back — the actual transport path."""
    return Snapshot.from_wire(json.loads(json.dumps(snapshot.to_wire())))


class TestWireRoundTrip:
    @given(ops=ops_strategy)
    def test_round_trip_is_lossless(self, ops):
        snapshot = build_snapshot(ops, sequence=3)
        assert wire_cycle(snapshot) == snapshot

    @given(a=ops_strategy, b=ops_strategy)
    def test_merge_commutes_with_wire(self, a, b):
        # Merging reconstructed snapshots == merging the originals: the
        # collector may merge wire-decoded deltas freely.
        sa, sb = build_snapshot(a), build_snapshot(b)
        via_wire = merge_snapshots([wire_cycle(sa), wire_cycle(sb)])
        direct = merge_snapshots([build_snapshot(a), build_snapshot(b)])
        assert via_wire == direct

    def test_schema_is_stamped(self):
        wire = build_snapshot([]).to_wire()
        assert wire["schema"] == SNAPSHOT_WIRE_SCHEMA

    def test_unknown_schema_refused(self):
        wire = build_snapshot([("counter", "x", 1)]).to_wire()
        wire["schema"] = "dart-snapshot-wire/99"
        with pytest.raises(ValueError, match="schema"):
            Snapshot.from_wire(wire)

    def test_sequence_survives(self):
        snapshot = build_snapshot([("gauge", "y", 4)], sequence=17)
        assert wire_cycle(snapshot).sequence == 17

    def test_empty_snapshot(self):
        assert wire_cycle(Snapshot()) == Snapshot()

    def test_histogram_buckets_survive(self):
        snapshot = build_snapshot([("histogram", "z", 5)] * 3)
        restored = wire_cycle(snapshot)
        metric = restored.get("t_cost")
        assert metric is not None
        assert metric.buckets == (1.0, 3.0, 6.0)
        assert metric.counts[("z",)] == 3
