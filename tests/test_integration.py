"""Cross-module integration tests: trace -> monitors -> analysis."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import evaluate_dart, percentile
from repro.baselines import Strawman, TcpTrace, tcptrace_const
from repro.core import Dart, DartConfig, ideal_config, make_leg_filter
from repro.net import tcp as tcpf
from repro.net.packet import PacketRecord
from repro.net.pcap import read_packets, write_packets
from repro.traces import CampusTraceConfig, generate_campus_trace, replay

MS = 1_000_000


@pytest.fixture(scope="module")
def campus():
    return generate_campus_trace(CampusTraceConfig(connections=400, seed=33))


@pytest.fixture(scope="module")
def leg_external(campus):
    def make():
        return make_leg_filter(campus.internal.is_internal,
                               legs=("external",))
    return make


class TestDartVsTcptrace(object):
    """The Fig 9 relationship at test scale."""

    @pytest.fixture(scope="class")
    def results(self, campus, leg_external):
        tt = TcpTrace(track_handshake=False, leg_filter=leg_external())
        ideal = tcptrace_const(leg_filter=leg_external())
        replay(campus.records, tt, ideal)
        return tt, ideal

    def test_dart_collects_large_majority(self, results):
        tt, ideal = results
        ratio = len(ideal.samples) / len(tt.samples)
        assert 0.70 <= ratio <= 1.0  # paper: ~83%

    def test_medians_agree(self, results):
        tt, ideal = results
        tt_med = percentile([s.rtt_ns for s in tt.samples], 50)
        dart_med = percentile([s.rtt_ns for s in ideal.samples], 50)
        assert abs(tt_med - dart_med) / tt_med < 0.15

    def test_dart_not_biased_toward_small_rtts(self, results):
        # No bias against large RTTs (paper §6.1): Dart's upper
        # percentiles are not systematically below tcptrace's by more
        # than tcptrace's own recovery-inflation artifacts.  (A specific
        # straggler can still be lost to a duplicate-ACK collapse —
        # the conservatism §7 documents — so this is a distributional
        # check, not a per-sample one.)
        tt, ideal = results
        tt_p95 = percentile([s.rtt_ns for s in tt.samples], 95)
        dart_p95 = percentile([s.rtt_ns for s in ideal.samples], 95)
        assert dart_p95 <= tt_p95 * 1.25
        assert dart_p95 >= tt_p95 * 0.4


class TestConstrainedDart:
    def test_small_pt_loses_samples_not_correctness(self, campus,
                                                    leg_external):
        ideal = tcptrace_const(leg_filter=leg_external())
        constrained = Dart(
            DartConfig(rt_slots=1 << 18, pt_slots=1 << 6,
                       max_recirculations=1),
            leg_filter=leg_external(),
        )
        replay(campus.records, ideal, constrained)
        perf = evaluate_dart(
            [s.rtt_ns for s in ideal.samples],
            [s.rtt_ns for s in constrained.samples],
            recirculations=constrained.stats.recirculations,
            packets_processed=constrained.stats.packets_processed,
        )
        assert perf.fraction_collected < 100.0
        assert abs(perf.error_p50) < 15.0
        assert constrained.stats.recirculations > 0

    def test_larger_pt_collects_more(self, campus, leg_external):
        small = Dart(DartConfig(rt_slots=1 << 18, pt_slots=1 << 5),
                     leg_filter=leg_external())
        large = Dart(DartConfig(rt_slots=1 << 18, pt_slots=1 << 12),
                     leg_filter=leg_external())
        replay(campus.records, small, large)
        assert large.stats.samples > small.stats.samples

    def test_pt_occupancy_bounded_by_size(self, campus, leg_external):
        dart = Dart(DartConfig(rt_slots=1 << 18, pt_slots=64),
                    leg_filter=leg_external())
        replay(campus.records, dart)
        _, pt_occ = dart.occupancy()
        assert pt_occ <= 64


class TestStrawmanComparison:
    def test_strawman_emits_ambiguous_samples(self, campus, leg_external):
        strawman = Strawman(leg_filter=leg_external())
        ideal = tcptrace_const(leg_filter=leg_external())
        replay(campus.records, strawman, ideal)
        # The strawman matches everything it can, ambiguity included, so
        # on a lossy/reordering trace it emits at least as many samples.
        assert strawman.stats.samples >= ideal.stats.samples


class TestPcapPipeline:
    def test_trace_survives_pcap_roundtrip(self, campus, tmp_path,
                                           leg_external):
        path = tmp_path / "campus.pcap"
        subset = campus.records[:3000]
        write_packets(path, subset)
        direct = Dart(ideal_config(), leg_filter=leg_external())
        from_disk = Dart(ideal_config(), leg_filter=leg_external())
        replay(subset, direct)
        replay(read_packets(path), from_disk)
        assert direct.stats.samples == from_disk.stats.samples
        assert [s.rtt_ns for s in direct.samples] == [
            s.rtt_ns for s in from_disk.samples
        ]


def _stream_strategy():
    """Random interleavings of data/ack packets over a few flows."""
    event = st.tuples(
        st.integers(min_value=0, max_value=2),           # flow index
        st.sampled_from(["data", "ack"]),
        st.integers(min_value=0, max_value=40),          # segment index
    )
    return st.lists(event, min_size=1, max_size=120)


class TestFuzzInvariants:
    @given(_stream_strategy())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_dart_samples_well_formed_on_arbitrary_streams(self, events):
        dart = Dart(ideal_config())
        seen_data = set()
        t = 0
        for flow_idx, kind, index in events:
            t += 1_000_000
            client = 0x0A000001 + flow_idx
            seq = 1_000 + index * 100
            if kind == "data":
                record = PacketRecord(
                    timestamp_ns=t, src_ip=client, dst_ip=0x10000001,
                    src_port=40000, dst_port=443, seq=seq, ack=1,
                    flags=tcpf.FLAG_ACK, payload_len=100,
                )
                seen_data.add((client, record.eack))
                dart.process(record)
            else:
                record = PacketRecord(
                    timestamp_ns=t, src_ip=0x10000001, dst_ip=client,
                    src_port=443, dst_port=40000, seq=1, ack=seq + 100,
                    flags=tcpf.FLAG_ACK, payload_len=0,
                )
                for sample in dart.process(record):
                    # Every sample must be non-negative and anchored to
                    # a data packet that actually passed the monitor.
                    assert sample.rtt_ns >= 0
                    assert (sample.flow.src_ip, sample.eack) in seen_data

    @given(_stream_strategy())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_constrained_never_crashes_and_counts_consistent(self, events):
        dart = Dart(DartConfig(rt_slots=8, pt_slots=4, pt_stages=2,
                               max_recirculations=3))
        t = 0
        for flow_idx, kind, index in events:
            t += 1_000_000
            client = 0x0A000001 + flow_idx
            seq = 1_000 + index * 100
            if kind == "data":
                dart.process(PacketRecord(
                    timestamp_ns=t, src_ip=client, dst_ip=0x10000001,
                    src_port=40000, dst_port=443, seq=seq, ack=1,
                    flags=tcpf.FLAG_ACK, payload_len=100,
                ))
            else:
                dart.process(PacketRecord(
                    timestamp_ns=t, src_ip=0x10000001, dst_ip=client,
                    src_port=443, dst_port=40000, seq=1, ack=seq + 100,
                    flags=tcpf.FLAG_ACK, payload_len=0,
                ))
        stats = dart.stats
        assert stats.samples == dart.packet_tracker.stats.matches
        assert stats.packets_processed == len(events)
        _, pt_occ = dart.occupancy()
        assert pt_occ <= 4
