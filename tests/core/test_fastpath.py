"""Micro-tests for the per-packet fast path's structural guarantees.

The hot-path optimizations lean on three properties that are easy to
break silently:

* ``__slots__`` dataclasses must still pickle — the cluster's process
  workers ship ``ShardResult`` payloads (stats, PT records, flow keys)
  across the process boundary.
* ``FlowKey``'s cached hash/CRC/signature must be invisible to equality
  and survive interning — an interned key and a hand-built one are the
  same key.
* Degenerate batches must be no-ops (covered in depth by
  ``test_batch_equivalence``; the pickle/interning angles live here).
"""

import pickle

from repro.core import Dart, DartStats
from repro.core.flow import FlowKey, ack_target_flow, flow_of, intern_flow
from repro.core.hashing import signature32, stage_index, stage_index_from_crc
from repro.core.packet_tracker import PtRecord
from repro.core.range_tracker import RangeEntry, SeqVerdict
from repro.net.packet import PacketRecord
from repro.net.tcp import FLAG_ACK, FLAG_PSH

FLOW = FlowKey(src_ip=0x0A000001, dst_ip=0xC0A80001,
               src_port=443, dst_port=51234)

PACKET = PacketRecord(timestamp_ns=1_000, src_ip=0x0A000001,
                      dst_ip=0xC0A80001, src_port=443, dst_port=51234,
                      seq=100, ack=0, flags=FLAG_ACK | FLAG_PSH,
                      payload_len=1448)


class TestSlotsPickling:
    """Every slotted hot-path type must cross the process boundary."""

    def test_flow_key_round_trips_with_hash_and_equality(self):
        clone = pickle.loads(pickle.dumps(FLOW))
        assert clone == FLOW
        assert hash(clone) == hash(FLOW)
        assert clone.key_bytes() == FLOW.key_bytes()
        assert clone.key_crc == FLOW.key_crc
        assert clone.signature == FLOW.signature

    def test_flow_key_pickles_after_caches_are_warm(self):
        warm = intern_flow(1, 2, 3, 4)
        warm.key_bytes()
        _ = warm.key_crc, warm.signature  # populate every lazy cache
        clone = pickle.loads(pickle.dumps(warm))
        assert clone == warm
        assert hash(clone) == hash(warm)
        assert clone.key_crc == warm.key_crc

    def test_packet_record_round_trips(self):
        clone = pickle.loads(pickle.dumps(PACKET))
        assert clone == PACKET
        assert clone.flags == PACKET.flags

    def test_pt_record_round_trips_with_warm_key_cache(self):
        record = PtRecord(record_id=7, flow=FLOW, signature=FLOW.signature,
                          eack=1548, timestamp_ns=1_000)
        record.key_bytes()  # warm the lazy key cache before pickling
        clone = pickle.loads(pickle.dumps(record))
        assert clone.record_id == record.record_id
        assert clone.flow == record.flow
        assert clone.key_bytes() == record.key_bytes()

    def test_range_entry_round_trips(self):
        entry = RangeEntry(signature=0xDEADBEEF, left=100, right=2000,
                           collapses=3, touched_ns=42)
        clone = pickle.loads(pickle.dumps(entry))
        assert (clone.signature, clone.left, clone.right) == \
            (entry.signature, entry.left, entry.right)
        assert clone.collapses == entry.collapses

    def test_dart_stats_round_trips_including_verdict_dicts(self):
        stats = DartStats()
        DartStats._bump(stats.seq_verdicts, SeqVerdict.NEW_FLOW, 5)
        stats.samples = 9
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats
        assert list(clone.seq_verdicts) == list(stats.seq_verdicts)

    def test_stats_from_a_real_run_round_trip(self):
        dart = Dart()
        dart.process(PACKET)
        clone = pickle.loads(pickle.dumps(dart.stats))
        assert clone == dart.stats


class TestInterning:
    def test_flow_of_returns_the_same_object_per_flow(self):
        assert flow_of(PACKET) is flow_of(PACKET)

    def test_ack_target_is_the_interned_reverse(self):
        assert ack_target_flow(PACKET) is flow_of(PACKET).reversed()

    def test_uninterned_key_equals_and_hashes_like_interned(self):
        direct = FlowKey(src_ip=PACKET.src_ip, dst_ip=PACKET.dst_ip,
                         src_port=PACKET.src_port, dst_port=PACKET.dst_port)
        interned = flow_of(PACKET)
        assert direct == interned
        assert hash(direct) == hash(interned)
        assert {interned: "hit"}[direct] == "hit"

    def test_cached_values_do_not_leak_into_equality(self):
        cold = FlowKey(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        warm = FlowKey(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        _ = warm.key_crc, warm.signature, warm.key_bytes()
        assert cold == warm
        assert hash(cold) == hash(warm)


class TestCachedHashing:
    def test_cached_crc_matches_direct_computation(self):
        import zlib

        assert FLOW.key_crc == zlib.crc32(FLOW.key_bytes())

    def test_cached_signature_matches_direct_computation(self):
        assert FLOW.signature == signature32(FLOW.key_bytes())

    def test_stage_index_from_crc_matches_stage_index(self):
        for stage in range(4):
            assert stage_index_from_crc(FLOW.key_crc, stage, 1024) == \
                stage_index(FLOW.key_bytes(), stage, 1024)

    def test_ipv6_key_bytes_are_36_bytes(self):
        v6 = intern_flow(1 << 120, 2 << 100, 80, 8080, True)
        assert len(v6.key_bytes()) == 36
        assert v6.key_crc == __import__("zlib").crc32(v6.key_bytes())
