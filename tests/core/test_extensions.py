"""Tests for the §7 extensions: shadow RT and the RT entry timeout."""

import pytest

from repro.core import Dart, DartConfig
from repro.core.flow import FlowKey
from repro.core.range_tracker import AckVerdict, RangeTracker, SeqVerdict
from repro.net import tcp as tcpf
from repro.net.packet import PacketRecord

MS = 1_000_000
SEC = 1_000_000_000
CLIENT = 0x0A000001
SERVER = 0x10000001
FLOW = FlowKey(src_ip=CLIENT, dst_ip=SERVER, src_port=40000, dst_port=443)


def pkt(t_ms, src, dst, sport, dport, seq, ack, flags, length):
    return PacketRecord(
        timestamp_ns=int(t_ms * MS), src_ip=src, dst_ip=dst,
        src_port=sport, dst_port=dport, seq=seq, ack=ack, flags=flags,
        payload_len=length,
    )


def data(t_ms, seq, i=0, length=100):
    return pkt(t_ms, CLIENT + i, SERVER, 40000, 443, seq, 1,
               tcpf.FLAG_ACK | tcpf.FLAG_PSH, length)


def ack_of(t_ms, ack, i=0):
    return pkt(t_ms, SERVER, CLIENT + i, 443, 40000, 1, ack,
               tcpf.FLAG_ACK, 0)


class TestRtTimeout:
    def test_expired_entry_reclaimed(self):
        tracker = RangeTracker(timeout_ns=10 * SEC)
        tracker.on_data(FLOW, 1000, 2000, now_ns=0)
        # 20 s later the flow restarts from a different range: the old
        # entry has expired, so this is a NEW_FLOW, not a hole.
        verdict = tracker.on_data(FLOW, 50_000, 51_000, now_ns=20 * SEC)
        assert verdict is SeqVerdict.NEW_FLOW
        assert tracker.stats.timeout_expiries == 1

    def test_live_entry_untouched(self):
        tracker = RangeTracker(timeout_ns=10 * SEC)
        tracker.on_data(FLOW, 1000, 2000, now_ns=0)
        assert (tracker.on_data(FLOW, 2000, 3000, now_ns=5 * SEC)
                is SeqVerdict.TRACK)

    def test_activity_refreshes_timeout(self):
        tracker = RangeTracker(timeout_ns=10 * SEC)
        tracker.on_data(FLOW, 1000, 2000, now_ns=0)
        tracker.on_ack(FLOW, 1500, now_ns=8 * SEC)     # touch
        assert (tracker.on_ack(FLOW, 2000, now_ns=16 * SEC)
                is AckVerdict.VALID)                   # 8 s since touch

    def test_expired_ack_is_no_flow(self):
        tracker = RangeTracker(timeout_ns=1 * SEC)
        tracker.on_data(FLOW, 1000, 2000, now_ns=0)
        assert tracker.on_ack(FLOW, 1500, now_ns=5 * SEC) is AckVerdict.NO_FLOW

    def test_revalidation_fails_after_expiry(self):
        tracker = RangeTracker(timeout_ns=1 * SEC)
        tracker.on_data(FLOW, 1000, 2000, now_ns=0)
        assert tracker.revalidate(FLOW, 1500, now_ns=0)
        assert not tracker.revalidate(FLOW, 1500, now_ns=5 * SEC)

    def test_disabled_by_default(self):
        tracker = RangeTracker()
        tracker.on_data(FLOW, 1000, 2000, now_ns=0)
        assert (tracker.on_ack(FLOW, 1500, now_ns=10**15)
                is AckVerdict.VALID)

    def test_unacked_data_attack_mitigated(self):
        """§7: an attacker pins RT slots by never ACKing its own flows;
        a large timeout reclaims them for legitimate traffic."""

        def attack(dart):
            # 64 attacker flows fill the tiny RT at t=0 and go silent.
            for i in range(64):
                dart.process(data(0, 1000, i=i))
            # A legitimate flow starts a minute later.
            dart.process(data(60_000, 5000, i=500))
            samples = dart.process(ack_of(60_020, 5100, i=500))
            return len(samples)

        pinned = Dart(DartConfig(rt_slots=8, pt_slots=1 << 10,
                                 rt_overwrite_collapsed=False))
        mitigated = Dart(DartConfig(rt_slots=8, pt_slots=1 << 10,
                                    rt_overwrite_collapsed=False,
                                    rt_timeout_ns=30 * SEC))
        assert attack(pinned) == 0          # RT full forever: no sample
        assert attack(mitigated) == 1       # expired entries reclaimed

    def test_config_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            DartConfig(rt_timeout_ns=0)


class TestShadowRt:
    def one_slot(self, **kwargs):
        return Dart(DartConfig(rt_slots=1 << 10, pt_slots=1,
                               max_recirculations=2, shadow_rt=True,
                               **kwargs))

    def test_stale_record_dies_without_recirculation(self):
        dart = self.one_slot(shadow_rt_lag_packets=0)
        dart.process(data(0, 1000, i=1))
        # Collapse flow 1's range (retransmission), making its record
        # stale; process enough packets for the shadow to catch up.
        dart.process(data(1, 1000, i=1))
        dart.process(ack_of(2, 77, i=9))  # no-op traffic advances shadow
        dart.process(data(3, 2000, i=2))  # collision: evicts flow 1's rec
        assert dart.stats.shadow_discards >= 1
        assert dart.stats.recirculations == 0

    def test_valid_record_still_recirculates(self):
        dart = self.one_slot(shadow_rt_lag_packets=0)
        dart.process(data(0, 1000, i=1))
        dart.process(ack_of(1, 77, i=9))
        dart.process(data(2, 2000, i=2))  # collision, flow 1 still valid
        assert dart.stats.recirculations >= 1
        # The old valid record survives contention as usual.
        assert len(dart.process(ack_of(20, 1100, i=1))) == 1

    def test_lagging_shadow_makes_mistakes(self):
        # With a large lag the shadow has not yet seen flow 1's range at
        # eviction time, so it wrongly discards a valid record.
        dart = self.one_slot(shadow_rt_lag_packets=1000)
        dart.process(data(0, 1000, i=1))
        dart.process(data(1, 2000, i=2))  # collision
        assert dart.stats.shadow_discards >= 1
        assert dart.stats.shadow_false_discards >= 1
        # The sample is lost: the paper's consistency hazard.
        assert dart.process(ack_of(20, 1100, i=1)) == []

    def test_shadow_disabled_by_default(self):
        dart = Dart(DartConfig(rt_slots=1 << 10, pt_slots=1))
        assert dart._shadow_tracker is None
        dart.process(data(0, 1000, i=1))
        dart.process(data(1, 2000, i=2))
        assert dart.stats.shadow_discards == 0

    def test_shadow_reduces_recirculations_under_churn(self):
        def run(shadow):
            config = DartConfig(rt_slots=1 << 12, pt_slots=8,
                                max_recirculations=2, shadow_rt=shadow,
                                shadow_rt_lag_packets=4)
            dart = Dart(config)
            t = 0.0
            for i in range(300):
                # Each flow sends two segments; only the second is ever
                # ACKed, stranding the first (stale once the ACK lands).
                dart.process(data(t, 1000, i=i))
                dart.process(data(t + 0.1, 1100, i=i))
                dart.process(ack_of(t + 5.0, 1200, i=i))
                t += 0.5
            return dart

        with_shadow = run(True)
        without = run(False)
        assert (with_shadow.stats.recirculations
                < without.stats.recirculations)
        assert with_shadow.stats.shadow_discards > 0
