"""Batch-equivalence suite: ``process_columns`` == ``process_batch``.

The columnar loop must be *semantically invisible*: for any table
configuration — ideal associative, constrained with evictions,
multi-stage with handshake tracking, shadow RT with delayed
recirculation — feeding the same packets as columns must leave the
monitor in the same observable state as the object path: identical
stats (verdict insertion order included), identical sample sequence,
identical table occupancy.
"""

import pytest

from repro.core import Dart, DartConfig, make_leg_filter
from repro.net.columnar import HAVE_NUMPY
from repro.traces import CampusTraceConfig, generate_campus_trace

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the columnar fast path requires numpy"
)

CHUNK = 1000

CONFIGS = {
    "ideal": DartConfig(),
    "constrained": DartConfig(rt_slots=1 << 10, pt_slots=1 << 8,
                              pt_stages=2, max_recirculations=2),
    "multistage_syn": DartConfig(rt_slots=1 << 12, pt_slots=1 << 9,
                                 pt_stages=4, max_recirculations=4,
                                 track_handshake=True),
    "shadow_delay": DartConfig(rt_slots=1 << 10, pt_slots=1 << 8,
                               pt_stages=2, max_recirculations=2,
                               shadow_rt=True,
                               recirculation_delay_packets=3,
                               track_handshake=True),
}


@pytest.fixture(scope="module")
def records():
    trace = generate_campus_trace(
        CampusTraceConfig(connections=80, seed=7)
    )
    return trace.records


def _columns(chunk):
    from repro.net.columnar import records_to_columns

    return records_to_columns(chunk)


def _run_object(config, records, **kwargs):
    dart = Dart(config, **kwargs)
    for i in range(0, len(records), CHUNK):
        dart.process_batch(records[i:i + CHUNK])
    return dart

def _run_columns(config, records, **kwargs):
    dart = Dart(config, **kwargs)
    for i in range(0, len(records), CHUNK):
        dart.process_columns(_columns(records[i:i + CHUNK]))
    return dart


def _assert_identical(reference: Dart, candidate: Dart) -> None:
    assert candidate.stats == reference.stats
    # Dict equality ignores order; verdict rendering must not.
    assert (list(candidate.stats.seq_verdicts)
            == list(reference.stats.seq_verdicts))
    assert (list(candidate.stats.ack_verdicts)
            == list(reference.stats.ack_verdicts))
    assert candidate.samples == reference.samples


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_columns_equal_object_path(name, records):
    config = CONFIGS[name]
    _assert_identical(_run_object(config, records),
                      _run_columns(config, records))


def test_leg_filter_falls_back_identically(records):
    """A configured leg filter routes through the per-record fallback —
    the columnar entry point must still give identical results."""
    config = CONFIGS["constrained"]

    def build():
        return make_leg_filter(lambda addr: (addr >> 24) == 10,
                               legs=("external", "internal"))

    _assert_identical(
        _run_object(config, records, leg_filter=build()),
        _run_columns(config, records, leg_filter=build()),
    )


def test_subclass_override_falls_back_identically(records):
    """A subclass overriding ``process`` keeps its hook on the columnar
    entry point: every row must route through the override."""
    config = CONFIGS["constrained"]

    class CountingDart(Dart):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.seen = 0

        def process(self, record):
            self.seen += 1
            return super().process(record)

    reference = CountingDart(config)
    for i in range(0, len(records), CHUNK):
        reference.process_batch(records[i:i + CHUNK])
    candidate = CountingDart(config)
    for i in range(0, len(records), CHUNK):
        candidate.process_columns(_columns(records[i:i + CHUNK]))
    _assert_identical(reference, candidate)
    assert candidate.seen == reference.seen == len(records)


def test_columns_with_skip_rows_match(records):
    """Skip rows (non-TCP frames in a batch) are invisible to stats."""
    config = CONFIGS["constrained"]
    reference = _run_object(config, records)
    candidate = Dart(config)
    for i in range(0, len(records), CHUNK):
        chunk = []
        for record in records[i:i + CHUNK]:
            chunk.append(record)
            chunk.append(None)  # the object decoder's non-TCP result
        candidate.process_columns(_columns(chunk))
    _assert_identical(reference, candidate)


def test_empty_columns_are_a_no_op():
    dart = Dart(CONFIGS["ideal"])
    assert dart.process_columns(_columns([])) == []
    assert dart.stats.packets_processed == 0
