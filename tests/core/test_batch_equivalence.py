"""Batched vs. per-packet equivalence — the fast path's correctness pin.

``Dart.process_batch`` exists purely for speed: it must produce *exactly*
the state a per-packet ``process`` loop produces — same stats (including
verdict-dict key order), same samples, same analytics windows, same
table occupancy.  These tests hold that line, and pin the
``DartStats.merge`` property the cluster relies on: per-packet stat
deltas merged together equal the one-shot run.
"""

from dataclasses import fields

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Dart, DartConfig, DartStats, MinFilterAnalytics
from repro.core.range_tracker import AckVerdict, SeqVerdict
from repro.traces import CampusTraceConfig, generate_campus_trace

CONFIGS = {
    "ideal": DartConfig(),
    "constrained": DartConfig(rt_slots=1 << 10, pt_slots=1 << 8,
                              max_recirculations=1),
    "multistage+syn": DartConfig(rt_slots=1 << 10, pt_slots=1 << 8,
                                 pt_stages=4, max_recirculations=3,
                                 track_handshake=True),
    "shadow+delay": DartConfig(rt_slots=1 << 10, pt_slots=1 << 8,
                               recirculation_delay_packets=4,
                               shadow_rt=True),
}


@pytest.fixture(scope="module")
def records():
    return generate_campus_trace(
        CampusTraceConfig(connections=60, seed=5)
    ).records


def copy_stats(stats: DartStats) -> DartStats:
    kwargs = {f.name: getattr(stats, f.name) for f in fields(DartStats)}
    kwargs["seq_verdicts"] = dict(stats.seq_verdicts)
    kwargs["ack_verdicts"] = dict(stats.ack_verdicts)
    return DartStats(**kwargs)


def stats_delta(before: DartStats, after: DartStats) -> DartStats:
    """The per-packet increment between two stats snapshots."""
    delta = DartStats()
    for f in fields(DartStats):
        if f.name in ("seq_verdicts", "ack_verdicts"):
            prior = getattr(before, f.name)
            for verdict, count in getattr(after, f.name).items():
                step = count - prior.get(verdict, 0)
                if step:
                    DartStats._bump(getattr(delta, f.name), verdict, step)
        else:
            setattr(delta, f.name,
                    getattr(after, f.name) - getattr(before, f.name))
    return delta


@pytest.mark.parametrize("name", list(CONFIGS))
class TestBatchEquivalence:
    def run_pair(self, records, name, analytics=False):
        kwargs = {}
        serial = Dart(CONFIGS[name],
                      analytics=MinFilterAnalytics(window_samples=4)
                      if analytics else None, **kwargs)
        batched = Dart(CONFIGS[name],
                       analytics=MinFilterAnalytics(window_samples=4)
                       if analytics else None, **kwargs)
        serial_samples = []
        for record in records:
            serial_samples.extend(serial.process(record))
        # Odd chunk size on purpose: chunk boundaries must not matter.
        batch_samples = []
        for start in range(0, len(records), 777):
            batch_samples.extend(
                batched.process_batch(records[start:start + 777])
            )
        return serial, batched, serial_samples, batch_samples

    def test_stats_samples_and_occupancy_identical(self, records, name):
        serial, batched, serial_samples, batch_samples = self.run_pair(
            records, name
        )
        assert serial.stats == batched.stats
        assert serial_samples == batch_samples
        assert serial.samples == batched.samples
        assert serial.occupancy() == batched.occupancy()

    def test_verdict_dict_key_order_identical(self, records, name):
        serial, batched, _, _ = self.run_pair(records, name)
        assert list(serial.stats.seq_verdicts) == list(
            batched.stats.seq_verdicts
        )
        assert list(serial.stats.ack_verdicts) == list(
            batched.stats.ack_verdicts
        )

    def test_window_histories_identical(self, records, name):
        serial, batched, _, _ = self.run_pair(records, name, analytics=True)
        end_ns = records[-1].timestamp_ns
        serial.finalize(end_ns)
        batched.finalize(end_ns)
        assert serial.analytics.history == batched.analytics.history


class TestMergeMatchesBatchedRun:
    """Merging N single-packet stat deltas == one N-packet batched run."""

    def test_merged_deltas_equal_batch_stats(self, records):
        block = records[:1500]
        config = CONFIGS["constrained"]
        serial = Dart(config)
        merged = DartStats()
        for record in block:
            before = copy_stats(serial.stats)
            serial.process(record)
            merged.merge(stats_delta(before, serial.stats))
        batched = Dart(config)
        batched.process_batch(block)
        assert merged == batched.stats
        # Key order: first-appearance order must survive both paths.
        assert list(merged.seq_verdicts) == list(batched.stats.seq_verdicts)
        assert list(merged.ack_verdicts) == list(batched.stats.ack_verdicts)
        # Typing: enum keys, int counts — never strings or floats.
        assert all(isinstance(k, SeqVerdict) and type(v) is int
                   for k, v in merged.seq_verdicts.items())
        assert all(isinstance(k, AckVerdict) and type(v) is int
                   for k, v in merged.ack_verdicts.items())

    @given(st.lists(st.sampled_from(list(SeqVerdict)), max_size=60),
           st.integers(min_value=1, max_value=7))
    def test_merge_is_chunking_invariant(self, verdicts, parts):
        """Summing verdicts in any partition equals one-shot counting."""
        whole = DartStats()
        for verdict in verdicts:
            DartStats._bump(whole.seq_verdicts, verdict)
        merged = DartStats()
        chunk = max(1, len(verdicts) // parts)
        for start in range(0, len(verdicts), chunk):
            piece = DartStats()
            for verdict in verdicts[start:start + chunk]:
                DartStats._bump(piece.seq_verdicts, verdict)
            merged.merge(piece)
        assert merged.seq_verdicts == whole.seq_verdicts
        assert list(merged.seq_verdicts) == list(whole.seq_verdicts)


class TestDegenerateBatches:
    def test_empty_batch_is_a_noop(self):
        dart = Dart()
        assert dart.process_batch([]) == []
        assert dart.stats == DartStats()
        assert dart.occupancy() == (0, 0)

    def test_all_none_batch_is_a_noop(self):
        """Non-TCP frames decode to None; a block of them does nothing."""
        dart = Dart()
        assert dart.process_batch([None, None, None]) == []
        assert dart.stats == DartStats()

    def test_mixed_none_batch_equals_filtered_batch(self, records):
        block = records[:300]
        mixed = []
        for i, record in enumerate(block):
            mixed.append(record)
            if i % 7 == 0:
                mixed.append(None)
        plain = Dart()
        plain.process_batch(block)
        tolerant = Dart()
        tolerant.process_batch(mixed)
        assert plain.stats == tolerant.stats
        assert plain.samples == tolerant.samples
